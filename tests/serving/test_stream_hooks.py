"""Per-token stream hooks: exactly-once, in-order, identical to batch.

The serving gateway's streaming contract rests on the engine publishing
every newly sampled token the step it is produced — exactly once and in
order, across continuous batching, chunked prefill, preemption/recompute
and temperature sampling — plus exactly one terminal event per session.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.inference import StreamAssembler
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine

PAGE = 16


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=192)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def page_budget(arch, pages):
    return pages * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                  arch.head_dim, PAGE)


def sequential_tokens(arch, weights, prompt, **kwargs):
    generator = Generator(build_model(arch, weights),
                          seed=kwargs.pop("seed", 0))
    return generator.generate(prompt, **kwargs).generated_tokens


class Recorder:
    """Hook capturing events plus integrity bookkeeping."""

    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)

    @property
    def tokens(self):
        return [e.token for e in self.events if not e.finished]

    @property
    def terminal(self):
        finals = [e for e in self.events if e.finished]
        assert len(finals) <= 1, "terminal event published more than once"
        return finals[0] if finals else None

    def assert_stream_contract(self):
        indices = [e.index for e in self.events if not e.finished]
        assert indices == list(range(len(indices))), \
            "token indices must be contiguous from 0"
        assert self.terminal is not None, "stream never closed"
        assert self.terminal.index == len(indices)
        assert self.events[-1].finished, "tokens after the terminal event"


class TestStreamHooks:
    def test_tokens_published_per_step_and_match_result(self, arch,
                                                        shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=4)
        recorders = {_: Recorder() for _ in range(4)}
        ids = {}
        for i, rec in recorders.items():
            ids[i] = engine.submit([1 + i, 5, 9 + 2 * i], max_new_tokens=6,
                                   stream_hook=rec)
        # The first engine step (prefill sample + one decode) publishes
        # tokens long before the sessions finish — streaming, not
        # buffer-at-finish.
        engine.step()
        assert all(1 <= len(rec.tokens) < 6 for rec in recorders.values())
        assert not any(rec.terminal for rec in recorders.values())
        results = engine.run()
        for i, rec in recorders.items():
            rec.assert_stream_contract()
            assert rec.tokens == results[ids[i]].generated_tokens
            assert rec.terminal.finish_reason == "length"
            assert rec.tokens == sequential_tokens(
                arch, shared_weights, [1 + i, 5, 9 + 2 * i],
                max_new_tokens=6)

    def test_stream_assembler_round_trip(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights))
        assembler = StreamAssembler([3, 1, 4])

        def hook(event):
            if event.finished:
                assembler.finish(event.finish_reason)
            else:
                assembler.feed_token(event.index, event.token)

        sid = engine.submit([3, 1, 4], max_new_tokens=5, stream_hook=hook)
        results = engine.run()
        result = assembler.result()
        assert result.generated_tokens == results[sid].generated_tokens
        assert result.finish_reason == "length"

    def test_chunked_prefill_streams_after_last_chunk(self, arch,
                                                      shared_weights):
        prompt = list(np.random.default_rng(5).integers(
            1, arch.vocab_size, size=70))
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32),
                               prefill_chunk=16)
        rec = Recorder()
        sid = engine.submit(prompt, max_new_tokens=6, stream_hook=rec)
        # 70-token prompt at chunk 16: the first 4 steps are prefill-only.
        for _ in range(4):
            engine.step()
            assert rec.tokens == []
        results = engine.run()
        rec.assert_stream_contract()
        assert rec.tokens == results[sid].generated_tokens
        assert rec.tokens == sequential_tokens(
            arch, shared_weights, prompt, max_new_tokens=6)

    def test_preemption_does_not_duplicate_tokens(self, arch,
                                                  shared_weights):
        """Recompute after preemption must not re-publish old tokens."""
        prompts = [[1 + i] * 12 for i in range(3)]
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=3,
                               kv_cache_bytes=page_budget(arch, 4),
                               prefix_caching=False)
        recorders = [Recorder() for _ in prompts]
        ids = [engine.submit(p, max_new_tokens=10, stream_hook=r)
               for p, r in zip(prompts, recorders)]
        results = engine.run()
        assert engine.preemptions > 0, "pool was sized to force preemption"
        for prompt, sid, rec in zip(prompts, ids, recorders):
            rec.assert_stream_contract()
            assert rec.tokens == results[sid].generated_tokens
            assert rec.tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=10)

    def test_temperature_stream_matches_sequential(self, arch,
                                                   shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2)
        rec = Recorder()
        engine.submit([4, 9, 2], max_new_tokens=6, temperature=0.8,
                      seed=123, stream_hook=rec)
        engine.submit([7, 7], max_new_tokens=6, temperature=0.8, seed=99)
        engine.run()
        rec.assert_stream_contract()
        assert rec.tokens == sequential_tokens(
            arch, shared_weights, [4, 9, 2], max_new_tokens=6,
            temperature=0.8, seed=123)

    def test_hook_exception_does_not_break_the_batch(self, arch,
                                                     shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2)

        def broken(event):
            raise RuntimeError("consumer crashed")

        rec = Recorder()
        bad = engine.submit([1, 2], max_new_tokens=4, stream_hook=broken)
        good = engine.submit([3, 4], max_new_tokens=4, stream_hook=rec)
        results = engine.run()
        assert engine.stream_hook_errors > 0
        assert len(results[bad].generated_tokens) == 4  # still completed
        rec.assert_stream_contract()
        assert rec.tokens == results[good].generated_tokens

    def test_cancel_publishes_terminal_event(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2)
        rec = Recorder()
        sid = engine.submit([1, 2], max_new_tokens=50, stream_hook=rec)
        engine.step()
        assert len(rec.tokens) >= 1
        result = engine.cancel(sid)
        rec.assert_stream_contract()
        assert rec.terminal.finish_reason == "cancelled"
        assert rec.tokens == result.generated_tokens


class TestEngineTiming:
    def test_ttft_and_decode_wall_recorded(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=4)
        for i in range(3):
            engine.submit([1 + i, 2], max_new_tokens=4)
        engine.run()
        stats = engine.serving_stats()
        assert stats["ttft_count"] == 3
        assert stats["ttft_mean_s"] > 0.0
        assert stats["decode_step_wall_mean_s"] > 0.0
        assert stats["queue_depth"] == 0
        samples = engine.drain_timing_samples()
        assert len(samples["ttft_s"]) == 3
        assert len(samples["decode_step_s"]) == stats["decode_steps"]
        drained_again = engine.drain_timing_samples()
        assert drained_again["ttft_s"] == []
        assert drained_again["decode_step_s"] == []
        # The running means survive the drain.
        assert engine.serving_stats()["ttft_mean_s"] == stats["ttft_mean_s"]

    def test_session_ttft_set_at_first_token(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights))
        sid = engine.submit([1, 2, 3], max_new_tokens=4)
        assert engine.sessions[sid].ttft is None
        engine.step()  # prefill + first sample
        assert engine.sessions[sid].ttft is not None
        assert engine.sessions[sid].ttft >= 0.0
