"""Serving engine: batched == sequential, continuous batching, LUT reuse."""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.plan import clear_plan_cache, plan_cache_stats
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import (
    BatchStats,
    InferenceSession,
    SamplingParams,
    ServingEngine,
    SessionState,
    batched_decode_step,
    shared_input_forward,
)


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=64)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights, kind="tmac"):
    if kind == "reference":
        backend = get_backend("reference")
    else:
        backend = get_backend(kind, bits=4, group_size=32)
    return TransformerModel(arch, engine=backend, weights=weights)


class TestSessionLifecycle:
    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            InferenceSession(prompt_tokens=[])

    def test_non_positive_budget_rejected(self):
        """A request must be able to produce at least one token."""
        with pytest.raises(ValueError):
            SamplingParams(max_new_tokens=-1)
        with pytest.raises(ValueError):
            SamplingParams(max_new_tokens=0)
        SamplingParams(max_new_tokens=1)

    def test_invalid_top_k_rejected(self):
        """top_k < 0 is meaningless; 0 (disabled) and positive are fine."""
        with pytest.raises(ValueError):
            SamplingParams(top_k=-1)
        SamplingParams(top_k=0)
        SamplingParams(top_k=5)

    def test_invalid_temperature_rejected(self):
        """temperature must be finite and >= 0, like the budget check."""
        for bad in (-0.1, float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                SamplingParams(temperature=bad)
        SamplingParams(temperature=0.0)
        SamplingParams(temperature=1.5)

    def test_invalid_temperature_rejected_at_submit(self, arch,
                                                    shared_weights):
        serving = ServingEngine(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            serving.submit([1, 2], temperature=-1.0)
        with pytest.raises(ValueError):
            serving.submit([1, 2], temperature=float("nan"))
        assert serving.num_waiting == 0 and not serving.sessions

    def test_states(self):
        session = InferenceSession(prompt_tokens=[1, 2])
        assert session.state is SessionState.WAITING
        assert not session.finished
        session.finish()
        assert session.finished

    def test_exhausted_budget_advance_samples_nothing(self):
        """advance() on a spent-budget session finishes without sampling."""
        session = InferenceSession(
            prompt_tokens=[1], params=SamplingParams(max_new_tokens=1))
        session.generated_tokens = [3]  # budget already spent
        session.last_logits = np.array([0.0, 1.0], dtype=np.float32)
        session.advance(max_seq_len=64)
        assert session.finished
        assert session.generated_tokens == [3]
        assert session.finish_reason == "length"

    def test_invalid_requests_rejected_at_submit(self, arch, shared_weights):
        """Bad requests must fail at submit(), not mid-batch in step()."""
        serving = ServingEngine(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            serving.submit([])
        with pytest.raises(ValueError):  # out-of-vocabulary token
            serving.submit([arch.vocab_size + 5])
        with pytest.raises(ValueError):  # prompt longer than the context
            serving.submit([1] * (arch.max_seq_len + 1))
        assert serving.num_waiting == 0 and not serving.sessions


class TestBatchedEqualsSequential:
    """Core serving guarantee: batching does not change any request's output."""

    # T-MAC is row-independent, so token equality is guaranteed bitwise.
    # The BLAS-backed reference can differ in final logits ulps between
    # batched and single-row matmuls; with these weights the argmax gaps
    # are orders of magnitude larger, so token equality is stable.
    @pytest.mark.parametrize("kind", ["tmac", "reference"])
    def test_eight_sessions_match_sequential(self, arch, shared_weights, kind):
        model = build_model(arch, shared_weights, kind)
        prompts = [[1 + i, 5, 9 + (2 * i) % 40] for i in range(8)]
        serving = ServingEngine(model, max_batch_size=8)
        ids = [serving.submit(p, max_new_tokens=8) for p in prompts]
        results = serving.run()

        sequential_model = build_model(arch, shared_weights, kind)
        generator = Generator(sequential_model)
        for prompt, session_id in zip(prompts, ids):
            expected = generator.generate(prompt, max_new_tokens=8)
            assert results[session_id].generated_tokens == \
                expected.generated_tokens

    def test_fast_aggregation_backend(self, arch, shared_weights):
        model = build_model(arch, shared_weights, "tmac-fa")
        prompts = [[2 + i, 7] for i in range(4)]
        serving = ServingEngine(model, max_batch_size=4)
        ids = [serving.submit(p, max_new_tokens=5) for p in prompts]
        results = serving.run()
        generator = Generator(build_model(arch, shared_weights, "tmac-fa"))
        for prompt, session_id in zip(prompts, ids):
            assert results[session_id].generated_tokens == \
                generator.generate(prompt, max_new_tokens=5).generated_tokens

    def test_varying_lengths_and_stop_tokens(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        requests = [
            ([3, 1, 4, 1, 5], dict(max_new_tokens=3)),
            ([2, 7], dict(max_new_tokens=9)),
            ([9, 2, 6], dict(max_new_tokens=6)),
            ([5], dict(max_new_tokens=12)),
            ([8, 8], dict(max_new_tokens=1)),
        ]
        serving = ServingEngine(model, max_batch_size=3)
        ids = [serving.submit(p, **kw) for p, kw in requests]
        results = serving.run()
        generator = Generator(build_model(arch, shared_weights))
        for (prompt, kwargs), session_id in zip(requests, ids):
            expected = generator.generate(prompt, **kwargs)
            assert results[session_id].generated_tokens == \
                expected.generated_tokens

    def test_temperature_sampling_matches_with_same_seed(self, arch,
                                                         shared_weights):
        model = build_model(arch, shared_weights)
        prompt = [4, 9, 2]
        serving = ServingEngine(model, max_batch_size=2)
        sid = serving.submit(prompt, max_new_tokens=6, temperature=0.8,
                             seed=123)
        other = serving.submit([7, 7], max_new_tokens=6, temperature=0.8,
                               seed=99)
        results = serving.run()
        generator = Generator(build_model(arch, shared_weights), seed=123)
        expected = generator.generate(prompt, max_new_tokens=6,
                                      temperature=0.8)
        assert results[sid].generated_tokens == expected.generated_tokens
        assert other in results


class TestContinuousBatching:
    def test_waiting_sessions_admitted_as_slots_free(self, arch,
                                                     shared_weights):
        model = build_model(arch, shared_weights)
        serving = ServingEngine(model, max_batch_size=2)
        # Two long requests occupy the batch; two short ones queue behind.
        long_a = serving.submit([1, 2], max_new_tokens=10)
        long_b = serving.submit([3, 4], max_new_tokens=10)
        short_a = serving.submit([5, 6], max_new_tokens=2)
        short_b = serving.submit([7, 8], max_new_tokens=2)
        serving.step()
        assert serving.num_active == 2
        assert serving.num_waiting == 2
        results = serving.run()
        assert set(results) == {long_a, long_b, short_a, short_b}
        assert len(results[long_a].generated_tokens) == 10
        assert len(results[short_a].generated_tokens) == 2

    def test_batch_never_exceeds_limit(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        serving = ServingEngine(model, max_batch_size=3)
        for i in range(7):
            serving.submit([1 + i], max_new_tokens=4)
        while serving.has_work:
            summary = serving.step()
            assert summary["batch_size"] <= 3
        assert serving.stats.max_batch_size <= 3

    def test_stats_accumulate(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        serving = ServingEngine(model, max_batch_size=4)
        for i in range(4):
            serving.submit([2 + i, 3], max_new_tokens=4)
        serving.run()
        stats = serving.serving_stats()
        assert stats["prefills"] == 4
        assert stats["decode_steps"] >= 3
        assert stats["mean_batch_size"] > 1.0


class TestLUTReuse:
    def test_shared_input_forward_reuses_tables(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        block = model.blocks[0]
        ops = [block.attention.q_proj, block.attention.k_proj,
               block.attention.v_proj]
        x = np.random.default_rng(0).standard_normal(
            (2, arch.hidden_size)).astype(np.float32)
        stats = BatchStats()
        shared = shared_input_forward(ops, x, stats)
        assert stats.lut_precomputes == 1
        assert stats.lut_reuses == 2
        for op, out in zip(ops, shared):
            np.testing.assert_array_equal(out, op(x))

    def test_reference_ops_fall_back(self, arch, shared_weights):
        model = build_model(arch, shared_weights, "reference")
        block = model.blocks[0]
        ops = [block.attention.q_proj, block.attention.k_proj]
        x = np.zeros((1, arch.hidden_size), dtype=np.float32)
        stats = BatchStats()
        shared_input_forward(ops, x, stats)
        assert stats.lut_precomputes == 0
        assert stats.lut_reuses == 0

    def test_serving_reports_lut_and_plan_cache_stats(self, arch):
        clear_plan_cache()
        weights = generate_random_weights(make_arch(), seed=11)
        model = build_model(arch, weights)
        serving = ServingEngine(model, max_batch_size=4)
        for i in range(4):
            serving.submit([1 + i, 2], max_new_tokens=4)
        serving.run()
        stats = serving.serving_stats()
        assert stats["lut_reuses"] > 0
        # Rebinding the same checkpoint (e.g. for the sequential comparison
        # path) hits the plan cache instead of re-preprocessing.
        build_model(arch, weights)
        assert plan_cache_stats()["hits"] >= 15

    def test_finished_sessions_release_memory(self, arch, shared_weights):
        """KV caches are dropped at finish; release() evicts the session."""
        model = build_model(arch, shared_weights)
        serving = ServingEngine(model, max_batch_size=2)
        sid = serving.submit([1, 2], max_new_tokens=3)
        active = serving.submit([3, 4], max_new_tokens=50)
        serving.step()
        with pytest.raises(ValueError):  # still decoding
            serving.release(active)
        with pytest.raises(KeyError):
            serving.release(10 ** 9)
        while not serving.sessions[sid].finished:
            serving.step()
        assert serving.sessions[sid].caches is None
        result = serving.release(sid)
        assert len(result.generated_tokens) == 3
        assert sid not in serving.sessions
        # The other session keeps decoding unaffected.
        serving.step()
        assert serving.num_active == 1

    def test_session_decode_counts(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        serving = ServingEngine(model, max_batch_size=2)
        sid = serving.submit([1, 2, 3], max_new_tokens=5)
        results = serving.run()
        result = results[sid]
        assert result.prefill_length == 3
        assert len(result.generated_tokens) == 5
        # One batched forward per generated token except the last.
        assert result.decode_steps == 4


class TestBatchedDecodeValidation:
    def test_rejects_mismatched_inputs(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        caches = [model.new_cache()]
        with pytest.raises(ValueError):
            batched_decode_step(model, [], [], [])
        with pytest.raises(ValueError):
            batched_decode_step(model, [1, 2], [0], [caches[0], caches[0]])
        with pytest.raises(ValueError):
            batched_decode_step(model, [1], [0], [])
        with pytest.raises(ValueError):
            batched_decode_step(model, [10 ** 6], [0], caches)
