"""Request lifecycle in the engine: priorities, deadlines, queued cancel.

The serving gateway delegates its scheduling policy to the engine — this
file pins down that policy deterministically (the deadline tests inject a
fake clock instead of sleeping).
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine, SessionState

PAGE = 16


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=192)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def page_budget(arch, pages):
    return pages * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                  arch.head_dim, PAGE)


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestPriorityAdmission:
    def test_higher_priority_admitted_first(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1)
        running = engine.submit([1, 2], max_new_tokens=2)
        engine.step()  # occupy the single slot
        low = engine.submit([3, 4], max_new_tokens=2, priority=0)
        high = engine.submit([5, 6], max_new_tokens=2, priority=5)
        while not engine.sessions[running].finished:
            engine.step()
        engine.step()  # the freed slot goes to the high-priority request
        assert engine.sessions[high].state is not SessionState.WAITING
        assert engine.sessions[low].state is SessionState.WAITING
        results = engine.run()
        assert set(results) == {running, low, high}

    def test_equal_priority_stays_fifo(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1)
        running = engine.submit([1, 2], max_new_tokens=2)
        engine.step()
        first = engine.submit([3, 4], max_new_tokens=2)
        second = engine.submit([5, 6], max_new_tokens=2)
        while not engine.sessions[running].finished:
            engine.step()
        engine.step()
        assert engine.sessions[first].state is not SessionState.WAITING
        assert engine.sessions[second].state is SessionState.WAITING
        engine.run()

    def test_preempted_session_keeps_arrival_rank(self, arch,
                                                  shared_weights):
        """A recompute victim is not pushed behind same-priority arrivals."""
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=3,
                               kv_cache_bytes=page_budget(arch, 4),
                               prefix_caching=False)
        ids = [engine.submit([1 + i] * 12, max_new_tokens=10)
               for i in range(3)]
        results = engine.run(max_steps=500)
        assert engine.preemptions > 0
        for sid in ids:
            assert len(results[sid].generated_tokens) == 10


class TestDeadlines:
    def test_queued_request_expires(self, arch, shared_weights):
        clock = FakeClock()
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1, clock=clock)
        running = engine.submit([1, 2], max_new_tokens=8)
        engine.step()
        queued = engine.submit([3, 4], max_new_tokens=8,
                               deadline=clock.now + 5.0)
        clock.advance(10.0)
        engine.step()
        assert engine.sessions[queued].finished
        assert engine.sessions[queued].finish_reason == "deadline"
        assert engine.deadline_expirations == 1
        results = engine.run()
        assert results[queued].finish_reason == "deadline"
        assert results[queued].generated_tokens == []
        assert len(results[running].generated_tokens) == 8

    def test_running_request_expires_and_frees_pages(self, arch,
                                                     shared_weights):
        clock = FakeClock()
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32),
                               clock=clock)
        baseline = engine.pool.free_blocks
        sid = engine.submit([1, 2, 3], max_new_tokens=50,
                            deadline=clock.now + 5.0)
        for _ in range(3):
            engine.step()
        assert engine.pool.free_blocks < baseline
        produced = len(engine.sessions[sid].generated_tokens)
        assert produced >= 3
        clock.advance(10.0)
        engine.step()
        session = engine.sessions[sid]
        assert session.finished and session.finish_reason == "deadline"
        assert engine.pool.free_blocks == baseline
        result = engine.results()[sid]
        assert len(result.generated_tokens) == produced  # partials kept

    def test_no_deadline_never_expires(self, arch, shared_weights):
        clock = FakeClock()
        engine = ServingEngine(build_model(arch, shared_weights),
                               clock=clock)
        sid = engine.submit([1, 2], max_new_tokens=4)
        clock.advance(1e9)
        results = engine.run()
        assert results[sid].finish_reason == "length"
        assert engine.deadline_expirations == 0

    def test_stats_expose_lifecycle_counters(self, arch, shared_weights):
        clock = FakeClock()
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1, clock=clock)
        engine.submit([1, 2], max_new_tokens=2)
        engine.submit([3, 4], max_new_tokens=2, deadline=clock.now - 1.0)
        extra = engine.submit([5, 6], max_new_tokens=2)
        engine.step()
        stats = engine.serving_stats()
        assert stats["deadline_expirations"] == 1
        assert stats["queue_depth"] == 1  # `extra` still waiting
        assert extra in engine.sessions


class TestCancelQueued:
    """cancel() of a still-QUEUED session — the gateway's
    disconnect-before-admission path."""

    def test_cancel_queued_session_no_leak_result_once(self, arch,
                                                       shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, 32))
        baseline = engine.pool.free_blocks
        running = engine.submit([1, 2], max_new_tokens=6)
        engine.step()
        occupied = engine.pool.free_blocks
        queued = engine.submit([3, 4, 5], max_new_tokens=6)
        engine.step()  # batch is full: the session stays QUEUED
        session = engine.sessions[queued]
        assert session.state is SessionState.WAITING
        assert session.page_cache is None  # never prefilled, no pages

        result = engine.cancel(queued)
        # Result retrievable exactly once, with the right reason.
        assert result.finish_reason == "cancelled"
        assert result.generated_tokens == []
        assert queued not in engine.sessions
        with pytest.raises(KeyError):
            engine.cancel(queued)
        with pytest.raises(KeyError):
            engine.release(queued)
        # No page leak: the cancel changed nothing about the pool.
        assert engine.pool.free_blocks == occupied
        # The engine keeps serving; all pages return at drain.
        results = engine.run()
        assert queued not in results
        assert len(results[running].generated_tokens) == 6
        assert engine.pool.free_blocks == baseline

    def test_cancel_active_returns_partial_tokens(self, arch,
                                                  shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32))
        baseline = engine.pool.free_blocks
        sid = engine.submit([1, 2, 3], max_new_tokens=50)
        for _ in range(4):
            engine.step()
        result = engine.cancel(sid)
        assert result.finish_reason == "cancelled"
        assert len(result.generated_tokens) >= 3
        assert engine.pool.free_blocks == baseline
