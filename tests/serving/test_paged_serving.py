"""Paged serving: prefix sharing, preemption, chunked prefill, cancel.

The correctness bar for the paged scheduler is token-identical output to
the sequential per-request path — including when sessions share a prompt
prefix, when the pool runs out of pages mid-decode (preemption +
recompute), and when prompts are prefilled in chunks.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine, SessionState

PAGE = 16


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=192)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def page_budget(arch, pages):
    return pages * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                  arch.head_dim, PAGE)


def sequential_tokens(arch, weights, prompt, **kwargs):
    generator = Generator(build_model(arch, weights),
                          seed=kwargs.get("seed", 0))
    kwargs.pop("seed", None)
    return generator.generate(prompt, **kwargs).generated_tokens


class TestPagedEqualsSequential:
    def test_paged_batch_matches_sequential(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        prompts = [[1 + i, 5, 9 + (2 * i) % 40] for i in range(8)]
        engine = ServingEngine(model, max_batch_size=8,
                               kv_cache_bytes=page_budget(arch, 64))
        ids = [engine.submit(p, max_new_tokens=8) for p in prompts]
        results = engine.run()
        for prompt, sid in zip(prompts, ids):
            assert results[sid].generated_tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=8)

    def test_chunked_prefill_matches_sequential(self, arch, shared_weights):
        """Long prompts split across steps produce identical tokens."""
        model = build_model(arch, shared_weights)
        rng = np.random.default_rng(5)
        prompts = [rng.integers(1, arch.vocab_size, size=70).tolist()
                   for _ in range(3)]
        engine = ServingEngine(model, max_batch_size=3,
                               kv_cache_bytes=page_budget(arch, 32),
                               prefill_chunk=16)
        ids = [engine.submit(p, max_new_tokens=6) for p in prompts]
        results = engine.run()
        stats = engine.serving_stats()
        # 70-token prompts at chunk 16 need 5 chunks each.
        assert stats["prefill_chunks"] >= 15
        for prompt, sid in zip(prompts, ids):
            assert results[sid].generated_tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=6)

    def test_chunked_prefill_does_not_stall_decoding(self, arch,
                                                     shared_weights):
        """A long prompt prefills while an admitted session keeps decoding."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32),
                               prefill_chunk=8)
        short = engine.submit([1, 2], max_new_tokens=12)
        engine.step()  # short is decoding
        long_prompt = list(np.random.default_rng(9).integers(
            1, arch.vocab_size, size=40))
        engine.submit(long_prompt, max_new_tokens=2)
        summaries = []
        for _ in range(30):
            summaries.append(engine.step())
            if summaries[-1]["prefilling"] == 0:
                break
        # Steps that both advanced the long prompt's prefill AND decoded
        # the short session: the prompt did not stall the batch.
        assert any(s["prefilling"] > 0 and s["batch_size"] > 0
                   for s in summaries)
        engine.run()
        assert short not in engine._active

    def test_temperature_sampling_survives_paging(self, arch,
                                                  shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32))
        sid = engine.submit([4, 9, 2], max_new_tokens=6, temperature=0.8,
                            seed=123)
        results = engine.run()
        assert results[sid].generated_tokens == sequential_tokens(
            arch, shared_weights, [4, 9, 2], max_new_tokens=6,
            temperature=0.8, seed=123)


class TestPrefixSharing:
    def test_shared_prefix_sessions_match_isolated_runs(self, arch,
                                                        shared_weights):
        """Two sessions with a 100-token common prefix decode exactly the
        tokens their isolated sequential runs produce, while mapping the
        same physical pages."""
        model = build_model(arch, shared_weights)
        rng = np.random.default_rng(11)
        prefix = rng.integers(1, arch.vocab_size, size=100).tolist()
        prompts = [prefix + [7, 3], prefix + [8, 4]]
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 40))
        ids = [engine.submit(p, max_new_tokens=6) for p in prompts]

        engine.step()  # both admitted: prefix pages now shared
        stats = engine.serving_stats()
        assert stats["kv_shared_blocks"] >= 100 // PAGE  # live sharing
        assert stats["prefix_hit_tokens"] >= 96
        assert stats["prefix_hit_rate"] > 0

        results = engine.run()
        for prompt, sid in zip(prompts, ids):
            assert results[sid].generated_tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=6)
        # Sharing means fewer live pages than two isolated block tables.
        final = engine.serving_stats()
        isolated_pages = 2 * -(-(len(prompts[0]) + 6) // PAGE)
        assert final["kv_peak_used_blocks"] < isolated_pages

    def test_prefix_reuse_across_sequential_requests(self, arch,
                                                     shared_weights):
        """A request arriving after another finished reuses its pages."""
        model = build_model(arch, shared_weights)
        rng = np.random.default_rng(13)
        prefix = rng.integers(1, arch.vocab_size, size=64).tolist()
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 32))
        first = engine.submit(prefix + [1], max_new_tokens=4)
        engine.run()
        second = engine.submit(prefix + [2], max_new_tokens=4)
        results = engine.run()
        stats = engine.serving_stats()
        assert stats["prefix_hit_tokens"] >= 64  # pages survived retirement
        assert results[second].generated_tokens == sequential_tokens(
            arch, shared_weights, prefix + [2], max_new_tokens=4)


class TestPreemption:
    def test_oom_preempts_youngest_and_recovers(self, arch, shared_weights):
        """When decode outgrows the pool, the youngest session is requeued
        and every request still finishes with sequential-identical tokens."""
        model = build_model(arch, shared_weights)
        # 3 sessions, each needing 2 pages by the end, in a 4-page pool:
        # the third must be preempted and recomputed.
        engine = ServingEngine(model, max_batch_size=3,
                               kv_cache_bytes=page_budget(arch, 4),
                               prefix_caching=False)
        prompts = [[1 + i] * 12 for i in range(3)]
        ids = [engine.submit(p, max_new_tokens=10) for p in prompts]
        results = engine.run(max_steps=500)
        assert engine.preemptions > 0
        assert len(results) == 3
        for prompt, sid in zip(prompts, ids):
            assert results[sid].generated_tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=10)

    def test_admission_waits_for_free_pages(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=4,
                               kv_cache_bytes=page_budget(arch, 2),
                               prefix_caching=False)
        a = engine.submit([1] * 20, max_new_tokens=4)   # needs both pages
        b = engine.submit([2] * 20, max_new_tokens=4)   # must wait
        engine.step()
        assert engine.num_active == 1
        assert engine.num_waiting == 1
        results = engine.run(max_steps=500)
        assert set(results) == {a, b}

    def test_oversized_prompt_rejected_at_submit(self, arch,
                                                 shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 2))
        with pytest.raises(ValueError):
            engine.submit([1] * 40, max_new_tokens=4)  # needs 3 pages

    def test_max_length_prompt_fits_exactly_sized_pool(self, arch,
                                                       shared_weights):
        """A max_seq_len prompt must pass submit()'s capacity check when
        the pool holds exactly the context window (the +1 decode slot is
        capped at max_seq_len, as the scheduler caps it)."""
        model = build_model(arch, shared_weights)
        pages = -(-arch.max_seq_len // PAGE)
        engine = ServingEngine(model, max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, pages),
                               prefix_caching=False)
        prompt = list(np.random.default_rng(3).integers(
            1, arch.vocab_size, size=arch.max_seq_len))
        sid = engine.submit(prompt, max_new_tokens=4)
        results = engine.run(max_steps=50)
        # Context limit: exactly one token fits after a full-window prompt.
        assert len(results[sid].generated_tokens) == 1
        assert engine.pool.allocator.used_blocks == 0  # pages released

    def test_sessions_finishing_at_prefill_release_pages(self, arch,
                                                         shared_weights):
        """One-token sessions never join the decode batch; their pages must
        still be released (regression: waves of short requests used to
        leak the pool dry and livelock run())."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=4,
                               kv_cache_bytes=page_budget(arch, 8),
                               prefix_caching=False)
        for wave in range(3):
            ids = [engine.submit([1 + i] * 20, max_new_tokens=1)
                   for i in range(4)]
            results = engine.run(max_steps=50)
            assert all(sid in results for sid in ids)
            assert engine.pool.allocator.used_blocks == 0
        assert engine.pool.free_blocks == 8


class TestCancel:
    def test_cancel_waiting_session(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, 8))
        active = engine.submit([1, 2], max_new_tokens=8)
        waiting = engine.submit([3, 4], max_new_tokens=8)
        engine.step()
        engine.cancel(waiting)
        assert waiting not in engine.sessions
        assert engine.num_waiting == 0
        results = engine.run()
        assert set(results) == {active}

    def test_cancel_active_session_frees_pages(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 8),
                               prefix_caching=False)
        sid = engine.submit([1] * 20, max_new_tokens=50)
        other = engine.submit([2, 3], max_new_tokens=4)
        engine.step()
        used_before = engine.pool.allocator.used_blocks
        engine.cancel(sid)
        assert engine.pool.allocator.used_blocks < used_before
        assert sid not in engine.sessions
        results = engine.run()
        assert set(results) == {other}

    def test_cancel_unknown_or_finished_raises(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2)
        sid = engine.submit([1, 2], max_new_tokens=1)
        engine.run()
        with pytest.raises(KeyError):
            engine.cancel(10 ** 9)
        with pytest.raises(ValueError):
            engine.cancel(sid)  # finished: collect via release()
        assert engine.release(sid).generated_tokens

    def test_cancel_works_without_paging(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=1)
        active = engine.submit([1, 2], max_new_tokens=4)
        engine.step()
        engine.cancel(active)
        assert not engine.has_work and not engine.sessions
