"""Multi-stop-token support: validation, alias, batched == sequential."""

import pytest

from repro.backends import get_backend
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import SamplingParams, ServingEngine


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=64)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


class TestSamplingParamsStopTokens:
    def test_stop_set_unions_alias_and_list(self):
        params = SamplingParams(stop_token=5, stop_tokens=(7, 9))
        assert params.stop_token_ids == frozenset({5, 7, 9})

    def test_defaults_are_empty(self):
        assert SamplingParams().stop_token_ids == frozenset()

    def test_single_int_is_accepted(self):
        assert SamplingParams(stop_tokens=4).stop_token_ids == \
            frozenset({4})

    def test_negative_stop_tokens_rejected(self):
        with pytest.raises(ValueError):
            SamplingParams(stop_tokens=(3, -1))
        with pytest.raises(ValueError):
            SamplingParams(stop_token=-2)

    def test_coerced_to_tuple(self):
        params = SamplingParams(stop_tokens=[1, 2])
        assert params.stop_tokens == (1, 2)


class TestStopTokensEndToEnd:
    def _first_tokens(self, arch, weights, prompt, n):
        generator = Generator(build_model(arch, weights))
        return generator.generate(prompt, max_new_tokens=n).generated_tokens

    def test_batched_equals_sequential_with_stop_list(self, arch,
                                                      shared_weights):
        """Pick real mid-generation tokens as stops; both paths must cut
        the generation at the same point."""
        prompts = [[1 + i, 5, 9 + 2 * i] for i in range(4)]
        stops = {}
        for prompt in map(tuple, prompts):
            tokens = self._first_tokens(arch, shared_weights, list(prompt),
                                        8)
            # Stop on the 3rd generated token (plus a never-produced id).
            stops[prompt] = (tokens[2], 96)
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=4)
        ids = {tuple(p): engine.submit(p, max_new_tokens=8,
                                       stop_tokens=stops[tuple(p)])
               for p in prompts}
        results = engine.run()
        generator = Generator(build_model(arch, shared_weights))
        for prompt in map(tuple, prompts):
            expected = generator.generate(list(prompt), max_new_tokens=8,
                                          stop_tokens=stops[prompt])
            got = results[ids[prompt]]
            assert got.generated_tokens == expected.generated_tokens
            assert got.finish_reason == expected.finish_reason == "stop"
            # Cut at the stop token (which may recur before index 2).
            assert len(got.generated_tokens) <= 3
            assert got.generated_tokens[-1] in stops[prompt]

    def test_alias_still_works_at_submit(self, arch, shared_weights):
        prompt = [2, 7, 4]
        tokens = self._first_tokens(arch, shared_weights, prompt, 8)
        engine = ServingEngine(build_model(arch, shared_weights))
        sid = engine.submit(prompt, max_new_tokens=8,
                            stop_token=tokens[1])
        results = engine.run()
        expected = Generator(build_model(arch, shared_weights)).generate(
            prompt, max_new_tokens=8, stop_token=tokens[1])
        assert results[sid].generated_tokens == expected.generated_tokens
        assert results[sid].finish_reason == "stop"
        assert results[sid].generated_tokens[-1] == tokens[1]

    def test_generator_stop_tokens_param(self, arch, shared_weights):
        prompt = [3, 1, 4]
        tokens = self._first_tokens(arch, shared_weights, prompt, 8)
        generator = Generator(build_model(arch, shared_weights))
        result = generator.generate(prompt, max_new_tokens=8,
                                    stop_tokens=[tokens[1], 96])
        assert result.generated_tokens == tokens[:2]
        assert result.finish_reason == "stop"

    def test_generator_rejects_negative_stop_tokens(self, arch,
                                                    shared_weights):
        generator = Generator(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            generator.generate([1, 2], max_new_tokens=2, stop_tokens=[-3])

    def test_submit_rejects_negative_stop_tokens(self, arch,
                                                 shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            engine.submit([1, 2], stop_tokens=(4, -1))
        assert not engine.sessions
