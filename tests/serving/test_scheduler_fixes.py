"""Scheduler correctness fixes: cancel-during-prefill page release,
capacity-error progress guarantee, submit-time sampling validation, and
finish-reason reporting."""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine, SessionState

PAGE = 16


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=192)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


def build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def page_budget(arch, pages):
    return pages * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                  arch.head_dim, PAGE)


class TestCancelDuringPrefill:
    """cancel() on a PREFILLING session must return every page it bound."""

    @pytest.mark.parametrize("prefix_caching", [False, True])
    def test_mid_chunk_cancel_restores_free_pages(self, arch, shared_weights,
                                                  prefix_caching):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 8),
                               prefill_chunk=16,
                               prefix_caching=prefix_caching)
        baseline = engine.pool.free_blocks
        prompt = list(np.random.default_rng(1).integers(
            1, arch.vocab_size, size=60))
        sid = engine.submit(prompt, max_new_tokens=4)
        engine.step()  # one 16-token chunk done: session is mid-prefill
        session = engine.sessions[sid]
        assert session.state is SessionState.PREFILLING
        assert engine.pool.free_blocks < baseline  # pages are bound
        engine.cancel(sid)
        assert engine.pool.free_blocks == baseline
        assert engine.pool.allocator.used_blocks == 0
        assert sid not in engine.sessions
        assert not engine.has_work

    def test_cancel_before_first_chunk_is_clean(self, arch, shared_weights):
        """A session admitted but not yet bound holds nothing to leak."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 8),
                               prefill_chunk=8)
        baseline = engine.pool.free_blocks
        sid = engine.submit([1] * 20, max_new_tokens=2)
        engine.cancel(sid)  # still WAITING: no pages were ever bound
        assert engine.pool.free_blocks == baseline
        assert not engine.has_work

    def test_mid_chunk_cancel_keeps_shared_pages_alive(self, arch,
                                                       shared_weights):
        """Pages a prefilling session shares with a live sibling survive
        the cancel (refcounts, not ownership)."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2,
                               kv_cache_bytes=page_budget(arch, 12),
                               prefill_chunk=16)
        prefix = list(np.random.default_rng(2).integers(
            1, arch.vocab_size, size=48))
        keeper = engine.submit(prefix + [5], max_new_tokens=4)
        victim = engine.submit(prefix + [6], max_new_tokens=4)
        engine.step()  # both mid-prefill, prefix pages shared
        engine.cancel(victim)
        results = engine.run()
        assert set(results) == {keeper}
        generator = Generator(build_model(arch, shared_weights))
        assert results[keeper].generated_tokens == generator.generate(
            prefix + [5], max_new_tokens=4).generated_tokens
        assert engine.pool.allocator.used_blocks == 0

    def test_pages_reusable_after_mid_chunk_cancel(self, arch,
                                                   shared_weights):
        """The pool must be fully allocatable again: a prompt needing every
        page succeeds right after a mid-prefill cancel."""
        model = build_model(arch, shared_weights)
        pages = 4
        engine = ServingEngine(model, max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, pages),
                               prefill_chunk=16, prefix_caching=False)
        sid = engine.submit([2] * 48, max_new_tokens=4)  # needs 4 pages
        engine.step()
        engine.cancel(sid)
        full = engine.submit([3] * 48, max_new_tokens=4)
        results = engine.run(max_steps=100)
        assert full in results
        assert results[full].finish_reason in ("length", "stop")


class TestCapacityProgressGuarantee:
    """A session the pool can never satisfy fails fast with a capacity
    error instead of looping through preempt-recompute cycles."""

    def test_single_session_over_budget_fails_with_capacity_error(
            self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        pages = 2  # 32 positions
        engine = ServingEngine(model, max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, pages),
                               prefix_caching=False)
        sid = engine.submit([1] * 20, max_new_tokens=50)
        steps = 0
        while engine.has_work:
            engine.step()
            steps += 1
            assert steps < 100, "engine failed to make progress"
        results = engine.results()
        result = results[sid]
        assert result.finish_reason == "capacity"
        # It kept every token that fit before the pool ran dry...
        assert len(result.generated_tokens) > 0
        # ...without a single wasteful preempt-recompute cycle.
        assert engine.preemptions == 0
        assert engine.serving_stats()["capacity_failures"] == 1
        assert engine.pool.allocator.used_blocks == 0

    def test_over_budget_session_tokens_match_sequential_prefix(
            self, arch, shared_weights):
        """The partial output is the true prefix of an unconstrained run."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=1,
                               kv_cache_bytes=page_budget(arch, 2),
                               prefix_caching=False)
        sid = engine.submit([1] * 20, max_new_tokens=50)
        results = engine.run(max_steps=100)
        partial = results[sid].generated_tokens
        generator = Generator(build_model(arch, shared_weights))
        full = generator.generate([1] * 20,
                                  max_new_tokens=50).generated_tokens
        assert partial == full[:len(partial)]

    def test_multi_session_overflow_terminates(self, arch, shared_weights):
        """Competing sessions in a tight pool either finish normally or
        fail with a capacity error — run() always drains."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=3,
                               kv_cache_bytes=page_budget(arch, 4),
                               prefix_caching=False)
        ids = [engine.submit([1 + i] * 12, max_new_tokens=40)
               for i in range(3)]
        results = engine.run(max_steps=1000)
        assert set(results) == set(ids)
        assert engine.has_work is False
        reasons = {results[sid].finish_reason for sid in ids}
        assert reasons <= {"length", "stop", "context", "capacity"}
        assert engine.pool.allocator.used_blocks == 0


class TestSubmitValidation:
    def test_non_positive_max_tokens_rejected_at_submit(self, arch,
                                                        shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            engine.submit([1, 2], max_new_tokens=0)
        with pytest.raises(ValueError):
            engine.submit([1, 2], max_new_tokens=-3)
        assert engine.num_waiting == 0 and not engine.sessions

    def test_negative_top_k_rejected_at_submit(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            engine.submit([1, 2], top_k=-1)
        assert engine.num_waiting == 0 and not engine.sessions
        engine.submit([1, 2], top_k=0)   # disabled: fine
        engine.submit([1, 2], top_k=10)  # enabled: fine

    def test_negative_top_k_rejected_in_shared_sampler(self, arch,
                                                       shared_weights):
        """The sequential path shares sample_token with serving — it must
        reject the same inputs, not silently misinterpret them."""
        import numpy as np

        from repro.llm.inference import sample_token

        with pytest.raises(ValueError):
            sample_token(np.array([1.0, 2.0, 3.0]), 1.0,
                         np.random.default_rng(0), top_k=-1)
        generator = Generator(build_model(arch, shared_weights))
        with pytest.raises(ValueError):
            generator.generate([1, 2], max_new_tokens=2, temperature=1.0,
                               top_k=-1)

    def test_top_k_sampling_matches_sequential(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2)
        prompt = [4, 9, 2]
        sid = engine.submit(prompt, max_new_tokens=6, temperature=0.8,
                            top_k=5, seed=123)
        other = engine.submit([7, 7], max_new_tokens=6, temperature=0.8,
                              top_k=3, seed=99)
        results = engine.run()
        generator = Generator(build_model(arch, shared_weights), seed=123)
        expected = generator.generate(prompt, max_new_tokens=6,
                                      temperature=0.8, top_k=5)
        assert results[sid].generated_tokens == expected.generated_tokens
        assert other in results

    def test_top_k_actually_truncates(self, arch, shared_weights):
        """With top_k=1, temperature sampling degenerates to greedy."""
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=1)
        topk1 = engine.submit([4, 9, 2], max_new_tokens=6, temperature=2.0,
                              top_k=1, seed=7)
        results = engine.run()
        greedy = Generator(build_model(arch, shared_weights)).generate(
            [4, 9, 2], max_new_tokens=6, temperature=0.0)
        assert results[topk1].generated_tokens == greedy.generated_tokens


class TestFinishReasons:
    def test_length_and_stop_reasons(self, arch, shared_weights):
        model = build_model(arch, shared_weights)
        engine = ServingEngine(model, max_batch_size=2)
        by_length = engine.submit([1, 2], max_new_tokens=3)
        results = engine.run()
        assert results[by_length].finish_reason == "length"

        probe = Generator(build_model(arch, shared_weights)).generate(
            [1, 2], max_new_tokens=3)
        stop = probe.generated_tokens[0]
        engine2 = ServingEngine(build_model(arch, shared_weights),
                                max_batch_size=2)
        by_stop = engine2.submit([1, 2], max_new_tokens=8, stop_token=stop)
        results2 = engine2.run()
        assert results2[by_stop].finish_reason == "stop"
        assert results2[by_stop].generated_tokens == [stop]

    def test_release_preserves_finish_reason(self, arch, shared_weights):
        engine = ServingEngine(build_model(arch, shared_weights),
                               max_batch_size=1)
        sid = engine.submit([1, 2], max_new_tokens=2)
        engine.run()
        assert engine.release(sid).finish_reason == "length"
