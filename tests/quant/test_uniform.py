"""Unit tests for per-group uniform weight quantization."""

import numpy as np
import pytest

from repro.quant.uniform import (
    QuantizedWeight,
    dequantize_weights,
    max_code,
    quantize_weights,
)


class TestMaxCode:
    def test_values(self):
        assert max_code(1) == 1
        assert max_code(2) == 3
        assert max_code(3) == 7
        assert max_code(4) == 15
        assert max_code(8) == 255

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            max_code(0)


class TestQuantizeWeights:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_codes_within_range(self, bits):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((16, 128)).astype(np.float32)
        qw = quantize_weights(w, bits=bits, group_size=32)
        assert qw.codes.dtype == np.uint8
        assert qw.codes.max() <= max_code(bits)
        assert qw.codes.min() >= 0

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_reconstruction_error_bounded_by_scale(self, bits):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((8, 64)).astype(np.float32)
        qw = quantize_weights(w, bits=bits, group_size=16)
        recon = dequantize_weights(qw)
        # Round-to-nearest error is at most half a quantization step.
        per_group_scale = np.repeat(qw.scales, qw.group_size, axis=1)
        assert np.all(np.abs(recon - w) <= per_group_scale * 0.5 + 1e-6)

    def test_higher_bits_reduce_error(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((16, 256)).astype(np.float32)
        errors = []
        for bits in (1, 2, 3, 4):
            qw = quantize_weights(w, bits=bits, group_size=64)
            errors.append(float(np.mean((dequantize_weights(qw) - w) ** 2)))
        assert errors == sorted(errors, reverse=True)

    def test_shapes_of_scales_and_zeros(self):
        w = np.zeros((6, 96), dtype=np.float32)
        qw = quantize_weights(w, bits=4, group_size=32)
        assert qw.scales.shape == (6, 3)
        assert qw.zeros.shape == (6, 3)

    def test_zero_weights_do_not_divide_by_zero(self):
        w = np.zeros((4, 32), dtype=np.float32)
        qw = quantize_weights(w, bits=4, group_size=32)
        recon = dequantize_weights(qw)
        assert np.all(np.isfinite(recon))
        np.testing.assert_allclose(recon, 0.0, atol=1e-6)

    def test_asymmetric_covers_range(self):
        rng = np.random.default_rng(3)
        # Strictly positive weights: an asymmetric grid should fit much better
        # than a symmetric one at 2 bits.
        w = rng.uniform(1.0, 2.0, size=(8, 64)).astype(np.float32)
        sym = quantize_weights(w, bits=2, group_size=32, symmetric=True)
        asym = quantize_weights(w, bits=2, group_size=32, symmetric=False)
        err_sym = np.mean((dequantize_weights(sym) - w) ** 2)
        err_asym = np.mean((dequantize_weights(asym) - w) ** 2)
        assert err_asym < err_sym

    def test_group_size_must_divide_k(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros((4, 100), dtype=np.float32), bits=4,
                             group_size=64)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros(64, dtype=np.float32), bits=4)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros((4, 64), dtype=np.float32), bits=0)
        with pytest.raises(ValueError):
            quantize_weights(np.zeros((4, 64), dtype=np.float32), bits=9)


class TestQuantizedWeight:
    def test_properties(self, small_qweight):
        assert small_qweight.out_features == 48
        assert small_qweight.in_features == 256
        assert small_qweight.shape == (48, 256)
        assert small_qweight.num_groups == 4

    def test_memory_bytes_scales_with_bits(self):
        rng = np.random.default_rng(4)
        w = rng.standard_normal((32, 256)).astype(np.float32)
        sizes = [quantize_weights(w, bits=b, group_size=64).memory_bytes()
                 for b in (1, 2, 4)]
        # Packed code bytes double with the bit width (scales constant).
        assert sizes[0] < sizes[1] < sizes[2]
        code_only = [s - 2 * 32 * 4 for s in sizes]
        assert code_only[1] == 2 * code_only[0]
        assert code_only[2] == 4 * code_only[0]

    def test_validate_catches_out_of_range_codes(self, small_qweight):
        bad = QuantizedWeight(
            codes=np.full_like(small_qweight.codes, 200),
            scales=small_qweight.scales,
            zeros=small_qweight.zeros,
            bits=4,
            group_size=64,
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_catches_shape_mismatch(self, small_qweight):
        bad = QuantizedWeight(
            codes=small_qweight.codes,
            scales=small_qweight.scales[:, :2],
            zeros=small_qweight.zeros,
            bits=4,
            group_size=64,
        )
        with pytest.raises(ValueError):
            bad.validate()
