"""Unit tests for BitNet ternary quantization."""

import numpy as np
import pytest

from repro.quant.bitnet import quantize_bitnet, ternary_codes
from repro.quant.uniform import dequantize_weights


class TestTernaryCodes:
    def test_values_are_ternary(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((16, 64)).astype(np.float32)
        ternary, scales = ternary_codes(w)
        assert set(np.unique(ternary)).issubset({-1, 0, 1})
        assert scales.shape == (16,)
        assert np.all(scales > 0)

    def test_scale_is_row_absmean(self):
        w = np.array([[1.0, -1.0, 2.0, -2.0]], dtype=np.float32)
        _, scales = ternary_codes(w)
        np.testing.assert_allclose(scales, [1.5])

    def test_large_values_map_to_sign(self):
        w = np.array([[10.0, -10.0, 0.01, -0.01]], dtype=np.float32)
        ternary, _ = ternary_codes(w)
        assert ternary[0, 0] == 1
        assert ternary[0, 1] == -1
        assert ternary[0, 2] == 0
        assert ternary[0, 3] == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ternary_codes(np.zeros(8, dtype=np.float32))


class TestQuantizeBitnet:
    def test_emits_two_bit_codes(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((8, 128)).astype(np.float32)
        qw = quantize_bitnet(w, group_size=64)
        assert qw.bits == 2
        assert set(np.unique(qw.codes)).issubset({0, 1, 2})
        assert qw.metadata["ternary"] is True

    def test_dequantization_matches_ternary_reconstruction(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((8, 128)).astype(np.float32)
        qw = quantize_bitnet(w, group_size=32)
        ternary, scales = ternary_codes(w)
        expected = ternary.astype(np.float32) * scales[:, None]
        np.testing.assert_allclose(dequantize_weights(qw), expected, atol=1e-5)

    def test_compatible_with_generic_quantized_weight_contract(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((4, 64)).astype(np.float32)
        qw = quantize_bitnet(w, group_size=32)
        qw.validate()
        assert qw.scales.shape == (4, 2)

    def test_group_size_must_divide_k(self):
        with pytest.raises(ValueError):
            quantize_bitnet(np.zeros((4, 100), dtype=np.float32), group_size=64)
