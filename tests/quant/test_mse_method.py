"""Unit tests for the MSE clipping-scale search quantization method."""

import numpy as np
import pytest

from repro.quant.uniform import dequantize_weights, quantize_weights
from repro.workloads.generator import gaussian_weights


class TestMseMethod:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_never_worse_than_absmax(self, bits):
        w = gaussian_weights(32, 256, seed=bits + 100)
        absmax = quantize_weights(w, bits=bits, group_size=64,
                                  method="absmax")
        mse = quantize_weights(w, bits=bits, group_size=64, method="mse")
        err_absmax = float(np.mean((dequantize_weights(absmax) - w) ** 2))
        err_mse = float(np.mean((dequantize_weights(mse) - w) ** 2))
        assert err_mse <= err_absmax * 1.0001

    def test_large_gain_at_one_bit(self):
        """Clipping is what makes 1-bit round-to-nearest usable: the MSE
        search should roughly halve the reconstruction error on Gaussian
        weights (sign-quantization regime)."""
        w = gaussian_weights(64, 512, seed=7)
        absmax = quantize_weights(w, bits=1, group_size=64, method="absmax")
        mse = quantize_weights(w, bits=1, group_size=64, method="mse")
        err_absmax = float(np.mean((dequantize_weights(absmax) - w) ** 2))
        err_mse = float(np.mean((dequantize_weights(mse) - w) ** 2))
        assert err_mse < 0.6 * err_absmax

    def test_codes_still_in_range(self):
        w = gaussian_weights(16, 64, seed=8)
        qw = quantize_weights(w, bits=2, group_size=32, method="mse")
        qw.validate()
        assert qw.codes.max() <= 3

    def test_mse_weights_work_in_tmac_kernel(self):
        from repro.core.config import TMACConfig
        from repro.core.kernel import TMACKernel
        from repro.baselines.reference import quantized_reference_gemm
        from repro.workloads.generator import gaussian_activation

        w = gaussian_weights(32, 128, seed=9)
        a = gaussian_activation(1, 128, seed=10)
        qw = quantize_weights(w, bits=2, group_size=32, method="mse")
        out = TMACKernel(qw, TMACConfig(bits=2, table_quantization=False,
                                        act_dtype="float32")).matmul(a)
        ref = quantized_reference_gemm(a, qw)
        np.testing.assert_allclose(out, ref, atol=1e-3, rtol=1e-4)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros((2, 32), dtype=np.float32), bits=4,
                             group_size=32, method="entropy")
