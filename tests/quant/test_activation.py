"""Unit tests for dynamic int8 activation quantization."""

import numpy as np
import pytest

from repro.quant.activation import (
    dequantize_activation,
    quantize_activation,
)


class TestQuantizeActivation:
    def test_codes_in_int8_range(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 128)).astype(np.float32) * 5
        qa = quantize_activation(a, block_size=32)
        assert qa.codes.dtype == np.int8
        assert qa.codes.max() <= 127
        assert qa.codes.min() >= -127

    def test_round_trip_error_is_small(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 128)).astype(np.float32)
        qa = quantize_activation(a, block_size=32)
        recon = dequantize_activation(qa)
        rel = np.abs(recon - a).max() / np.abs(a).max()
        assert rel < 0.01  # int8 dynamic quantization is ~0.4% worst case

    def test_block_maximum_is_exactly_represented(self):
        a = np.zeros((1, 32), dtype=np.float32)
        a[0, 5] = 3.0
        qa = quantize_activation(a, block_size=32)
        recon = dequantize_activation(qa)
        np.testing.assert_allclose(recon[0, 5], 3.0, rtol=1e-6)

    def test_scales_shape(self):
        a = np.ones((2, 96), dtype=np.float32)
        qa = quantize_activation(a, block_size=32)
        assert qa.scales.shape == (2, 3)
        assert qa.memory_bytes() == 2 * 96 + 2 * 3 * 2

    def test_block_size_must_divide_k(self):
        with pytest.raises(ValueError):
            quantize_activation(np.zeros((2, 100), dtype=np.float32),
                                block_size=32)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_activation(np.zeros(32, dtype=np.float32))
