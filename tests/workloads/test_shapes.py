"""Unit tests for the benchmark shapes and generators."""

import numpy as np
import pytest

from repro.workloads.generator import (
    gaussian_activation,
    gaussian_weights,
    make_gemv_case,
)
from repro.workloads.shapes import (
    GEMM_SEQUENCE_LENGTH,
    KERNEL_SHAPES,
    kernel_shape,
    shapes_for_model,
)


class TestKernelShapes:
    def test_six_shapes_from_figure6(self):
        assert len(KERNEL_SHAPES) == 6
        assert [s.label for s in KERNEL_SHAPES] == ["S0", "S1", "S2", "S3",
                                                    "S4", "S5"]

    def test_shape_values_match_paper(self):
        assert (kernel_shape("S0").m, kernel_shape("S0").k) == (4096, 4096)
        assert (kernel_shape("S1").m, kernel_shape("S1").k) == (11008, 4096)
        assert (kernel_shape("S2").m, kernel_shape("S2").k) == (4096, 11008)
        assert (kernel_shape("S3").m, kernel_shape("S3").k) == (5120, 5120)
        assert (kernel_shape("S4").m, kernel_shape("S4").k) == (13824, 5120)
        assert (kernel_shape("S5").m, kernel_shape("S5").k) == (5120, 13824)

    def test_sources(self):
        assert len(shapes_for_model("Llama-2-7B")) == 3
        assert len(shapes_for_model("Llama-2-13B")) == 3
        with pytest.raises(KeyError):
            shapes_for_model("GPT-4")

    def test_gemm_variant(self):
        shape = kernel_shape("S0").with_n(GEMM_SEQUENCE_LENGTH)
        assert shape.n == 256
        assert str(shape) == "4096x4096x256"

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            kernel_shape("S9")


class TestGenerators:
    def test_deterministic(self):
        np.testing.assert_array_equal(gaussian_weights(4, 8, seed=1),
                                      gaussian_weights(4, 8, seed=1))
        assert not np.array_equal(gaussian_weights(4, 8, seed=1),
                                  gaussian_weights(4, 8, seed=2))

    def test_statistics(self):
        w = gaussian_weights(64, 256, seed=0, scale=2.0)
        assert abs(float(w.mean())) < 0.1
        assert float(w.std()) == pytest.approx(2.0, rel=0.05)

    def test_gemv_case_consistency(self):
        case = make_gemv_case(32, 96, bits=3, group_size=128)
        # 128 does not divide 96 -> shrunk group size still divides K.
        assert 96 % case.group_size == 0
        assert case.qweight.bits == 3
        assert case.reference.shape == (1, 32)
        np.testing.assert_allclose(
            case.reference,
            case.activation.astype(np.float64) @ case.weights.T, rtol=1e-5)

    def test_activation_shape(self):
        a = gaussian_activation(5, 16, seed=3)
        assert a.shape == (5, 16)
