"""Unit tests for the mpGEMM engines."""

import numpy as np
import pytest

from repro.core.config import TMACConfig
from repro.llm.engine import (
    DequantEngine,
    ReferenceEngine,
    TMACEngine,
    create_engine,
    pick_group_size,
)
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestPickGroupSize:
    def test_divisible_passes_through(self):
        assert pick_group_size(4096, 128) == 128

    def test_shrinks_to_divisor(self):
        assert pick_group_size(192, 128) == 64
        assert pick_group_size(48, 32) == 24 or 48 % pick_group_size(48, 32) == 0

    def test_small_k(self):
        assert pick_group_size(64, 128) == 64

    def test_rejects_tiny_k(self):
        with pytest.raises(ValueError):
            pick_group_size(2, 128)


class TestEngines:
    def setup_method(self):
        self.weight = gaussian_weights(32, 128, seed=0)
        self.activation = gaussian_activation(2, 128, seed=1)
        self.reference = self.activation @ self.weight.T

    def test_reference_engine_is_exact(self):
        linear = ReferenceEngine().make_linear(self.weight)
        np.testing.assert_allclose(linear(self.activation), self.reference,
                                   rtol=1e-5, atol=1e-5)

    def test_dequant_engine_close_to_reference(self):
        linear = DequantEngine(bits=4, group_size=64).make_linear(self.weight)
        out = linear(self.activation)
        nmse = np.mean((out - self.reference) ** 2) / np.mean(self.reference ** 2)
        assert nmse < 0.02

    def test_tmac_engine_close_to_reference(self):
        linear = TMACEngine(bits=4, group_size=64).make_linear(self.weight)
        out = linear(self.activation)
        nmse = np.mean((out - self.reference) ** 2) / np.mean(self.reference ** 2)
        assert nmse < 0.02

    def test_tmac_and_dequant_agree(self):
        """Both quantized engines consume the same weights: Table 4 parity."""
        tmac = TMACEngine(bits=4, group_size=64).make_linear(self.weight)
        dequant = DequantEngine(bits=4, group_size=64).make_linear(self.weight)
        a = self.activation
        diff = np.mean((tmac(a) - dequant(a)) ** 2) / np.mean(dequant(a) ** 2)
        assert diff < 1e-3

    def test_fast_aggregation_engine_name(self):
        engine = TMACEngine(bits=4,
                            config=TMACConfig(bits=4, fast_aggregation=True))
        assert "FA" in engine.name

    def test_bitnet_engines(self):
        tmac = TMACEngine(bitnet=True).make_linear(self.weight)
        dequant = DequantEngine(bitnet=True).make_linear(self.weight)
        out_t = tmac(self.activation)
        out_d = dequant(self.activation)
        assert out_t.shape == (2, 32)
        diff = np.mean((out_t - out_d) ** 2) / (np.mean(out_d ** 2) + 1e-12)
        assert diff < 1e-2

    def test_weight_bytes_reported(self):
        linear4 = TMACEngine(bits=4, group_size=64).make_linear(self.weight)
        linear2 = TMACEngine(bits=2, group_size=64).make_linear(self.weight)
        assert linear2.weight_bytes < linear4.weight_bytes

    def test_linear_operator_metadata(self):
        linear = ReferenceEngine().make_linear(self.weight, name="mlp.up_proj")
        assert linear.name == "mlp.up_proj"
        assert linear.out_features == 32
        assert linear.in_features == 128


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(create_engine("reference"), ReferenceEngine)
        assert isinstance(create_engine("dequant"), DequantEngine)
        assert isinstance(create_engine("llama.cpp"), DequantEngine)
        assert isinstance(create_engine("tmac"), TMACEngine)
        assert isinstance(create_engine("T-MAC"), TMACEngine)

    def test_fast_aggregation_flag(self):
        engine = create_engine("tmac", fast_aggregation=True)
        assert engine.config.fast_aggregation

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            create_engine("tpu")
