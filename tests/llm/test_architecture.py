"""Unit tests for the transformer architecture descriptions."""

import pytest

from repro.llm.architecture import (
    BITNET_3B,
    LLAMA_2_13B,
    LLAMA_2_7B,
    TransformerArch,
    tiny_arch,
)


class TestLlamaArchitectures:
    def test_llama_2_7b_dimensions(self):
        assert LLAMA_2_7B.hidden_size == 4096
        assert LLAMA_2_7B.intermediate_size == 11008
        assert LLAMA_2_7B.num_layers == 32
        assert LLAMA_2_7B.head_dim == 128

    def test_llama_2_13b_dimensions(self):
        assert LLAMA_2_13B.hidden_size == 5120
        assert LLAMA_2_13B.intermediate_size == 13824
        assert LLAMA_2_13B.num_layers == 40

    def test_parameter_counts_are_plausible(self):
        """~6.7B / ~13B / ~3.3B parameters respectively."""
        assert 6.0e9 < LLAMA_2_7B.num_parameters() < 7.5e9
        assert 12.0e9 < LLAMA_2_13B.num_parameters() < 14.0e9
        assert 2.5e9 < BITNET_3B.num_parameters() < 4.0e9

    def test_kernel_shapes_of_figure6_come_from_these_models(self):
        """The S0-S2 / S3-S5 benchmark shapes are 7B / 13B layer shapes."""
        shapes_7b = {(m, k) for _, m, k in LLAMA_2_7B.layer_linear_shapes()}
        assert (4096, 4096) in shapes_7b
        assert (11008, 4096) in shapes_7b
        assert (4096, 11008) in shapes_7b
        shapes_13b = {(m, k) for _, m, k in LLAMA_2_13B.layer_linear_shapes()}
        assert (5120, 5120) in shapes_13b
        assert (13824, 5120) in shapes_13b
        assert (5120, 13824) in shapes_13b

    def test_decode_shapes_cover_all_layers_plus_lm_head(self):
        shapes = LLAMA_2_7B.decode_matmul_shapes()
        assert len(shapes) == 32 * 7 + 1
        assert shapes[-1][0] == "lm_head"
        assert shapes[-1][1] == 32000

    def test_weight_bytes_scale_with_bits(self):
        b4 = LLAMA_2_7B.weight_bytes(4)
        b2 = LLAMA_2_7B.weight_bytes(2)
        b1 = LLAMA_2_7B.weight_bytes(1)
        assert b1 < b2 < b4
        # 4-bit Llama-2-7B is roughly 3.5-4 GB packed.
        assert 3.0e9 < b4 < 4.5e9

    def test_flops_per_token(self):
        # ~2 * 6.6B matmul parameters.
        assert 1.2e10 < LLAMA_2_7B.flops_per_token() < 1.5e10


class TestValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            TransformerArch("bad", 100, 256, 2, 3, 3, 1000)

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ValueError):
            TransformerArch("bad", 128, 256, 2, 4, 3, 1000)


class TestTinyArch:
    def test_structure_matches_llama(self):
        arch = tiny_arch()
        names = [name for name, _, _ in arch.layer_linear_shapes()]
        assert names == [name for name, _, _ in
                         LLAMA_2_7B.layer_linear_shapes()]

    def test_grouped_query_attention_supported(self):
        arch = tiny_arch(num_heads=8, num_kv_heads=2)
        assert arch.kv_dim == arch.head_dim * 2
        k_shape = dict((n, (m, k)) for n, m, k in arch.layer_linear_shapes())
        assert k_shape["attn.k_proj"][0] == arch.kv_dim
