"""Unit tests for the token-generation loop."""

import numpy as np
import pytest

from repro.llm.architecture import tiny_arch
from repro.llm.engine import create_engine
from repro.llm.inference import Generator
from repro.llm.model import TransformerModel, generate_random_weights


@pytest.fixture(scope="module")
def model():
    arch = tiny_arch(hidden_size=48, intermediate_size=96, num_layers=2,
                     num_heads=4, vocab_size=61, max_seq_len=64)
    return TransformerModel(arch, weights=generate_random_weights(arch, seed=2))


class TestGenerator:
    def test_generates_requested_tokens(self, model):
        result = Generator(model).generate([1, 2, 3], max_new_tokens=5)
        assert len(result.generated_tokens) == 5
        assert result.prefill_length == 3
        assert result.decode_steps == 4  # last token needs no extra forward
        assert all(0 <= t < 61 for t in result.generated_tokens)

    def test_greedy_is_deterministic(self, model):
        a = Generator(model).generate([4, 5], max_new_tokens=6)
        b = Generator(model).generate([4, 5], max_new_tokens=6)
        assert a.generated_tokens == b.generated_tokens

    def test_greedy_matches_stateless_argmax(self, model):
        """The KV-cached decode must produce the same greedy continuation as
        repeatedly running the full prompt."""
        prompt = [7, 8, 9]
        result = Generator(model).generate(prompt, max_new_tokens=4)
        tokens = list(prompt)
        for _ in range(4):
            logits = model.forward(np.asarray(tokens))
            tokens.append(int(np.argmax(logits[-1])))
        assert result.tokens == tokens

    def test_stop_token(self, model):
        result = Generator(model).generate([1], max_new_tokens=20,
                                           stop_token=result_token(model))
        if result_token(model) in result.generated_tokens:
            assert result.generated_tokens[-1] == result_token(model)

    def test_temperature_sampling_varies(self, model):
        gen_a = Generator(model, seed=1).generate([3], max_new_tokens=8,
                                                  temperature=2.0)
        gen_b = Generator(model, seed=2).generate([3], max_new_tokens=8,
                                                  temperature=2.0)
        assert gen_a.generated_tokens != gen_b.generated_tokens

    def test_keep_logits(self, model):
        result = Generator(model).generate([1, 2], max_new_tokens=3,
                                           keep_logits=True)
        assert len(result.logits_history) == 1 + result.decode_steps
        assert result.logits_history[0].shape == (61,)

    def test_empty_prompt_rejected(self, model):
        with pytest.raises(ValueError):
            Generator(model).generate([], max_new_tokens=2)

    def test_respects_max_seq_len(self, model):
        result = Generator(model).generate([1] * 60, max_new_tokens=30)
        assert len(result.tokens) <= model.arch.max_seq_len

    def test_zero_new_tokens(self, model):
        result = Generator(model).generate([1, 2, 3], max_new_tokens=0)
        assert result.generated_tokens == []


def result_token(model):
    """First greedy token of a fixed prompt, used as a stop token."""
    logits = model.forward(np.array([1]))
    return int(np.argmax(logits[-1]))


class TestQuantizedGeneration:
    def test_tmac_generation_tracks_reference(self):
        """T-MAC-backed generation mostly agrees with the fp reference for
        a 4-bit model (model-level counterpart of Table 4's parity)."""
        arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                         num_heads=4, vocab_size=61, max_seq_len=64)
        weights = generate_random_weights(arch, seed=6)
        reference = TransformerModel(arch, weights=weights)
        tmac = TransformerModel(arch, engine=create_engine("tmac", bits=4,
                                                           group_size=32),
                                weights=weights)
        ref_tokens = Generator(reference).generate([5, 6, 7],
                                                   max_new_tokens=6).tokens
        tmac_tokens = Generator(tmac).generate([5, 6, 7],
                                               max_new_tokens=6).tokens
        agreement = np.mean([a == b for a, b in zip(ref_tokens, tmac_tokens)])
        assert agreement >= 0.5
