"""Unit tests for the analytic end-to-end throughput model."""

import pytest

from repro.core.config import TMACConfig
from repro.hardware import (
    JETSON_AGX_ORIN,
    JETSON_ORIN_NX,
    M2_ULTRA,
    ONEPLUS_12,
    RASPBERRY_PI_5,
    SURFACE_LAPTOP_7,
)
from repro.llm import BITNET_3B, LLAMA_2_7B, estimate_token_throughput


class TestBasics:
    def test_throughput_is_inverse_latency(self):
        est = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 4, "tmac")
        assert est.tokens_per_sec == pytest.approx(1.0 / est.seconds_per_token)
        assert est.seconds_per_token == pytest.approx(
            est.matmul_seconds + est.overhead_seconds)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 4, "npu")

    def test_gpu_engine_requires_gpu(self):
        with pytest.raises(ValueError):
            estimate_token_throughput(RASPBERRY_PI_5, LLAMA_2_7B, 4, "gpu")

    def test_instruction_and_traffic_totals_populated(self):
        est = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 4, "tmac")
        assert est.instructions_per_token > 0
        # Roughly the packed model size per token.
        assert 2.0 < est.dram_gb_per_token < 6.0

    def test_more_threads_help(self):
        single = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 2, "tmac",
                                           threads=1)
        multi = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 2, "tmac",
                                          threads=8)
        assert multi.tokens_per_sec > single.tokens_per_sec


class TestPaperFigure8:
    """End-to-end decode throughput relationships from Figure 8."""

    @pytest.mark.parametrize("device", [M2_ULTRA, RASPBERRY_PI_5,
                                        JETSON_AGX_ORIN])
    @pytest.mark.parametrize("arch,bits", [(LLAMA_2_7B, 4), (LLAMA_2_7B, 2),
                                           (BITNET_3B, 2)])
    def test_tmac_always_at_least_as_fast(self, device, arch, bits):
        tmac = estimate_token_throughput(device, arch, bits, "tmac")
        llama = estimate_token_throughput(device, arch, bits, "llama.cpp")
        assert tmac.tokens_per_sec >= llama.tokens_per_sec * 0.99

    def test_2bit_speedup_larger_than_4bit(self):
        for device in (M2_ULTRA, RASPBERRY_PI_5):
            speedups = {}
            for bits in (4, 2):
                tmac = estimate_token_throughput(device, LLAMA_2_7B, bits,
                                                 "tmac")
                llama = estimate_token_throughput(device, LLAMA_2_7B, bits,
                                                  "llama.cpp")
                speedups[bits] = tmac.speedup_over(llama)
            assert speedups[2] > speedups[4]

    def test_m2_ultra_bitnet_rate_in_tens_of_tokens(self):
        """BitNet-3B runs at tens of tokens/s on M2-Ultra (paper: 71 tok/s)."""
        est = estimate_token_throughput(M2_ULTRA, BITNET_3B, 2, "tmac")
        assert 30 < est.tokens_per_sec < 250

    def test_raspberry_pi_bitnet_is_usable(self):
        """BitNet-3B reaches ~10 tokens/s on a Raspberry Pi 5 (paper: 11)."""
        est = estimate_token_throughput(RASPBERRY_PI_5, BITNET_3B, 2, "tmac")
        assert 5 < est.tokens_per_sec < 25

    def test_quantized_beats_fp16(self):
        fp16 = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 16, "fp16",
                                         threads=1)
        tmac = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 4, "tmac",
                                         threads=1)
        assert tmac.tokens_per_sec > fp16.tokens_per_sec


class TestPaperTable7:
    """CPU vs GPU vs NPU relationships from Table 7."""

    def test_tmac_cpu_beats_npu_published_numbers(self):
        from repro.baselines.npu import npu_tokens_per_sec

        for device in (SURFACE_LAPTOP_7, ONEPLUS_12):
            npu = npu_tokens_per_sec(device, "Llama-2-7B-4bit")
            est2 = estimate_token_throughput(device, LLAMA_2_7B, 2, "tmac")
            assert est2.tokens_per_sec > npu

    def test_adreno_gpu_backend_is_slow(self):
        """llama.cpp's OpenCL path on the OnePlus 12 is far slower than the
        T-MAC CPU path (paper: 1.6 vs 10-17 tokens/s)."""
        gpu = estimate_token_throughput(ONEPLUS_12, LLAMA_2_7B, 4, "gpu")
        cpu = estimate_token_throughput(ONEPLUS_12, LLAMA_2_7B, 4, "tmac")
        assert cpu.tokens_per_sec > 3 * gpu.tokens_per_sec

    def test_orin_nx_gpu_wins_at_4bit_but_tmac_wins_at_2bit(self):
        gpu4 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 4, "gpu")
        cpu4 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 4, "tmac")
        gpu2 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 2, "gpu")
        cpu2 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 2, "tmac")
        assert gpu4.tokens_per_sec > cpu4.tokens_per_sec
        assert cpu2.tokens_per_sec > 0.9 * gpu2.tokens_per_sec

    def test_gpu_2bit_not_faster_than_4bit(self):
        """Low-bit GPU kernels do not convert footprint into speedup."""
        gpu4 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 4, "gpu")
        gpu2 = estimate_token_throughput(JETSON_ORIN_NX, LLAMA_2_7B, 2, "gpu")
        assert gpu2.tokens_per_sec < gpu4.tokens_per_sec * 1.05


class TestFastAggregationThroughput:
    def test_fa_never_slower(self):
        base = estimate_token_throughput(
            RASPBERRY_PI_5, LLAMA_2_7B, 4, "tmac", threads=1)
        fa = estimate_token_throughput(
            RASPBERRY_PI_5, LLAMA_2_7B, 4, "tmac", threads=1,
            config=TMACConfig(bits=4, fast_aggregation=True))
        assert fa.tokens_per_sec >= base.tokens_per_sec
        assert fa.engine == "T-MAC (+FA)"
