"""Unit tests for the numpy transformer model."""

import numpy as np
import pytest

from repro.llm.architecture import tiny_arch
from repro.llm.engine import create_engine
from repro.llm.model import TransformerModel, generate_random_weights


@pytest.fixture(scope="module")
def arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97)


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=11)


class TestForward:
    def test_logits_shape(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        logits = model.forward(np.array([1, 2, 3, 4]))
        assert logits.shape == (4, 97)
        assert np.all(np.isfinite(logits))

    def test_deterministic(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        tokens = np.array([5, 6, 7])
        np.testing.assert_array_equal(model.forward(tokens),
                                      model.forward(tokens))

    def test_cached_decode_matches_full_forward(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        tokens = np.array([3, 14, 15, 92, 6])
        full_logits = model.forward(tokens)

        caches = model.new_cache()
        step_logits = []
        for i, token in enumerate(tokens):
            out = model.forward(np.array([token]), caches=caches,
                                start_position=i)
            step_logits.append(out[0])
        np.testing.assert_allclose(np.stack(step_logits), full_logits,
                                   atol=1e-3)

    def test_token_range_validated(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        with pytest.raises(ValueError):
            model.forward(np.array([1000]))
        with pytest.raises(ValueError):
            model.forward(np.array([-1]))

    def test_sequence_length_validated(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        with pytest.raises(ValueError):
            model.forward(np.zeros(arch.max_seq_len + 1, dtype=np.int64))

    def test_empty_sequence_rejected(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        with pytest.raises(ValueError):
            model.forward(np.array([], dtype=np.int64))


class TestEngines:
    def test_quantized_engines_approximate_reference(self, arch,
                                                     shared_weights):
        tokens = np.array([1, 2, 3, 4, 5, 6])
        reference = TransformerModel(arch, weights=shared_weights)
        ref_logits = reference.forward(tokens)
        for kind in ("dequant", "tmac"):
            engine = create_engine(kind, bits=4, group_size=32)
            model = TransformerModel(arch, engine=engine,
                                     weights=shared_weights)
            logits = model.forward(tokens)
            # Same top-1 prediction on most positions despite 4-bit weights.
            agreement = np.mean(np.argmax(logits, axis=-1)
                                == np.argmax(ref_logits, axis=-1))
            assert agreement >= 0.5

    def test_linears_enumeration(self, arch, shared_weights):
        model = TransformerModel(arch, weights=shared_weights)
        # 7 linears per layer * 2 layers + lm_head
        assert len(model.linears()) == 15
        assert model.engine_name() == "reference"

    def test_quantized_weight_bytes_smaller_at_low_bits(self, arch,
                                                        shared_weights):
        m4 = TransformerModel(arch, engine=create_engine("tmac", bits=4,
                                                         group_size=32),
                              weights=shared_weights)
        m2 = TransformerModel(arch, engine=create_engine("tmac", bits=2,
                                                         group_size=32),
                              weights=shared_weights)
        assert m2.quantized_weight_bytes() < m4.quantized_weight_bytes()

    def test_bad_embedding_shape_rejected(self, arch, shared_weights):
        weights = dict(shared_weights)
        weights["embedding"] = np.zeros((10, 10), dtype=np.float32)
        with pytest.raises(ValueError):
            TransformerModel(arch, weights=weights)
