"""Unit tests for the transformer layers."""

import numpy as np
import pytest

from repro.llm.architecture import tiny_arch
from repro.llm.engine import ReferenceEngine
from repro.llm.layers import (
    Attention,
    KVCache,
    MLP,
    apply_rope,
    build_rope_cache,
    rms_norm,
    silu,
    softmax,
)
from repro.llm.model import generate_random_weights


class TestPrimitives:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32) * 3
        out = rms_norm(x, np.ones(64, dtype=np.float32))
        rms = np.sqrt(np.mean(out ** 2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_softmax_sums_to_one(self, rng):
        x = rng.standard_normal((3, 10)).astype(np.float32) * 50
        probs = softmax(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)
        assert np.all(probs >= 0)

    def test_softmax_stability_with_large_values(self):
        x = np.array([[1e4, 1e4 - 1.0]], dtype=np.float32)
        probs = softmax(x)
        assert np.all(np.isfinite(probs))

    def test_silu_known_values(self):
        assert silu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert silu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-3)


class TestRope:
    def test_rotation_preserves_norm(self, rng):
        cos, sin = build_rope_cache(32, 16)
        x = rng.standard_normal((5, 2, 16)).astype(np.float32)
        rotated = apply_rope(x, cos, sin, np.arange(5))
        np.testing.assert_allclose(np.linalg.norm(rotated, axis=-1),
                                   np.linalg.norm(x, axis=-1), rtol=1e-5)

    def test_position_zero_is_identity(self, rng):
        cos, sin = build_rope_cache(8, 8)
        x = rng.standard_normal((1, 1, 8)).astype(np.float32)
        rotated = apply_rope(x, cos, sin, np.array([0]))
        np.testing.assert_allclose(rotated, x, atol=1e-6)

    def test_relative_property(self, rng):
        """Dot products depend only on relative positions."""
        cos, sin = build_rope_cache(64, 16)
        q = rng.standard_normal((1, 1, 16)).astype(np.float32)
        k = rng.standard_normal((1, 1, 16)).astype(np.float32)
        def score(pq, pk):
            rq = apply_rope(q, cos, sin, np.array([pq]))[0, 0]
            rk = apply_rope(k, cos, sin, np.array([pk]))[0, 0]
            return float(rq @ rk)
        assert score(3, 1) == pytest.approx(score(10, 8), abs=1e-4)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            build_rope_cache(8, 7)


class TestKVCache:
    def test_append_and_stack(self, rng):
        cache = KVCache()
        cache.append(rng.standard_normal((3, 2, 8)), rng.standard_normal((3, 2, 8)))
        cache.append(rng.standard_normal((1, 2, 8)), rng.standard_normal((1, 2, 8)))
        k, v = cache.stacked()
        assert k.shape == (4, 2, 8)
        assert cache.length == 4
        assert cache.memory_bytes() > 0

    def test_empty_cache_rejected(self):
        with pytest.raises(ValueError):
            KVCache().stacked()


class TestAttentionAndMLP:
    def test_incremental_attention_matches_full_pass(self, rng):
        """Decoding token-by-token with a KV cache equals a full forward."""
        arch = tiny_arch(hidden_size=32, intermediate_size=64, num_layers=1,
                         num_heads=4, vocab_size=50)
        weights = generate_random_weights(arch, seed=3)["layers"][0]
        attention = Attention(arch, ReferenceEngine(), weights["attention"])

        x = rng.standard_normal((6, 32)).astype(np.float32)
        full = attention.forward(x, np.arange(6), cache=None)

        cache = KVCache()
        incremental = []
        for position in range(6):
            out = attention.forward(x[position:position + 1],
                                    np.array([position]), cache=cache)
            incremental.append(out[0])
        np.testing.assert_allclose(np.stack(incremental), full, atol=1e-4)

    def test_causality(self, rng):
        """Changing a future token does not affect earlier outputs."""
        arch = tiny_arch(hidden_size=32, intermediate_size=64, num_layers=1,
                         num_heads=4, vocab_size=50)
        weights = generate_random_weights(arch, seed=4)["layers"][0]
        attention = Attention(arch, ReferenceEngine(), weights["attention"])
        x = rng.standard_normal((5, 32)).astype(np.float32)
        out_a = attention.forward(x, np.arange(5))
        x_modified = x.copy()
        x_modified[4] += 10.0
        out_b = attention.forward(x_modified, np.arange(5))
        np.testing.assert_allclose(out_a[:4], out_b[:4], atol=1e-4)

    def test_mlp_shapes(self, rng):
        arch = tiny_arch(hidden_size=32, intermediate_size=96, num_layers=1,
                         num_heads=4, vocab_size=50)
        weights = generate_random_weights(arch, seed=5)["layers"][0]
        mlp = MLP(arch, ReferenceEngine(), weights["mlp"])
        out = mlp.forward(rng.standard_normal((3, 32)).astype(np.float32))
        assert out.shape == (3, 32)
