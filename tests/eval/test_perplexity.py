"""Unit tests for the model-quality evaluation (Table 4)."""

import numpy as np
import pytest

from repro.eval.perplexity import (
    binary_choice_accuracy,
    evaluate_engines,
    sequence_log_likelihood,
    task_perplexity,
)
from repro.eval.tasks import make_binary_choice_task, make_lm_task
from repro.llm.architecture import tiny_arch
from repro.llm.engine import create_engine
from repro.llm.model import TransformerModel, generate_random_weights


@pytest.fixture(scope="module")
def setup():
    arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=67, max_seq_len=64)
    weights = generate_random_weights(arch, seed=31)
    teacher = TransformerModel(arch, weights=weights)
    lm_task = make_lm_task(teacher, num_sequences=4, seq_len=14, seed=1)
    choice_task = make_binary_choice_task(teacher, num_items=6, seed=1)
    return arch, weights, teacher, lm_task, choice_task


class TestMetrics:
    def test_log_likelihood_is_negative(self, setup):
        _, _, teacher, lm_task, _ = setup
        ll = sequence_log_likelihood(teacher, lm_task.sequences[0])
        assert ll < 0

    def test_short_sequence_rejected(self, setup):
        _, _, teacher, _, _ = setup
        with pytest.raises(ValueError):
            sequence_log_likelihood(teacher, np.array([1]), context_len=1)

    def test_perplexity_bounded_by_vocab(self, setup):
        arch, _, teacher, lm_task, _ = setup
        ppl = task_perplexity(teacher, lm_task)
        assert 1.0 < ppl < arch.vocab_size * 1.5

    def test_teacher_prefers_its_own_generations(self, setup):
        """Perplexity on teacher-generated text is far below uniform."""
        arch, _, teacher, lm_task, _ = setup
        assert task_perplexity(teacher, lm_task) < 0.8 * arch.vocab_size

    def test_choice_accuracy_high_for_teacher(self, setup):
        _, _, teacher, _, choice_task = setup
        assert binary_choice_accuracy(teacher, choice_task) >= 0.9


class TestTable4Reproduction:
    def test_engine_comparison_structure(self, setup):
        arch, weights, _, lm_task, choice_task = setup
        engines = [
            create_engine("reference"),
            create_engine("dequant", bits=4, group_size=32),
            create_engine("tmac", bits=4, group_size=32),
            create_engine("tmac", bits=4, group_size=32,
                          fast_aggregation=True),
        ]
        results = evaluate_engines(arch, engines, lm_task, choice_task,
                                   weights=weights)
        assert [r.engine for r in results] == [
            "reference", "llama.cpp", "T-MAC", "T-MAC (+FA)"]

        by_name = {r.engine: r for r in results}
        # T-MAC and llama.cpp must be near-identical in quality; fast
        # aggregation is allowed to deviate more (the paper's +0.4 PPL).
        tq_gap = abs(by_name["T-MAC"].perplexity
                     - by_name["llama.cpp"].perplexity)
        fa_gap = abs(by_name["T-MAC (+FA)"].perplexity
                     - by_name["T-MAC"].perplexity)
        ref_ppl = by_name["reference"].perplexity
        assert tq_gap < 0.05 * ref_ppl
        # All engines stay in the same ballpark as the reference.
        for result in results:
            assert abs(result.perplexity - ref_ppl) < 0.25 * ref_ppl
            assert 0.0 <= result.accuracy <= 1.0
        assert fa_gap >= 0.0  # recorded; magnitude checked at kernel level

    def test_extra_lm_tasks_reported(self, setup):
        arch, weights, teacher, lm_task, _ = setup
        second = make_lm_task(teacher, num_sequences=2, seq_len=10, seed=9,
                              temperature=0.5)
        second.name = "synthetic-lambada"
        results = evaluate_engines(arch, [create_engine("reference")],
                                   lm_task, weights=weights,
                                   extra_lm_tasks=[second])
        assert "synthetic-lambada" in results[0].extra_perplexities
