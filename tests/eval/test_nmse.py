"""Unit tests for the kernel-level NMSE analysis (Table 3)."""

import numpy as np
import pytest

from repro.eval.nmse import kernel_nmse_table, nmse
from repro.workloads.shapes import MatmulShape


class TestNmseMetric:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal((4, 8))
        assert nmse(x, x) == 0.0

    def test_scales_with_error_power(self, rng):
        ref = rng.standard_normal(1000)
        assert nmse(ref, ref + 0.2) == pytest.approx(
            4 * nmse(ref, ref + 0.1), rel=0.2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nmse(np.zeros(3), np.zeros(4))

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            nmse(np.zeros(4), np.ones(4))


class TestTable3Reproduction:
    @pytest.fixture(scope="class")
    def rows(self):
        shapes = [(512, 1024), MatmulShape("small", 256, 512)]
        return kernel_nmse_table(shapes, bits=4, group_size=128, seed=0)

    def test_llamacpp_and_tmac_are_equivalent(self, rows):
        """Table quantization error is negligible: T-MAC's NMSE matches the
        dequantization baseline's within a few percent."""
        for row in rows:
            assert row.tmac == pytest.approx(row.llama_cpp, rel=0.10)

    def test_fast_aggregation_inflates_nmse(self, rows):
        """Fast aggregation raises the NMSE by roughly 1.5-4x (paper: ~2.5x)."""
        for row in rows:
            assert 1.3 < row.fa_ratio < 6.0

    def test_absolute_error_magnitude(self, rows):
        """4-bit quantization error lands in the 1e-3..1e-2 NMSE decade."""
        for row in rows:
            assert 5e-4 < row.llama_cpp < 5e-2

    def test_row_labels(self, rows):
        assert rows[0].shape == "512x1024x1"
        assert rows[1].shape == "256x512x1"
