"""Unit tests for the synthetic evaluation tasks."""

import numpy as np
import pytest

from repro.eval.tasks import make_binary_choice_task, make_lm_task
from repro.llm.architecture import tiny_arch
from repro.llm.model import TransformerModel


@pytest.fixture(scope="module")
def teacher():
    arch = tiny_arch(hidden_size=48, intermediate_size=96, num_layers=1,
                     num_heads=4, vocab_size=53, max_seq_len=64)
    return TransformerModel(arch, seed=21)


class TestLmTask:
    def test_sequence_count_and_length(self, teacher):
        task = make_lm_task(teacher, num_sequences=4, seq_len=10)
        assert len(task) == 4
        for sequence in task.sequences:
            assert sequence.size == 10
            assert sequence.min() >= 0
            assert sequence.max() < teacher.arch.vocab_size

    def test_deterministic_given_seed(self, teacher):
        a = make_lm_task(teacher, num_sequences=2, seq_len=8, seed=3)
        b = make_lm_task(teacher, num_sequences=2, seq_len=8, seed=3)
        for sa, sb in zip(a.sequences, b.sequences):
            np.testing.assert_array_equal(sa, sb)

    def test_different_seeds_differ(self, teacher):
        a = make_lm_task(teacher, num_sequences=2, seq_len=8, seed=3)
        b = make_lm_task(teacher, num_sequences=2, seq_len=8, seed=4)
        assert any(not np.array_equal(sa, sb)
                   for sa, sb in zip(a.sequences, b.sequences))


class TestBinaryChoiceTask:
    def test_item_shapes(self, teacher):
        task = make_binary_choice_task(teacher, num_items=5, context_len=6,
                                       continuation_len=3)
        assert len(task) == 5
        for ctx, good, bad in zip(task.contexts, task.correct,
                                  task.distractor):
            assert ctx.size == 6
            assert good.size == 3
            assert bad.size == 3

    def test_correct_continuations_are_greedy(self, teacher):
        """The 'correct' continuation is the teacher's greedy output, so the
        teacher itself must score it at least as high as the distractor."""
        from repro.eval.perplexity import binary_choice_accuracy

        task = make_binary_choice_task(teacher, num_items=8)
        assert binary_choice_accuracy(teacher, task) >= 0.9
