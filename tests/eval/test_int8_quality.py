"""Quality gate for the int8 LUT decode path (paper fig10 direction).

``TMACConfig(lut_dtype="int8")`` keeps the gather/sign/aggregation
pipeline in the integer domain.  For group-granularity quantized tables
this is *bit-identical* to the float path — the gate below asserts that
at both the kernel level (NMSE against the unquantized reference) and the
model level (perplexity under the numpy transformer), so a future change
that makes int8 lossy fails loudly instead of silently degrading quality.
"""

import numpy as np
import pytest

from repro.backends import TMACBackend
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.eval.nmse import nmse
from repro.eval.perplexity import evaluate_engines
from repro.eval.tasks import make_lm_task
from repro.llm.architecture import tiny_arch
from repro.llm.engine import create_engine
from repro.llm.model import TransformerModel, generate_random_weights
from repro.workloads.generator import make_gemv_case

#: Kernel NMSE ceiling for 4-bit weights (paper Table 3 decade).
NMSE_GATE = 5e-2


def _config(lut_dtype):
    return TMACConfig(bits=4, lut_dtype=lut_dtype, specialize=True,
                      executor="vectorized")


class TestKernelGate:
    @pytest.fixture(scope="class")
    def outputs(self):
        case = make_gemv_case(m=256, k=512, bits=4, group_size=64, seed=5)
        out = {
            dtype: TMACKernel(case.qweight, _config(dtype)).matmul(
                case.activation)
            for dtype in ("float", "int8")
        }
        return case, out

    def test_int8_bit_identical_to_float(self, outputs):
        _, out = outputs
        np.testing.assert_array_equal(out["int8"], out["float"])

    def test_int8_nmse_within_gate(self, outputs):
        case, out = outputs
        int8_nmse = nmse(case.reference, out["int8"])
        float_nmse = nmse(case.reference, out["float"])
        assert int8_nmse <= float_nmse * 1.01 + 1e-12
        assert int8_nmse < NMSE_GATE


class TestModelGate:
    def test_int8_perplexity_matches_float(self):
        arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                         num_heads=4, vocab_size=67, max_seq_len=64)
        weights = generate_random_weights(arch, seed=31)
        teacher = TransformerModel(arch, weights=weights)
        lm_task = make_lm_task(teacher, num_sequences=3, seq_len=12, seed=1)
        engines = [
            create_engine("reference"),
            TMACBackend(bits=4, group_size=32, config=_config("float")),
            TMACBackend(bits=4, group_size=32, config=_config("int8")),
        ]
        reference, float_path, int8_path = evaluate_engines(
            arch, engines, lm_task, weights=weights)
        assert int8_path.perplexity == pytest.approx(
            float_path.perplexity, rel=1e-9)
        # And the quantized engines stay in the same quality regime as the
        # unquantized reference (Table 4: T-MAC matches llama.cpp).
        assert int8_path.perplexity < reference.perplexity * 2.0
