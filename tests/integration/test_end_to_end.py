"""Integration tests: the full pipeline from quantization to generation."""

import numpy as np
import pytest

from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.eval.nmse import nmse
from repro.llm.architecture import tiny_arch
from repro.llm.engine import create_engine
from repro.llm.inference import Generator
from repro.llm.model import TransformerModel, generate_random_weights
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestKernelPipeline:
    """Quantize -> preprocess -> precompute -> lookup -> aggregate, end to end."""

    @pytest.mark.parametrize("bits,group_size", [(1, 32), (2, 64), (3, 32),
                                                 (4, 128)])
    def test_full_tmac_configuration(self, bits, group_size):
        w = gaussian_weights(64, 256, seed=bits)
        a = gaussian_activation(4, 256, seed=bits + 50)
        # 1/2-bit deployments in the paper come from specialised quantizers
        # (OneBit, BitDistiller); the MSE scale search is their stand-in.
        method = "mse" if bits <= 2 else "absmax"
        qw = quantize_weights(w, bits=bits, group_size=group_size,
                              method=method)
        kernel = TMACKernel(qw, TMACConfig(bits=bits))
        out = kernel.matmul(a)
        fp = a @ w.T
        # The end-to-end error against the *unquantized* weights is dominated
        # by the weight quantization error, which shrinks as bits grow.
        error = nmse(fp, out)
        assert error < {1: 0.55, 2: 0.15, 3: 0.05, 4: 0.02}[bits]

    def test_gemm_and_gemv_agree(self):
        w = gaussian_weights(32, 128, seed=0)
        qw = quantize_weights(w, bits=2, group_size=64)
        kernel = TMACKernel(qw, TMACConfig(bits=2))
        a = gaussian_activation(4, 128, seed=1)
        batched = kernel.matmul(a)
        rows = np.stack([kernel.matmul(a[i]) for i in range(4)])
        np.testing.assert_allclose(batched, rows, atol=1e-4)

    def test_weights_reusable_across_activations(self):
        """Offline preprocessing is done once; many online calls reuse it."""
        w = gaussian_weights(32, 128, seed=3)
        qw = quantize_weights(w, bits=4, group_size=64)
        kernel = TMACKernel(qw, TMACConfig(bits=4))
        first = kernel.matmul(gaussian_activation(1, 128, seed=4))
        second = kernel.matmul(gaussian_activation(1, 128, seed=5))
        assert not np.allclose(first, second)
        # Same activation again gives identical results (stateless online).
        np.testing.assert_allclose(
            kernel.matmul(gaussian_activation(1, 128, seed=4)), first)


class TestModelPipeline:
    def test_bitnet_style_model_generation(self):
        """A ternary (BitNet-like) model generates through the T-MAC engine."""
        arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                         num_heads=4, vocab_size=71, max_seq_len=48)
        weights = generate_random_weights(arch, seed=8)
        model = TransformerModel(
            arch, engine=create_engine("tmac", bitnet=True, group_size=32),
            weights=weights)
        result = Generator(model).generate([1, 2, 3], max_new_tokens=5)
        assert len(result.generated_tokens) == 5

    def test_three_engines_share_quantized_weights_semantics(self):
        """The controlled comparison of Table 4: same weights, three engines,
        quantized engines agree with each other far more than with fp."""
        arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=1,
                         num_heads=4, vocab_size=53, max_seq_len=32)
        weights = generate_random_weights(arch, seed=9)
        tokens = np.array([3, 1, 4, 1, 5])

        logits = {}
        for kind in ("reference", "dequant", "tmac"):
            engine = create_engine(kind, bits=4, group_size=32)
            model = TransformerModel(arch, engine=engine, weights=weights)
            logits[kind] = model.forward(tokens)

        gap_quantized = nmse(logits["dequant"], logits["tmac"])
        gap_to_reference = nmse(logits["reference"], logits["tmac"])
        assert gap_quantized < gap_to_reference

    def test_memory_footprint_ordering(self):
        """2-bit < 4-bit < fp16 weight bytes for the same model."""
        arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                         num_heads=4, vocab_size=53)
        weights = generate_random_weights(arch, seed=10)
        sizes = {}
        for label, engine in (
            ("fp", create_engine("reference")),
            ("4bit", create_engine("tmac", bits=4, group_size=32)),
            ("2bit", create_engine("tmac", bits=2, group_size=32)),
        ):
            model = TransformerModel(arch, engine=engine, weights=weights)
            sizes[label] = model.quantized_weight_bytes()
        assert sizes["2bit"] < sizes["4bit"] < sizes["fp"]


class TestBitnetInterpretation:
    def test_bitnet_codes_run_through_both_kernels(self):
        from repro.baselines.dequant_gemm import DequantGEMM

        w = gaussian_weights(32, 128, seed=11)
        qw = quantize_bitnet(w, group_size=32)
        a = gaussian_activation(1, 128, seed=12)
        tmac_out = TMACKernel(qw, TMACConfig(bits=2)).matmul(a)
        dequant_out = DequantGEMM(qw).matmul(a)
        assert nmse(dequant_out, tmac_out) < 1e-3
