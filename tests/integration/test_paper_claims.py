"""Integration tests tying together the headline claims of the paper.

Each test corresponds to a sentence of the abstract / introduction and
exercises several subsystems at once (kernels + cost model + devices +
throughput + energy).
"""

import pytest

from repro.core.config import TMACConfig
from repro.energy import PowerModel
from repro.eval.nmse import kernel_nmse_table
from repro.hardware import (
    CostModel,
    EVALUATION_DEVICES,
    JETSON_AGX_ORIN,
    M2_ULTRA,
    RASPBERRY_PI_5,
)
from repro.llm import BITNET_3B, LLAMA_2_7B, estimate_token_throughput
from repro.workloads.shapes import KERNEL_SHAPES


class TestAbstractClaims:
    def test_kernel_speedup_up_to_several_x(self):
        """'T-MAC kernel speedup can reach up to 6.6x and an average of 3.6x'
        — the modeled speedups fall in the same band (>=2x average, >=5x max
        across shapes, devices and bit widths)."""
        speedups = []
        for device in EVALUATION_DEVICES:
            model = CostModel(device)
            for shape in KERNEL_SHAPES[:3]:
                for bits in (1, 2, 3, 4):
                    tmac = model.tmac_gemv_latency(
                        shape.m, shape.k, TMACConfig(bits=bits), threads=1)
                    dequant = model.dequant_gemv_latency(
                        shape.m, shape.k, bits, threads=1)
                    speedups.append(dequant.seconds / tmac.seconds)
        average = sum(speedups) / len(speedups)
        assert average > 2.0
        assert max(speedups) > 5.0

    def test_e2e_throughput_improvement_2_to_4x(self):
        """'2-4x end-to-end inference throughput improvement' for low-bit
        models (taking the single-thread Raspberry Pi / Orin cases)."""
        ratios = []
        for device in (RASPBERRY_PI_5, JETSON_AGX_ORIN):
            for arch, bits in ((LLAMA_2_7B, 2), (BITNET_3B, 2)):
                tmac = estimate_token_throughput(device, arch, bits, "tmac",
                                                 threads=1)
                llama = estimate_token_throughput(device, arch, bits,
                                                  "llama.cpp", threads=1)
                ratios.append(tmac.speedup_over(llama))
        assert max(ratios) > 2.5
        assert min(ratios) > 1.5

    def test_energy_reduction_up_to_70_percent(self):
        """'reducing 60-70% energy compared to llama.cpp' for the best case."""
        reductions = []
        power = PowerModel(M2_ULTRA)
        for arch, bits in ((LLAMA_2_7B, 4), (LLAMA_2_7B, 2), (BITNET_3B, 2)):
            joules = {}
            for engine in ("llama.cpp", "tmac"):
                est = estimate_token_throughput(M2_ULTRA, arch, bits, engine)
                joules[engine] = power.cpu_token_energy(
                    est.seconds_per_token, est.instructions_per_token,
                    est.dram_gb_per_token, est.threads).joules_per_token
            reductions.append(1.0 - joules["tmac"] / joules["llama.cpp"])
        assert max(reductions) > 0.4
        assert all(r > 0.1 for r in reductions)

    def test_bitnet_on_raspberry_pi_is_interactive(self):
        """'11 tokens/s on Raspberry Pi 5 for BitNet-b1.58-3B'."""
        est = estimate_token_throughput(RASPBERRY_PI_5, BITNET_3B, 2, "tmac")
        assert est.tokens_per_sec > 5

    def test_m2_ultra_bitnet_single_and_multi_core(self):
        """'30 tokens/s with a single core and 71 tokens/s with eight cores
        on M2-Ultra' — the model lands in the same band."""
        single = estimate_token_throughput(M2_ULTRA, BITNET_3B, 2, "tmac",
                                           threads=1)
        multi = estimate_token_throughput(M2_ULTRA, BITNET_3B, 2, "tmac",
                                          threads=8)
        assert 10 < single.tokens_per_sec < 80
        assert 40 < multi.tokens_per_sec < 250
        assert multi.tokens_per_sec > single.tokens_per_sec

    def test_unified_scalability_claim(self):
        """One kernel (and one config dataclass) covers every bit width the
        paper evaluates, with latency scaling down linearly."""
        model = CostModel(M2_ULTRA)
        latencies = [
            model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=b),
                                    threads=1).seconds
            for b in (1, 2, 3, 4)
        ]
        for i in range(3):
            ratio = latencies[i + 1] / latencies[0]
            assert ratio == pytest.approx(i + 2, rel=0.35)

    def test_error_claims(self):
        """Table quantization is negligible; fast aggregation is not (Sec 5.6)."""
        rows = kernel_nmse_table([(1024, 2048)], bits=4, seed=3)
        row = rows[0]
        assert row.tmac == pytest.approx(row.llama_cpp, rel=0.1)
        assert row.tmac_fast_aggregation > 1.3 * row.tmac
