"""Shared fixtures for the test suite."""

from __future__ import annotations

# The sanitizer must patch threading.Lock before any repro module creates
# one (module-level registry locks are born at import time), so this
# block runs before every other import that pulls in repro code.
from repro.analysis import sanitizer

sanitizer.install()

import numpy as np
import pytest

from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


@pytest.fixture(scope="session", autouse=True)
def sanitizer_gate():
    """Fail the session on any lock-order inversion or canary trip.

    Inert unless ``REPRO_SANITIZE=1``.  Runs after the last test so the
    whole suite's lock traffic is in the graph; also writes the graph
    snapshot when ``REPRO_SANITIZE_GRAPH_OUT`` is set (in addition to the
    atexit hook, so the snapshot exists even if pytest hard-exits).
    """
    yield
    if not sanitizer.enabled():
        return
    import os

    out = os.environ.get("REPRO_SANITIZE_GRAPH_OUT", "").strip()
    if out:
        sanitizer.write_graph_snapshot(out)
    report = sanitizer.stats()
    assert report["lock_order_inversions"] == [], (
        "lock-order inversions recorded during the session: "
        f"{report['lock_order_inversions']}"
    )
    assert report["canary_trips"] == 0, (
        f"plan-mutation canary tripped {report['canary_trips']} time(s) "
        "during the session"
    )


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_weights():
    """A small fp weight matrix [48, 256] for kernel tests."""
    return gaussian_weights(48, 256, seed=7)


@pytest.fixture
def small_activation():
    """A small activation matrix [3, 256] matching ``small_weights``."""
    return gaussian_activation(3, 256, seed=8)


@pytest.fixture
def small_qweight(small_weights):
    """4-bit quantized version of ``small_weights`` (group size 64)."""
    return quantize_weights(small_weights, bits=4, group_size=64)
