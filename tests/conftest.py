"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


@pytest.fixture
def rng():
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_weights():
    """A small fp weight matrix [48, 256] for kernel tests."""
    return gaussian_weights(48, 256, seed=7)


@pytest.fixture
def small_activation():
    """A small activation matrix [3, 256] matching ``small_weights``."""
    return gaussian_activation(3, 256, seed=8)


@pytest.fixture
def small_qweight(small_weights):
    """4-bit quantized version of ``small_weights`` (group size 64)."""
    return quantize_weights(small_weights, bits=4, group_size=64)
