"""Plan-specialized kernels: bit-exactness, cache behaviour, lifetimes.

The specialization cache lives on the plan (same lock as the lazy gather
tables), so the properties that matter are the plan cache's, one level
down: exactly one compile per ``(plan, SpecializationKey)`` no matter how
many executor threads race into a cold dispatch, eviction of a plan
releasing its compiled kernels (no leaked closures pinning the weight
arrays), and — above all — bit-identical results to the generic executor
for every table mode, gather driver and worker count.
"""

import gc
import threading
import time
import weakref
from concurrent.futures import wait

import numpy as np
import pytest

import repro.core.specialize as spec_mod
from repro.core.config import TMACConfig
from repro.core.executor import get_executor, get_worker_pool
from repro.core.kernel import TMACKernel
from repro.core.plan import PlanCache, build_plan
from repro.core.specialize import (
    SpecializedKernel,
    compile_specialized,
    default_gather_variant,
    maybe_specialized,
    reset_specialize_stats,
    resolve_gather_variant,
    set_default_gather_variant,
    specialization_key,
    specialize_stats,
)
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights

HAMMER_THREADS = 8


def make_kernel(bits=4, m=64, k=128, group_size=32, seed=0, **config_kwargs):
    qw = quantize_weights(gaussian_weights(m, k, seed=seed), bits=bits,
                          group_size=group_size)
    config_kwargs.setdefault("executor", "vectorized")
    config = TMACConfig(bits=bits, **config_kwargs)
    return TMACKernel(qw, config)


def activations(n=3, k=128, seed=7):
    return gaussian_activation(n, k, seed=seed)


# --------------------------------------------------------------------- #
# Bit-exact parity with the generic executor
# --------------------------------------------------------------------- #


TABLE_MODES = {
    "unquantized": dict(table_quantization=False),
    "quantized_group": dict(table_quantization=True),
    "quantized_fine": dict(table_quantization=True,
                           lut_scale_granularity="fine"),
    "fast_aggregation": dict(table_quantization=True, fast_aggregation=True),
    "unmirrored": dict(mirror_consolidation=False),
    "int8": dict(table_quantization=True, lut_dtype="int8"),
}


@pytest.mark.parametrize("mode", sorted(TABLE_MODES))
@pytest.mark.parametrize("gather", ["fancy", "take"])
def test_specialized_matches_generic(mode, gather):
    kwargs = dict(TABLE_MODES[mode], gather_variant=gather)
    spec = make_kernel(specialize=True, **kwargs)
    generic = make_kernel(specialize=False, **kwargs)
    a = activations()
    expected = generic.matmul(a)
    got = spec.matmul(a)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
@pytest.mark.parametrize("group_size", [32, 64])
def test_specialized_parity_across_bit_widths(bits, group_size):
    spec = make_kernel(bits=bits, group_size=group_size, specialize=True)
    generic = make_kernel(bits=bits, group_size=group_size, specialize=False)
    a = activations()
    np.testing.assert_array_equal(spec.matmul(a), generic.matmul(a))


def test_int8_domain_bit_identical_to_float_domain():
    """fig10: the int8 decode path changes memory traffic, not values."""
    int8 = make_kernel(specialize=True, lut_dtype="int8")
    floats = make_kernel(specialize=True, lut_dtype="float")
    a = activations()
    np.testing.assert_array_equal(int8.matmul(a), floats.matmul(a))


@pytest.mark.parametrize("executor,workers", [("parallel", 3),
                                              ("process", 2)])
def test_specialized_parity_under_pools(executor, workers):
    """Worker pools consume the same compiled kernels, bit-identically."""
    serial = make_kernel(m=128, k=256, specialize=True)
    kwargs = {"num_threads" if executor == "parallel" else "num_workers":
              workers}
    pooled = make_kernel(m=128, k=256, specialize=True, executor=executor,
                         parallel_threshold=1, **kwargs)
    a = activations(n=4, k=256)
    np.testing.assert_array_equal(pooled.matmul(a), serial.matmul(a))


def test_chunk_budget_does_not_change_results():
    baseline = make_kernel(specialize=True)
    chunked = make_kernel(specialize=True, chunk_elements=1 << 10)
    a = activations()
    np.testing.assert_array_equal(chunked.matmul(a), baseline.matmul(a))


# --------------------------------------------------------------------- #
# Key normalization
# --------------------------------------------------------------------- #


def test_irrelevant_flags_do_not_fork_kernels():
    kernel = make_kernel(table_quantization=False, specialize=True)
    table = kernel.precompute(activations())
    base = specialization_key(table, kernel.config)
    # lut_dtype only matters for group-granularity quantized tables; on an
    # unquantized table it must not fork a second compiled kernel.
    forked = specialization_key(
        table, kernel.config.with_options(lut_dtype="int8"))
    assert base == forked
    assert not base.fast_aggregation
    assert not base.int_domain  # int8 needs quantized group tables


def test_int8_key_requires_group_granularity():
    fine = make_kernel(lut_scale_granularity="fine", lut_dtype="int8",
                       specialize=True)
    table = fine.precompute(activations())
    assert not specialization_key(table, fine.config).int_domain
    group = make_kernel(lut_dtype="int8", specialize=True)
    table = group.precompute(activations())
    assert specialization_key(table, group.config).int_domain


def test_gather_variant_resolution():
    config = TMACConfig(bits=4, gather_variant="auto")
    host_default = default_gather_variant()
    assert resolve_gather_variant(config) == host_default
    try:
        set_default_gather_variant("take")
        assert resolve_gather_variant(config) == "take"
        explicit = TMACConfig(bits=4, gather_variant="fancy")
        assert resolve_gather_variant(explicit) == "fancy"
    finally:
        set_default_gather_variant(host_default)
    with pytest.raises(ValueError):
        set_default_gather_variant("scatter")


# --------------------------------------------------------------------- #
# Cache: single-flight builds, reuse, stats
# --------------------------------------------------------------------- #


class CountingCompiler:
    """Wraps compile_specialized, counting builds and holding the first
    one in flight long enough for every racing thread to arrive."""

    def __init__(self, delay=0.02):
        self.calls = 0
        self.lock = threading.Lock()
        self.delay = delay

    def __call__(self, plan, key, tables=None):
        with self.lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return compile_specialized(plan, key, tables)


def test_concurrent_dispatch_compiles_exactly_once(monkeypatch):
    compiler = CountingCompiler()
    monkeypatch.setattr(spec_mod, "compile_specialized", compiler)
    kernel = make_kernel(specialize=True)
    table = kernel.precompute(activations())
    key = specialization_key(table, kernel.config)

    pool = get_worker_pool(HAMMER_THREADS)
    start = threading.Barrier(HAMMER_THREADS)

    def hammer():
        start.wait()
        return kernel.plan.specialized(key)

    futures = [pool.submit(hammer) for _ in range(HAMMER_THREADS)]
    wait(futures)
    kernels = [future.result() for future in futures]

    assert compiler.calls == 1
    assert all(built is kernels[0] for built in kernels)
    assert isinstance(kernels[0], SpecializedKernel)


def test_concurrent_matmul_through_thread_pool_compiles_once(monkeypatch):
    """End to end: racing matmuls on a cold plan share one compile."""
    compiler = CountingCompiler()
    monkeypatch.setattr(spec_mod, "compile_specialized", compiler)
    kernel = make_kernel(specialize=True)
    a = activations()
    expected = make_kernel(specialize=False).matmul(a)

    pool = get_worker_pool(HAMMER_THREADS)
    start = threading.Barrier(HAMMER_THREADS)

    def hammer():
        start.wait()
        return kernel.matmul(a)

    futures = [pool.submit(hammer) for _ in range(HAMMER_THREADS)]
    wait(futures)
    for future in futures:
        np.testing.assert_array_equal(future.result(), expected)
    assert compiler.calls == 1


def test_distinct_keys_compile_distinct_kernels(monkeypatch):
    compiler = CountingCompiler(delay=0)
    monkeypatch.setattr(spec_mod, "compile_specialized", compiler)
    kernel = make_kernel(specialize=True)
    table = kernel.precompute(activations())
    fancy = specialization_key(table, kernel.config)
    take = specialization_key(
        table, kernel.config.with_options(gather_variant="take"))
    assert fancy != take
    first = kernel.plan.specialized(fancy)
    second = kernel.plan.specialized(take)
    third = kernel.plan.specialized(fancy)  # cache hit, no recompile
    assert compiler.calls == 2
    assert first is third and first is not second


def test_specialize_stats_counters():
    reset_specialize_stats()
    kernel = make_kernel(specialize=True, lut_dtype="int8")
    a = activations()
    kernel.matmul(a)
    kernel.matmul(a)
    stats = specialize_stats()
    assert stats["specialize_builds"] == 1  # second call reuses the cache
    assert stats["specialize_calls"] >= 2
    assert stats["specialize_int8_calls"] >= 2
    assert stats["specialize_generic_calls"] == 0

    reset_specialize_stats()
    generic = make_kernel(specialize=False)
    generic.matmul(a)
    stats = specialize_stats()
    assert stats["specialize_builds"] == 0
    assert stats["specialize_calls"] == 0
    assert stats["specialize_generic_calls"] >= 1


def test_maybe_specialized_gates():
    kernel = make_kernel(specialize=True)
    table = kernel.precompute(activations())
    assert maybe_specialized(kernel.plan, table, kernel.config) is not None
    disabled = kernel.config.with_options(specialize=False)
    assert maybe_specialized(kernel.plan, table, disabled) is None
    # Plan-shaped objects without a cache (e.g. raw mocks) fall back.
    assert maybe_specialized(object(), table, kernel.config) is None


# --------------------------------------------------------------------- #
# Lifetime: eviction releases compiled kernels
# --------------------------------------------------------------------- #


def _plan_with_specialized(cache, seed):
    qw = quantize_weights(gaussian_weights(64, 128, seed=seed), bits=4,
                          group_size=32)
    config = TMACConfig(bits=4, specialize=True, executor="vectorized")
    plan = cache.get(qw, config)
    kernel = TMACKernel.from_plan(plan, config)
    kernel.matmul(activations())  # populates the plan's _spec_cache
    key = specialization_key(kernel.precompute(activations()), config)
    return plan, plan.specialized(key)


def test_plan_eviction_releases_specialized_kernels():
    """No leaked closures: evicting a plan frees its compiled kernels.

    SpecializedKernel holds plan artifacts only by reference (never the
    plan itself), so the LRU dropping the plan must be enough for the
    whole object graph — closures included — to be collected.
    """
    cache = PlanCache(max_entries=1)
    plan, specialized = _plan_with_specialized(cache, seed=11)
    plan_ref = weakref.ref(plan)
    spec_ref = weakref.ref(specialized)
    assert plan.specialized(specialized.key) is specialized  # cached

    _plan_with_specialized(cache, seed=12)  # LRU-evicts the first plan
    del plan, specialized
    gc.collect()

    assert plan_ref() is None, "evicted plan still referenced"
    assert spec_ref() is None, "specialized kernel leaked past eviction"


def test_cache_clear_releases_specialized_kernels():
    cache = PlanCache()
    plan, specialized = _plan_with_specialized(cache, seed=13)
    plan_ref = weakref.ref(plan)
    spec_ref = weakref.ref(specialized)
    cache.clear()
    del plan, specialized
    gc.collect()
    assert plan_ref() is None
    assert spec_ref() is None


def test_specialized_kernel_does_not_reference_plan():
    """The compiled kernel must never close over the plan object."""
    plan = build_plan(
        quantize_weights(gaussian_weights(64, 128, seed=3), bits=4,
                         group_size=32),
        TMACConfig(bits=4, specialize=True, executor="vectorized"),
    )
    config = TMACConfig(bits=4, specialize=True, executor="vectorized")
    table = plan.precompute(activations(), config)
    kernel = plan.specialized(specialization_key(table, config))
    seen = {id(kernel)}
    frontier = [kernel.__dict__]
    while frontier:
        obj = frontier.pop()
        assert obj is not plan
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, dict):
            frontier.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            frontier.extend(obj)
        elif callable(obj) and getattr(obj, "__closure__", None):
            frontier.extend(cell.cell_contents for cell in obj.__closure__)


# --------------------------------------------------------------------- #
# Executor integration
# --------------------------------------------------------------------- #


def test_vectorized_executor_uses_specialized_kernel(monkeypatch):
    """The generic executor routes spans through the compiled kernel."""
    kernel = make_kernel(specialize=True)
    a = activations()
    table = kernel.precompute(a)
    key = specialization_key(table, kernel.config)
    compiled = kernel.plan.specialized(key)
    calls = []
    original = compiled.recombine_span

    def spy(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(compiled, "recombine_span", spy)
    executor = get_executor("vectorized")
    executor.matmul_with_table(kernel.plan, table, kernel.config, a)
    assert calls, "vectorized executor bypassed the specialized kernel"
