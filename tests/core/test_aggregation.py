"""Unit tests for exact and fast (rhadd) aggregation."""

import numpy as np
import pytest

from repro.core.aggregation import (
    exact_aggregate,
    fast_aggregate,
    fast_aggregation_bias,
    rhadd,
)


class TestRhadd:
    def test_matches_hardware_semantics(self):
        a = np.array([1, 2, -3, 127], dtype=np.int64)
        b = np.array([2, 2, -4, 127], dtype=np.int64)
        np.testing.assert_array_equal(rhadd(a, b), [2, 2, -3, 127])

    def test_rounds_toward_positive_infinity(self):
        assert rhadd(np.array([1]), np.array([2]))[0] == 2
        assert rhadd(np.array([-1]), np.array([-2]))[0] == -1

    def test_no_overflow_at_int8_extremes(self):
        a = np.array([127], dtype=np.int8)
        b = np.array([127], dtype=np.int8)
        assert rhadd(a, b)[0] == 127


class TestBias:
    def test_zero_for_single_element(self):
        assert fast_aggregation_bias(1) == 0.0

    def test_quarter_per_level(self):
        assert fast_aggregation_bias(2) == pytest.approx(0.25)
        assert fast_aggregation_bias(4) == pytest.approx(0.5)
        assert fast_aggregation_bias(16) == pytest.approx(1.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            fast_aggregation_bias(0)


class TestExactAggregate:
    def test_simple_sum(self, rng):
        values = rng.integers(-100, 100, size=(4, 5, 8))
        np.testing.assert_array_equal(exact_aggregate(values, axis=-1),
                                      values.sum(axis=-1))

    def test_axis_selection(self, rng):
        values = rng.standard_normal((3, 4))
        np.testing.assert_allclose(exact_aggregate(values, axis=0),
                                   values.sum(axis=0))


class TestFastAggregate:
    def test_unbiased_on_average(self, rng):
        """The bias-corrected estimate should be centred on the true sum."""
        values = rng.integers(-100, 100, size=(2000, 16))
        estimate = fast_aggregate(values, axis=-1)
        true = values.sum(axis=-1)
        mean_error = float(np.mean(estimate - true))
        assert abs(mean_error) < 2.0

    def test_error_is_bounded(self, rng):
        values = rng.integers(-100, 100, size=(500, 16))
        estimate = fast_aggregate(values, axis=-1)
        true = values.sum(axis=-1)
        # Relative RMS error of the rhadd tree stays in the few-percent range
        # relative to the value magnitude sum.
        rms = np.sqrt(np.mean((estimate - true) ** 2))
        assert rms < 0.1 * np.sqrt(np.mean(true.astype(np.float64) ** 2)) + 20

    def test_lossier_than_exact(self, rng):
        values = rng.integers(-100, 100, size=(200, 16))
        exact = exact_aggregate(values, axis=-1)
        fast = fast_aggregate(values, axis=-1)
        assert np.mean((fast - exact) ** 2) > 0

    def test_single_element(self):
        values = np.array([[7], [9]])
        np.testing.assert_allclose(fast_aggregate(values, axis=-1), [7, 9])

    def test_non_power_of_two_length(self, rng):
        values = rng.integers(-50, 50, size=(300, 12))
        estimate = fast_aggregate(values, axis=-1)
        true = values.sum(axis=-1)
        assert abs(float(np.mean(estimate - true))) < 4.0

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            fast_aggregate(np.zeros((2, 0)), axis=-1)

    def test_rounds_float_input(self):
        values = np.array([[1.4, 2.6, 3.0, 4.0]])
        estimate = fast_aggregate(values, axis=-1)
        assert estimate.shape == (1,)
