"""Unit tests for the LUT-centric data layout math."""

import pytest

from repro.core.tiling import (
    TileConfig,
    axis_order,
    default_tile_config,
    dequant_register_footprint,
    lut_working_set_bytes,
    tmac_register_footprint,
)


class TestTileConfig:
    def test_tiles_for_uses_ceiling_division(self):
        tile = TileConfig(n_tn=1, m_tm=32, k_tk=32)
        assert tile.tiles_for(1, 100, 64) == (1, 4, 2)

    def test_dram_bytes_per_tile(self):
        tile = TileConfig(n_tn=1, m_tm=32, k_tk=32)
        # activations: 1*32*2 bytes, weights: 32*32*4/8 bytes
        assert tile.dram_bytes_per_tile(bits=4) == 64 + 512

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TileConfig(m_tm=0)


class TestRegisterFootprint:
    def test_figure3_tmac_value(self):
        """The Figure 3 example uses 144 8-bit registers for T-MAC."""
        footprint = tmac_register_footprint(m_tm=32, k_tk=4, g=4,
                                            table_quantization=False,
                                            mirror_consolidation=False)
        assert footprint.total_bytes == 144

    def test_figure3_llamacpp_value(self):
        """The Figure 3 example uses 104 8-bit registers for llama.cpp."""
        footprint = dequant_register_footprint(k_tk=32, bits=4)
        assert footprint.total_bytes == 104

    def test_tmac_uses_more_registers_than_dequant(self):
        """LUT-based mpGEMM needs more on-chip memory (paper Section 3.1)."""
        tmac = tmac_register_footprint(m_tm=32, k_tk=4, g=4)
        dequant = dequant_register_footprint(k_tk=32, bits=4)
        assert tmac.total_bytes > dequant.total_bytes

    def test_table_quantization_shrinks_footprint(self):
        fp16 = tmac_register_footprint(table_quantization=False)
        int8 = tmac_register_footprint(table_quantization=True)
        assert int8.total_bytes < fp16.total_bytes
        assert int8.lut == fp16.lut // 2

    def test_mirror_consolidation_halves_lut(self):
        full = tmac_register_footprint(mirror_consolidation=False)
        half = tmac_register_footprint(mirror_consolidation=True)
        assert half.lut == full.lut // 2

    def test_k_tk_must_be_multiple_of_g(self):
        with pytest.raises(ValueError):
            tmac_register_footprint(m_tm=16, k_tk=6, g=4)


class TestAxisOrderAndWorkingSet:
    def test_lut_centric_order_is_temporal_first(self):
        assert axis_order(lut_centric=True)[0] == "K"
        assert axis_order(lut_centric=False)[0] == "N"

    def test_axis_reordering_shrinks_working_set(self):
        """K-first traversal only needs tables for a K-tile, not all of K."""
        full = lut_working_set_bytes(1, 4096, 4, 1, False)
        tiled = lut_working_set_bytes(1, 4096, 4, 1, False, k_tile=32)
        assert tiled < full
        assert tiled == full // (4096 // 32)

    def test_mirror_consolidation_halves_working_set(self):
        full = lut_working_set_bytes(1, 1024, 4, 2, False)
        half = lut_working_set_bytes(1, 1024, 4, 2, True)
        assert half == full // 2


class TestDefaultTileConfig:
    def test_reduction_tile_is_multiple_of_g(self):
        tile = default_tile_config(bits=4, g=4, simd_width_bits=128,
                                   vector_registers=32)
        assert tile.k_tk % 4 == 0
        assert tile.num_onchip_luts >= 1

    def test_wider_simd_gets_wider_output_tile(self):
        neon = default_tile_config(bits=4, simd_width_bits=128,
                                   vector_registers=32)
        avx2 = default_tile_config(bits=4, simd_width_bits=256,
                                   vector_registers=16)
        assert avx2.m_tm > neon.m_tm
