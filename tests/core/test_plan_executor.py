"""Plan/executor split: parity, plan cache and gemm memoization."""

import numpy as np
import pytest

from repro.core.config import TMACConfig
from repro.core.executor import get_executor, list_executors
from repro.core.gemm import tmac_gemm
from repro.core.kernel import TMACKernel
from repro.core.plan import (
    PLAN_CACHE,
    PlanCache,
    build_plan,
    clear_plan_cache,
    get_plan,
    weight_fingerprint,
)
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestExecutorParity:
    """The vectorized executor is bit-identical to the loop reference."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("group_size", [32, 64])
    def test_parity_across_bits_and_groups(self, bits, group_size):
        w = gaussian_weights(24, 128, seed=bits)
        a = gaussian_activation(3, 128, seed=bits + 40)
        qw = quantize_weights(w, bits=bits, group_size=group_size)
        config = TMACConfig(bits=bits)
        vec = TMACKernel(qw, config).matmul(a)
        loop = TMACKernel(qw, config.with_options(executor="loop")).matmul(a)
        np.testing.assert_array_equal(vec, loop)

    @pytest.mark.parametrize("fast_aggregation", [False, True])
    def test_parity_with_fast_aggregation(self, fast_aggregation):
        w = gaussian_weights(32, 128, seed=5)
        a = gaussian_activation(2, 128, seed=6)
        qw = quantize_weights(w, bits=4, group_size=32)
        config = TMACConfig(bits=4, fast_aggregation=fast_aggregation)
        vec = TMACKernel(qw, config).matmul(a)
        loop = TMACKernel(qw, config.with_options(executor="loop")).matmul(a)
        np.testing.assert_array_equal(vec, loop)

    def test_parity_fine_scale_granularity(self):
        w = gaussian_weights(16, 128, seed=7)
        a = gaussian_activation(2, 128, seed=8)
        qw = quantize_weights(w, bits=3, group_size=64)
        config = TMACConfig(bits=3, lut_scale_granularity="fine")
        vec = TMACKernel(qw, config).matmul(a)
        loop = TMACKernel(qw, config.with_options(executor="loop")).matmul(a)
        np.testing.assert_array_equal(vec, loop)

    def test_parity_unquantized_tables_and_no_mirror(self):
        w = gaussian_weights(16, 64, seed=9)
        a = gaussian_activation(2, 64, seed=10)
        qw = quantize_weights(w, bits=2, group_size=32)
        for config in (
            TMACConfig(bits=2, table_quantization=False, act_dtype="float32"),
            TMACConfig(bits=2, mirror_consolidation=False),
        ):
            vec = TMACKernel(qw, config).matmul(a)
            loop = TMACKernel(qw, config.with_options(executor="loop")).matmul(a)
            np.testing.assert_array_equal(vec, loop)

    def test_matmul_codes_parity(self):
        w = gaussian_weights(24, 96, seed=11)
        a = gaussian_activation(2, 96, seed=12)
        qw = quantize_weights(w, bits=4, group_size=32)
        config = TMACConfig(bits=4, table_quantization=False,
                            act_dtype="float32")
        vec = TMACKernel(qw, config).matmul_codes(a)
        loop = TMACKernel(qw, config.with_options(executor="loop")).matmul_codes(a)
        np.testing.assert_allclose(vec, loop, rtol=1e-12, atol=1e-9)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            TMACConfig(bits=4, executor="cuda")
        with pytest.raises(ValueError):
            get_executor("cuda")

    def test_executor_listing(self):
        assert list_executors() == ["loop", "parallel", "process",
                                    "vectorized"]


class TestSharedTableExecution:
    """matmul_with_table lets several kernels reuse one LUT precompute."""

    def test_external_table_matches_internal(self):
        w1 = gaussian_weights(24, 128, seed=13)
        w2 = gaussian_weights(40, 128, seed=14)
        a = gaussian_activation(2, 128, seed=15)
        config = TMACConfig(bits=4)
        k1 = TMACKernel(quantize_weights(w1, bits=4, group_size=32), config)
        k2 = TMACKernel(quantize_weights(w2, bits=4, group_size=32), config)
        table = k1.precompute(a)
        np.testing.assert_array_equal(k1.matmul_with_table(a, table),
                                      k1.matmul(a))
        # The table depends only on the activation, so k2 accepts k1's table.
        np.testing.assert_array_equal(k2.matmul_with_table(a, table),
                                      k2.matmul(a))

    def test_incompatible_table_rejected(self):
        """A mismatched external table must fail loudly, not corrupt output."""
        a64 = gaussian_activation(2, 64, seed=26)
        a128 = gaussian_activation(2, 128, seed=27)
        config = TMACConfig(bits=4)
        k64 = TMACKernel(quantize_weights(gaussian_weights(8, 64, seed=28),
                                          bits=4, group_size=32), config)
        k128 = TMACKernel(quantize_weights(gaussian_weights(8, 128, seed=29),
                                           bits=4, group_size=32), config)
        table128 = k128.precompute(a128)
        with pytest.raises(ValueError):  # wrong K / group count
            k64.matmul_with_table(a64, table128)
        table64 = k64.precompute(a64)
        with pytest.raises(ValueError):  # wrong activation row count
            k64.matmul_with_table(a64[:1], table64)
        unquantized = TMACKernel(
            quantize_weights(gaussian_weights(8, 64, seed=28), bits=4,
                             group_size=32),
            config.with_options(table_quantization=False,
                                act_dtype="float32"))
        with pytest.raises(ValueError):  # quantization mismatch
            unquantized.matmul_with_table(a64, table64)
        other_transform = TMACKernel(
            quantize_weights(gaussian_weights(8, 64, seed=28), bits=4,
                             group_size=32),
            config.with_options(s0=0.0, s1=1.0, mirror_consolidation=False))
        plain = TMACKernel(
            quantize_weights(gaussian_weights(8, 64, seed=28), bits=4,
                             group_size=32),
            config.with_options(mirror_consolidation=False))
        with pytest.raises(ValueError):  # bit-serial transform mismatch
            plain.matmul_with_table(a64, other_transform.precompute(a64))


class TestKernelPlan:
    def test_fingerprint_is_content_addressed(self):
        w = gaussian_weights(16, 64, seed=16)
        qw_a = quantize_weights(w, bits=4, group_size=32)
        qw_b = quantize_weights(w.copy(), bits=4, group_size=32)
        qw_c = quantize_weights(w, bits=2, group_size=32)
        assert weight_fingerprint(qw_a) == weight_fingerprint(qw_b)
        assert weight_fingerprint(qw_a) != weight_fingerprint(qw_c)

    def test_fingerprint_memoized(self):
        """Repeated fingerprinting of one object does not re-hash M*K bytes."""
        from repro.core.plan import _FINGERPRINT_MEMO

        w = gaussian_weights(16, 64, seed=16)
        qw = quantize_weights(w, bits=4, group_size=32)
        first = weight_fingerprint(qw)
        assert _FINGERPRINT_MEMO[id(qw.codes)][3] == first
        assert weight_fingerprint(qw) == first

    def test_fingerprint_memo_not_fooled_by_replaced_arrays(self):
        """dataclasses.replace-derived weights with new arrays re-hash."""
        import dataclasses

        w = gaussian_weights(16, 64, seed=16)
        qw = quantize_weights(w, bits=4, group_size=32)
        first = weight_fingerprint(qw)
        other = dataclasses.replace(
            qw, codes=quantize_weights(gaussian_weights(16, 64, seed=99),
                                       bits=4, group_size=32).codes)
        assert weight_fingerprint(other) != first

    def test_fingerprinted_weights_stay_picklable(self):
        """The memo must not attach unpicklable state to the weight object."""
        import pickle

        w = gaussian_weights(16, 64, seed=16)
        qw = quantize_weights(w, bits=4, group_size=32)
        weight_fingerprint(qw)
        restored = pickle.loads(pickle.dumps(qw))
        assert weight_fingerprint(restored) == weight_fingerprint(qw)

    def test_kernel_from_plan_matches_direct(self):
        w = gaussian_weights(16, 64, seed=17)
        a = gaussian_activation(1, 64, seed=18)
        qw = quantize_weights(w, bits=4, group_size=32)
        config = TMACConfig(bits=4)
        plan = build_plan(qw, config)
        np.testing.assert_array_equal(
            TMACKernel.from_plan(plan, config).matmul(a),
            TMACKernel(qw, config).matmul(a),
        )

    def test_plan_shared_between_fa_and_exact(self):
        """Execution-time knobs do not fragment the plan cache."""
        cache = PlanCache()
        w = gaussian_weights(16, 64, seed=19)
        qw = quantize_weights(w, bits=4, group_size=32)
        plan_exact = cache.get(qw, TMACConfig(bits=4))
        plan_fa = cache.get(qw, TMACConfig(bits=4, fast_aggregation=True))
        assert plan_exact is plan_fa
        assert cache.stats()["hits"] == 1

    def test_implicit_and_explicit_default_tile_share_a_plan(self):
        from repro.core.tiling import TileConfig

        cache = PlanCache()
        w = gaussian_weights(16, 64, seed=19)
        qw = quantize_weights(w, bits=4, group_size=32)
        implicit = cache.get(qw, TMACConfig(bits=4))
        explicit = cache.get(qw, TMACConfig(bits=4),
                             TileConfig(m_tm=32, k_tk=32))
        assert implicit is explicit

    def test_plan_not_shared_across_layout_changes(self):
        cache = PlanCache()
        w = gaussian_weights(16, 64, seed=20)
        qw = quantize_weights(w, bits=4, group_size=32)
        base = cache.get(qw, TMACConfig(bits=4))
        other = cache.get(qw, TMACConfig(bits=4, permute_weights=False))
        assert base is not other

    def test_incompatible_plan_rejected(self):
        w = gaussian_weights(16, 64, seed=21)
        qw = quantize_weights(w, bits=4, group_size=32)
        plan = build_plan(qw, TMACConfig(bits=4))
        with pytest.raises(ValueError):
            TMACKernel.from_plan(plan, TMACConfig(bits=4, g=2))

    def test_mismatched_tile_request_rejected(self):
        from repro.core.tiling import TileConfig

        w = gaussian_weights(16, 64, seed=21)
        qw = quantize_weights(w, bits=4, group_size=32)
        plan = build_plan(qw, TMACConfig(bits=4))  # default [32, 32] tiles
        with pytest.raises(ValueError):  # explicit different tiling
            TMACKernel.from_plan(
                plan, TMACConfig(bits=4, tile_config=TileConfig(m_tm=16,
                                                                k_tk=16)))
        # No tile preference, or the plan's own tiling: both accepted.
        TMACKernel.from_plan(plan, TMACConfig(bits=4))
        TMACKernel.from_plan(
            plan, TMACConfig(bits=4, tile_config=plan.weights.tile_config))

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        weights = [gaussian_weights(8, 32, seed=30 + i) for i in range(3)]
        qws = [quantize_weights(w, bits=4, group_size=32) for w in weights]
        for qw in qws:
            cache.get(qw, TMACConfig(bits=4))
        assert len(cache) == 2
        # The oldest entry was evicted; re-fetching it is a miss.
        misses_before = cache.stats()["misses"]
        cache.get(qws[0], TMACConfig(bits=4))
        assert cache.stats()["misses"] == misses_before + 1


class TestGemmMemoization:
    def test_repeated_gemm_hits_plan_cache(self):
        clear_plan_cache()
        w = gaussian_weights(16, 64, seed=22)
        qw = quantize_weights(w, bits=4, group_size=32)
        a = gaussian_activation(2, 64, seed=23)
        first = tmac_gemm(a, qw)
        stats_after_first = PLAN_CACHE.stats()
        second = tmac_gemm(a, qw)
        stats_after_second = PLAN_CACHE.stats()
        np.testing.assert_array_equal(first, second)
        assert stats_after_second["hits"] == stats_after_first["hits"] + 1
        assert stats_after_second["misses"] == stats_after_first["misses"]

    def test_equal_weights_rebuilt_elsewhere_still_hit(self):
        clear_plan_cache()
        w = gaussian_weights(16, 64, seed=24)
        a = gaussian_activation(1, 64, seed=25)
        tmac_gemm(a, quantize_weights(w, bits=4, group_size=32))
        tmac_gemm(a, quantize_weights(w.copy(), bits=4, group_size=32))
        assert PLAN_CACHE.stats()["hits"] >= 1
