"""Unit tests for the high-level tmac_gemm / tmac_gemv API."""

import numpy as np
import pytest

from repro.baselines.reference import reference_gemm
from repro.core.config import TMACConfig
from repro.core.gemm import tmac_gemm, tmac_gemv
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestTmacGemm:
    def test_accepts_raw_fp_weights(self):
        w = gaussian_weights(32, 128, seed=0)
        a = gaussian_activation(4, 128, seed=1)
        out = tmac_gemm(a, w, bits=4, group_size=64)
        ref = reference_gemm(a, w)
        nmse = np.mean((out - ref) ** 2) / np.mean(ref ** 2)
        assert out.shape == (4, 32)
        assert nmse < 0.02  # dominated by 4-bit weight quantization error

    def test_accepts_prequantized_weights(self):
        w = gaussian_weights(16, 64, seed=2)
        qw = quantize_weights(w, bits=2, group_size=32)
        a = gaussian_activation(2, 64, seed=3)
        out = tmac_gemm(a, qw)
        assert out.shape == (2, 16)

    def test_explicit_config_controls_bits(self):
        w = gaussian_weights(16, 64, seed=4)
        a = gaussian_activation(1, 64, seed=5)
        out = tmac_gemm(a, w, bits=2, group_size=32,
                        config=TMACConfig(bits=2, fast_aggregation=True))
        assert out.shape == (1, 16)


class TestTmacGemv:
    def test_1d_round_trip(self):
        w = gaussian_weights(24, 64, seed=6)
        a = gaussian_activation(1, 64, seed=7)[0]
        out = tmac_gemv(a, w, bits=4, group_size=32)
        assert out.shape == (24,)

    def test_2d_single_row(self):
        w = gaussian_weights(24, 64, seed=8)
        a = gaussian_activation(1, 64, seed=9)
        out = tmac_gemv(a, w, bits=4, group_size=32)
        assert out.shape == (1, 24)

    def test_rejects_multi_row(self):
        w = gaussian_weights(24, 64, seed=10)
        a = gaussian_activation(2, 64, seed=11)
        with pytest.raises(ValueError):
            tmac_gemv(a, w)

    def test_gemv_matches_gemm_row(self):
        w = gaussian_weights(16, 64, seed=12)
        a = gaussian_activation(1, 64, seed=13)
        np.testing.assert_allclose(tmac_gemv(a, w, group_size=32),
                                   tmac_gemm(a, w, group_size=32))
