"""Unit tests for the T-MAC kernel: correctness against references."""

import numpy as np
import pytest

from repro.baselines.reference import quantized_reference_gemm
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestExactness:
    """Without table quantization the kernel is exact (up to fp rounding)."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_integer_code_gemm_is_exact(self, bits, rng):
        w = gaussian_weights(24, 96, seed=bits)
        a = gaussian_activation(2, 96, seed=bits + 10)
        qw = quantize_weights(w, bits=bits, group_size=32)
        config = TMACConfig(bits=bits, table_quantization=False,
                            act_dtype="float32")
        kernel = TMACKernel(qw, config)
        expected = a.astype(np.float64) @ qw.codes.astype(np.float64).T
        np.testing.assert_allclose(kernel.matmul_codes(a), expected,
                                   atol=1e-3, rtol=1e-6)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_matches_dequantized_reference(self, bits):
        w = gaussian_weights(32, 128, seed=bits)
        a = gaussian_activation(3, 128, seed=bits + 20)
        qw = quantize_weights(w, bits=bits, group_size=64)
        config = TMACConfig(bits=bits, table_quantization=False,
                            act_dtype="float32")
        out = TMACKernel(qw, config).matmul(a)
        ref = quantized_reference_gemm(a, qw)
        np.testing.assert_allclose(out, ref, atol=1e-3, rtol=1e-4)

    def test_mirror_consolidation_does_not_change_results(self):
        w = gaussian_weights(16, 64, seed=1)
        a = gaussian_activation(2, 64, seed=2)
        qw = quantize_weights(w, bits=3, group_size=32)
        base = TMACConfig(bits=3, table_quantization=False,
                          act_dtype="float32")
        with_mirror = TMACKernel(qw, base).matmul(a)
        without_mirror = TMACKernel(
            qw, base.with_options(mirror_consolidation=False)).matmul(a)
        np.testing.assert_allclose(with_mirror, without_mirror, atol=1e-4)

    def test_layout_options_do_not_change_results(self):
        """Permutation / interleaving / tiling are pure layout changes."""
        w = gaussian_weights(32, 128, seed=3)
        a = gaussian_activation(1, 128, seed=4)
        qw = quantize_weights(w, bits=4, group_size=32)
        reference = TMACKernel(qw, TMACConfig(bits=4)).matmul(a)
        for permute in (False, True):
            for interleave in (False, True):
                for tiling in (False, True):
                    config = TMACConfig(bits=4, permute_weights=permute,
                                        interleave_weights=interleave,
                                        tiling=tiling)
                    out = TMACKernel(qw, config).matmul(a)
                    np.testing.assert_allclose(out, reference, atol=1e-5)


class TestTableQuantizationError:
    def test_small_relative_error(self, small_qweight, small_activation):
        config = TMACConfig(bits=4, table_quantization=True)
        out = TMACKernel(small_qweight, config).matmul(small_activation)
        ref = quantized_reference_gemm(small_activation, small_qweight)
        nmse = np.mean((out - ref) ** 2) / np.mean(ref ** 2)
        assert nmse < 1e-3

    def test_fine_granularity_no_worse_than_group(self, small_qweight,
                                                  small_activation):
        ref = quantized_reference_gemm(small_activation, small_qweight)
        fine = TMACKernel(
            small_qweight,
            TMACConfig(bits=4, lut_scale_granularity="fine")).matmul(
                small_activation)
        group = TMACKernel(
            small_qweight,
            TMACConfig(bits=4, lut_scale_granularity="group")).matmul(
                small_activation)
        nmse_fine = np.mean((fine - ref) ** 2) / np.mean(ref ** 2)
        nmse_group = np.mean((group - ref) ** 2) / np.mean(ref ** 2)
        assert nmse_fine <= nmse_group * 1.5


class TestFastAggregation:
    def test_fast_aggregation_increases_error(self, small_qweight,
                                              small_activation):
        """Error source (b) of Section 5.6: +FA is measurably lossier."""
        ref = quantized_reference_gemm(small_activation, small_qweight)
        exact = TMACKernel(small_qweight, TMACConfig(bits=4)).matmul(
            small_activation)
        fast = TMACKernel(
            small_qweight, TMACConfig(bits=4, fast_aggregation=True)).matmul(
                small_activation)
        nmse_exact = np.mean((exact - ref) ** 2) / np.mean(ref ** 2)
        nmse_fast = np.mean((fast - ref) ** 2) / np.mean(ref ** 2)
        assert nmse_fast > nmse_exact
        # ... but stays usable (same order of magnitude as the paper's 2.5x
        # inflation over the quantization error).
        assert nmse_fast < 0.05

    def test_fast_aggregation_requires_table_quantization(self):
        with pytest.raises(ValueError):
            TMACConfig(bits=4, fast_aggregation=True, table_quantization=False)


class TestBitnetWeights:
    def test_ternary_weights_run_as_2bit(self):
        """BitNet ternary weights are interpreted as 2-bit (paper Sec. 5.1)."""
        w = gaussian_weights(24, 64, seed=9)
        qw = quantize_bitnet(w, group_size=32)
        a = gaussian_activation(2, 64, seed=10)
        out = TMACKernel(qw, TMACConfig(bits=2, table_quantization=False,
                                        act_dtype="float32")).matmul(a)
        ref = quantized_reference_gemm(a, qw)
        np.testing.assert_allclose(out, ref, atol=1e-3, rtol=1e-4)


class TestInterface:
    def test_1d_activation_returns_1d(self, small_qweight):
        a = gaussian_activation(1, 256, seed=5)[0]
        out = TMACKernel(small_qweight, TMACConfig(bits=4)).matmul(a)
        assert out.shape == (48,)

    def test_callable(self, small_qweight, small_activation):
        kernel = TMACKernel(small_qweight, TMACConfig(bits=4))
        np.testing.assert_allclose(kernel(small_activation),
                                   kernel.matmul(small_activation))

    def test_shape_properties(self, small_qweight):
        kernel = TMACKernel(small_qweight, TMACConfig(bits=4))
        assert kernel.out_features == 48
        assert kernel.in_features == 256
        assert kernel.bits == 4

    def test_wrong_activation_width_rejected(self, small_qweight):
        kernel = TMACKernel(small_qweight, TMACConfig(bits=4))
        with pytest.raises(ValueError):
            kernel.matmul(np.zeros((1, 100), dtype=np.float32))

    def test_bits_mismatch_rejected(self, small_qweight):
        with pytest.raises(ValueError):
            TMACKernel(small_qweight, TMACConfig(bits=2))

    def test_default_config_from_weights(self, small_qweight):
        kernel = TMACKernel(small_qweight)
        assert kernel.config.bits == 4

    def test_precompute_table_shape(self, small_qweight, small_activation):
        kernel = TMACKernel(small_qweight, TMACConfig(bits=4))
        table = kernel.precompute(small_activation)
        assert table.num_rows == 3
        assert table.num_groups == 256 // 4
