"""Unit tests for the offline weight-preprocessing pipeline."""

import numpy as np
import pytest

from repro.core.config import TMACConfig
from repro.core.weights import (
    deinterleave_packed,
    group_bits,
    interleave_packed,
    pack_indices,
    permute_tiles,
    preprocess_weights,
    ungroup_bits,
    unpack_indices,
    unpermute_tiles,
)
from repro.quant.uniform import quantize_weights


class TestGrouping:
    def test_group_bits_round_trip(self, rng):
        plane = rng.integers(0, 2, size=(8, 32)).astype(np.uint8)
        indices = group_bits(plane, g=4)
        assert indices.shape == (8, 8)
        assert indices.max() < 16
        np.testing.assert_array_equal(ungroup_bits(indices, 4), plane)

    def test_bit_order_within_group(self):
        # Bit t of the index corresponds to position t inside the group.
        plane = np.array([[1, 0, 0, 0, 0, 0, 0, 1]], dtype=np.uint8)
        indices = group_bits(plane, g=4)
        assert indices[0, 0] == 0b0001
        assert indices[0, 1] == 0b1000

    def test_requires_divisible_k(self):
        with pytest.raises(ValueError):
            group_bits(np.zeros((2, 10), dtype=np.uint8), g=4)

    @pytest.mark.parametrize("g", [2, 3, 4, 6])
    def test_other_group_sizes(self, g, rng):
        plane = rng.integers(0, 2, size=(4, g * 5)).astype(np.uint8)
        np.testing.assert_array_equal(ungroup_bits(group_bits(plane, g), g),
                                      plane)


class TestPacking:
    def test_pack_unpack_round_trip(self, rng):
        indices = rng.integers(0, 16, size=(4, 17)).astype(np.uint8)
        packed = pack_indices(indices, g=4)
        assert packed.shape == (4, 9)  # odd count padded
        unpacked = unpack_indices(packed, num_indices=17, g=4)
        np.testing.assert_array_equal(unpacked, indices)

    def test_two_indices_per_byte(self):
        indices = np.array([[0x3, 0xA]], dtype=np.uint8)
        packed = pack_indices(indices, g=4)
        assert packed.shape == (1, 1)
        assert packed[0, 0] == 0x3 | (0xA << 4)

    def test_wide_indices_not_packed(self, rng):
        indices = rng.integers(0, 64, size=(2, 8)).astype(np.uint8)
        packed = pack_indices(indices, g=6)
        np.testing.assert_array_equal(packed, indices)
        np.testing.assert_array_equal(unpack_indices(packed, 8, g=6), indices)


class TestInterleaving:
    def test_round_trip(self, rng):
        packed = rng.integers(0, 256, size=(3, 64)).astype(np.uint8)
        interleaved = interleave_packed(packed)
        restored = deinterleave_packed(interleaved)
        np.testing.assert_array_equal(restored, packed)

    def test_is_a_permutation_of_nibbles(self, rng):
        packed = rng.integers(0, 256, size=(1, 32)).astype(np.uint8)
        interleaved = interleave_packed(packed)
        original_nibbles = sorted(
            list(packed[0] & 0x0F) + list(packed[0] >> 4))
        new_nibbles = sorted(
            list(interleaved[0] & 0x0F) + list(interleaved[0] >> 4))
        assert original_nibbles == new_nibbles

    def test_low_nibbles_come_from_first_half(self, rng):
        """After interleaving, AND 0x0F yields the first block's indices in
        order (the Figure 4 fast-unpack property)."""
        indices = np.arange(64, dtype=np.uint8) % 16
        packed = pack_indices(indices[None, :], g=4)  # 32 bytes = 1 block
        interleaved = interleave_packed(packed, span=16)
        low = interleaved[0, :16] & 0x0F
        np.testing.assert_array_equal(low, indices[:16])
        high = interleaved[0, :16] >> 4
        np.testing.assert_array_equal(high, indices[16:32])

    def test_short_rows_unchanged(self, rng):
        packed = rng.integers(0, 256, size=(2, 8)).astype(np.uint8)
        np.testing.assert_array_equal(interleave_packed(packed), packed)


class TestPermutation:
    def test_round_trip(self, rng):
        mat = rng.integers(0, 256, size=(12, 20)).astype(np.uint8)
        flat = permute_tiles(mat, tile_m=4, tile_k=8)
        assert flat.shape == (12 * 20,)
        np.testing.assert_array_equal(
            unpermute_tiles(flat, (12, 20), 4, 8), mat)

    def test_tiles_are_contiguous(self):
        mat = np.arange(16).reshape(4, 4)
        flat = permute_tiles(mat, tile_m=2, tile_k=2)
        np.testing.assert_array_equal(flat[:4], [0, 1, 4, 5])
        np.testing.assert_array_equal(flat[4:8], [2, 3, 6, 7])

    def test_ragged_edges(self, rng):
        mat = rng.integers(0, 100, size=(5, 7))
        flat = permute_tiles(mat, tile_m=2, tile_k=3)
        np.testing.assert_array_equal(unpermute_tiles(flat, (5, 7), 2, 3), mat)


class TestPreprocessWeights:
    def test_produces_one_plane_per_bit(self, small_qweight):
        config = TMACConfig(bits=4)
        pre = preprocess_weights(small_qweight, config)
        assert len(pre.index_planes) == 4
        assert len(pre.packed_planes) == 4
        assert pre.shape == (48, 256)
        assert pre.permuted and pre.interleaved

    def test_index_planes_recombine_to_codes(self, small_qweight):
        config = TMACConfig(bits=4)
        pre = preprocess_weights(small_qweight, config)
        codes = np.zeros_like(small_qweight.codes, dtype=np.uint32)
        for i, plane in enumerate(pre.index_planes):
            bits = ungroup_bits(plane, config.g)
            codes |= bits.astype(np.uint32) << i
        np.testing.assert_array_equal(codes, small_qweight.codes)

    def test_packed_bytes_scale_with_bits(self, small_weights):
        sizes = {}
        for bits in (1, 2, 4):
            qw = quantize_weights(small_weights, bits=bits, group_size=64)
            pre = preprocess_weights(qw, TMACConfig(bits=bits))
            sizes[bits] = pre.packed_bytes()
        assert sizes[2] == 2 * sizes[1]
        assert sizes[4] == 4 * sizes[1]

    def test_bits_mismatch_rejected(self, small_qweight):
        with pytest.raises(ValueError):
            preprocess_weights(small_qweight, TMACConfig(bits=2))

    def test_quant_group_must_be_multiple_of_g(self, small_weights):
        qw = quantize_weights(small_weights, bits=4, group_size=64)
        with pytest.raises(ValueError):
            preprocess_weights(qw, TMACConfig(bits=4, g=7))

    def test_layout_flags_follow_config(self, small_qweight):
        config = TMACConfig(bits=4, permute_weights=False,
                            interleave_weights=False)
        pre = preprocess_weights(small_qweight, config)
        assert not pre.permuted and not pre.interleaved
