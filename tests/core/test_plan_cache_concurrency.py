"""Plan-cache concurrency: single-flight builds under the worker pool.

The parallel executor introduces real in-process concurrency around the
plan cache (worker threads, concurrent serving requests), so the cache must
guarantee *exactly one* offline build per key no matter how many threads
race into a cold ``get`` — duplicate builds of a 7B-scale layer would
multiply the most expensive step in the pipeline.
"""

import threading
from concurrent.futures import wait

import pytest

import repro.core.plan as plan_mod
from repro.core.config import TMACConfig
from repro.core.executor import get_worker_pool
from repro.core.plan import PlanCache, build_plan
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_weights

HAMMER_THREADS = 8
CALLS_PER_THREAD = 4


def make_qweight(seed=0, m=64, k=128):
    return quantize_weights(gaussian_weights(m, k, seed=seed), bits=4,
                            group_size=32)


class CountingBuilder:
    """Wraps build_plan, counting invocations and maximizing the race
    window with a barrier-like delay on the first build."""

    def __init__(self, delay=0.02):
        self.calls = 0
        self.lock = threading.Lock()
        self.delay = delay

    def __call__(self, qweight, config=None, tile_config=None):
        with self.lock:
            self.calls += 1
        if self.delay:
            # Keep the build in flight long enough for every hammer thread
            # to arrive while it is still pending.
            import time

            time.sleep(self.delay)
        return build_plan(qweight, config, tile_config)


def test_concurrent_get_builds_exactly_once(monkeypatch):
    cache = PlanCache()
    builder = CountingBuilder()
    monkeypatch.setattr(plan_mod, "build_plan", builder)
    qw = make_qweight(seed=1)
    config = TMACConfig(bits=4)

    pool = get_worker_pool(HAMMER_THREADS)
    start = threading.Barrier(HAMMER_THREADS)

    def hammer():
        start.wait()
        return [cache.get(qw, config) for _ in range(CALLS_PER_THREAD)]

    futures = [pool.submit(hammer) for _ in range(HAMMER_THREADS)]
    wait(futures)
    plans = [p for f in futures for p in f.result()]

    assert builder.calls == 1, "duplicate offline builds under contention"
    first = plans[0]
    assert all(p is first for p in plans), "threads got different plans"
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == HAMMER_THREADS * CALLS_PER_THREAD - 1
    assert stats["entries"] == 1


def test_concurrent_distinct_keys_build_independently(monkeypatch):
    cache = PlanCache()
    builder = CountingBuilder(delay=0.0)
    monkeypatch.setattr(plan_mod, "build_plan", builder)
    qweights = [make_qweight(seed=10 + i) for i in range(4)]
    config = TMACConfig(bits=4)

    pool = get_worker_pool(HAMMER_THREADS)
    futures = [pool.submit(cache.get, qw, config)
               for qw in qweights for _ in range(3)]
    wait(futures)
    plans = {id(f.result()) for f in futures}

    assert builder.calls == len(qweights)
    assert len(plans) == len(qweights)
    assert cache.stats()["misses"] == len(qweights)


def test_failed_build_releases_followers(monkeypatch):
    """A builder that raises must not deadlock waiters; one of them
    retries and everyone else converges on the retried plan."""
    cache = PlanCache()
    state = {"calls": 0}
    lock = threading.Lock()

    def flaky_build(qweight, config=None, tile_config=None):
        with lock:
            state["calls"] += 1
            first = state["calls"] == 1
        if first:
            import time

            time.sleep(0.02)
            raise RuntimeError("transient build failure")
        return build_plan(qweight, config, tile_config)

    monkeypatch.setattr(plan_mod, "build_plan", flaky_build)
    qw = make_qweight(seed=30)
    config = TMACConfig(bits=4)
    pool = get_worker_pool(HAMMER_THREADS)
    barrier = threading.Barrier(4)

    def racer():
        barrier.wait()
        try:
            return cache.get(qw, config)
        except RuntimeError:
            return None

    futures = [pool.submit(racer) for _ in range(4)]
    wait(futures, timeout=10)
    results = [f.result(timeout=1) for f in futures]
    plans = [p for p in results if p is not None]

    assert len(plans) >= 1, "every caller failed; followers were not retried"
    assert all(p is plans[0] for p in plans)
    # Eventually consistent: a fresh get returns the cached plan, no rebuild.
    calls_before = state["calls"]
    assert cache.get(qw, config) is plans[0]
    assert state["calls"] == calls_before


def test_single_flight_does_not_break_lru_bound():
    cache = PlanCache(max_entries=2)
    config = TMACConfig(bits=4)
    for seed in range(4):
        cache.get(make_qweight(seed=40 + seed), config)
    assert len(cache) == 2


@pytest.mark.parametrize("threads", [2, 4])
def test_hammer_through_kernel_layer(threads):
    """End to end: concurrent kernel construction against one checkpoint
    reuses a single plan (the serving engine's rebind pattern)."""
    from repro.core.kernel import TMACKernel
    from repro.core.plan import get_plan

    qw = make_qweight(seed=50)
    config = TMACConfig(bits=4, executor="parallel", num_threads=threads)
    pool = get_worker_pool(threads)
    futures = [pool.submit(lambda: TMACKernel.from_plan(
        get_plan(qw, config), config)) for _ in range(threads * 4)]
    wait(futures)
    plans = {id(f.result().plan) for f in futures}
    assert len(plans) == 1
