"""Unit tests for the bit-serial decomposition (Eq. 1 of the paper)."""

import numpy as np
import pytest

from repro.core.bitserial import (
    BitSerialTransform,
    aggregate_bit_results,
    compose_bits,
    decompose_bits,
    transform_bit_plane,
)


class TestDecomposeCompose:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_round_trip(self, bits, rng):
        codes = rng.integers(0, 1 << bits, size=(16, 64)).astype(np.uint8)
        planes = decompose_bits(codes, bits)
        assert len(planes) == bits
        assert all(set(np.unique(p)).issubset({0, 1}) for p in planes)
        np.testing.assert_array_equal(compose_bits(planes), codes)

    def test_weighted_sum_equals_codes(self, rng):
        codes = rng.integers(0, 16, size=(8, 32)).astype(np.uint8)
        planes = decompose_bits(codes, 4)
        recombined = sum((1 << i) * p.astype(np.int64)
                         for i, p in enumerate(planes))
        np.testing.assert_array_equal(recombined, codes)

    def test_rejects_overflow_codes(self):
        with pytest.raises(ValueError):
            decompose_bits(np.array([[4]], dtype=np.uint8), bits=2)

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            decompose_bits(np.zeros((2, 2), dtype=np.float32), bits=2)

    def test_compose_requires_planes(self):
        with pytest.raises(ValueError):
            compose_bits([])


class TestBitSerialTransform:
    def test_default_maps_to_plus_minus_one(self):
        t = BitSerialTransform()
        plane = np.array([[0, 1, 1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(transform_bit_plane(plane, t),
                                      [[-1.0, 1.0, 1.0, -1.0]])

    def test_alpha_beta_invert_the_map(self):
        t = BitSerialTransform(s0=-1.0, s1=1.0)
        assert t.alpha == pytest.approx(0.5)
        assert t.beta == pytest.approx(0.5)
        plane = np.array([0.0, 1.0, 1.0, 0.0])
        transformed = t.apply(plane)
        np.testing.assert_allclose(t.invert(transformed), plane)

    def test_custom_endpoints(self):
        t = BitSerialTransform(s0=0.0, s1=2.0)
        np.testing.assert_allclose(t.invert(t.apply(np.array([0, 1, 1]))),
                                   [0, 1, 1])

    def test_rejects_degenerate_transform(self):
        with pytest.raises(ValueError):
            BitSerialTransform(s0=1.0, s1=1.0)


class TestAggregateBitResults:
    def test_recovers_integer_code_gemm(self, rng):
        """sum_i 2^i (alpha R_i + beta S) == A @ codes^T."""
        bits = 3
        a = rng.standard_normal((2, 24)).astype(np.float64)
        codes = rng.integers(0, 1 << bits, size=(5, 24)).astype(np.uint8)
        planes = decompose_bits(codes, bits)
        transform = BitSerialTransform()
        partials = [a @ transform.apply(p).astype(np.float64).T for p in planes]
        row_sums = a.sum(axis=1)
        result = aggregate_bit_results(partials, row_sums, transform)
        expected = a @ codes.astype(np.float64).T
        np.testing.assert_allclose(result, expected, atol=1e-9)

    def test_single_bit(self, rng):
        a = rng.standard_normal((1, 8))
        codes = rng.integers(0, 2, size=(3, 8)).astype(np.uint8)
        plane = decompose_bits(codes, 1)[0]
        t = BitSerialTransform()
        partial = a @ t.apply(plane).astype(np.float64).T
        out = aggregate_bit_results([partial], a.sum(axis=1), t)
        np.testing.assert_allclose(out, a @ codes.astype(np.float64).T,
                                   atol=1e-9)

    def test_requires_partials(self):
        with pytest.raises(ValueError):
            aggregate_bit_results([], np.zeros(1))
