"""Parallel executor: bit-identity, sharding policy, tile geometry, knobs."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_PARALLEL_THRESHOLD, TMACConfig
from repro.core.executor import (
    ParallelExecutor,
    get_executor,
    get_worker_pool,
    parallel_executor_stats,
    reset_parallel_executor_stats,
)
from repro.core.kernel import TMACKernel
from repro.core.plan import build_plan
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


def make_kernel(bits=4, m=96, k=128, group_size=32, seed=0, **options):
    qw = quantize_weights(gaussian_weights(m, k, seed=seed), bits=bits,
                          group_size=group_size)
    return TMACKernel(qw, TMACConfig(bits=bits, **options)), qw


class TestBitIdentity:
    """The sharded result must equal the serial vectorized result bitwise."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("threads", [2, 3, 4])
    def test_parity_across_bits_and_threads(self, bits, threads):
        qw = quantize_weights(gaussian_weights(96, 128, seed=bits), bits=bits,
                              group_size=32)
        a = gaussian_activation(3, 128, seed=bits + 50)
        # executor pinned: the baseline must stay serial even when
        # REPRO_EXECUTOR=parallel flips the process default (CI leg 2).
        serial = TMACKernel(qw, TMACConfig(
            bits=bits, executor="vectorized")).matmul(a)
        parallel = TMACKernel(qw, TMACConfig(
            bits=bits, executor="parallel", num_threads=threads,
            parallel_threshold=0)).matmul(a)
        np.testing.assert_array_equal(serial, parallel)

    @pytest.mark.parametrize("options", [
        dict(fast_aggregation=True),
        dict(lut_scale_granularity="fine"),
        dict(table_quantization=False, act_dtype="float32"),
        dict(mirror_consolidation=False),
    ])
    def test_parity_across_table_modes(self, options):
        qw = quantize_weights(gaussian_weights(64, 128, seed=7), bits=3,
                              group_size=32)
        a = gaussian_activation(2, 128, seed=8)
        serial = TMACKernel(qw, TMACConfig(
            bits=3, executor="vectorized", **options)).matmul(a)
        parallel = TMACKernel(qw, TMACConfig(
            bits=3, executor="parallel", num_threads=4,
            parallel_threshold=0, **options)).matmul(a)
        np.testing.assert_array_equal(serial, parallel)

    def test_parity_against_loop_oracle(self):
        qw = quantize_weights(gaussian_weights(96, 128, seed=9), bits=4,
                              group_size=64)
        a = gaussian_activation(2, 128, seed=10)
        loop = TMACKernel(qw, TMACConfig(bits=4, executor="loop")).matmul(a)
        parallel = TMACKernel(qw, TMACConfig(
            bits=4, executor="parallel", num_threads=3,
            parallel_threshold=0)).matmul(a)
        np.testing.assert_array_equal(loop, parallel)

    def test_parity_with_shared_external_table(self):
        """Workers consume a shared read-only LUT, like the serving path."""
        qw1 = quantize_weights(gaussian_weights(64, 128, seed=11), bits=4,
                               group_size=32)
        qw2 = quantize_weights(gaussian_weights(96, 128, seed=12), bits=4,
                               group_size=32)
        a = gaussian_activation(2, 128, seed=13)
        config = TMACConfig(bits=4, executor="parallel", num_threads=4,
                            parallel_threshold=0)
        k1, k2 = TMACKernel(qw1, config), TMACKernel(qw2, config)
        table = k1.precompute(a)
        np.testing.assert_array_equal(k1.matmul_with_table(a, table),
                                      k1.matmul(a))
        np.testing.assert_array_equal(k2.matmul_with_table(a, table),
                                      k2.matmul(a))

    def test_parity_more_threads_than_tiles(self):
        """Thread counts beyond the tile count shard at tile granularity."""
        qw = quantize_weights(gaussian_weights(32, 64, seed=14), bits=2,
                              group_size=32)
        a = gaussian_activation(1, 64, seed=15)
        serial = TMACKernel(qw, TMACConfig(
            bits=2, executor="vectorized")).matmul(a)
        parallel = TMACKernel(qw, TMACConfig(
            bits=2, executor="parallel", num_threads=16,
            parallel_threshold=0)).matmul(a)
        np.testing.assert_array_equal(serial, parallel)


class TestShardingPolicy:
    def test_small_calls_fall_back_to_serial(self):
        reset_parallel_executor_stats()
        kernel, _ = make_kernel(executor="parallel", num_threads=4)
        # 1 x 96 x (128/4) = 3072 gather elements << default threshold.
        kernel.matmul(gaussian_activation(1, 128, seed=1))
        stats = parallel_executor_stats()
        assert stats["parallel_calls"] == 1
        assert stats["parallel_serial_fallbacks"] == 1
        assert stats["parallel_sharded_calls"] == 0

    def test_large_calls_shard(self):
        reset_parallel_executor_stats()
        kernel, _ = make_kernel(executor="parallel", num_threads=3,
                                parallel_threshold=0)
        kernel.matmul(gaussian_activation(2, 128, seed=2))
        stats = parallel_executor_stats()
        assert stats["parallel_sharded_calls"] == 1
        assert stats["parallel_shards_executed"] == 3

    def test_single_thread_stays_serial(self):
        reset_parallel_executor_stats()
        kernel, _ = make_kernel(executor="parallel", num_threads=1,
                                parallel_threshold=0)
        kernel.matmul(gaussian_activation(2, 128, seed=3))
        assert parallel_executor_stats()["parallel_sharded_calls"] == 0

    def test_default_threshold_exported(self):
        assert TMACConfig(bits=4).parallel_threshold == \
            DEFAULT_PARALLEL_THRESHOLD

    def test_worker_pools_are_persistent(self):
        assert get_worker_pool(2) is get_worker_pool(2)
        assert get_worker_pool(2) is not get_worker_pool(3)

    def test_resolve_threads(self):
        executor = get_executor("parallel")
        assert isinstance(executor, ParallelExecutor)
        assert executor.resolve_threads(
            TMACConfig(bits=4, num_threads=7)) == 7
        assert executor.resolve_threads(TMACConfig(bits=4)) >= 1


class TestOutputTiles:
    def test_tiles_cover_m_exactly_and_align(self):
        _, qw = make_kernel(m=96)
        plan = build_plan(qw, TMACConfig(bits=4))
        m_tm = plan.weights.tile_config.m_tm
        for num in (1, 2, 3, 5, 96):
            spans = plan.output_tiles(num)
            assert spans[0][0] == 0 and spans[-1][1] == plan.out_features
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 == b0  # contiguous, ordered
            for m0, m1 in spans[:-1]:
                assert m0 % m_tm == 0 and m1 % m_tm == 0

    def test_tiles_balanced_within_one_layout_tile(self):
        _, qw = make_kernel(m=160)
        plan = build_plan(qw, TMACConfig(bits=4))
        m_tm = plan.weights.tile_config.m_tm
        spans = plan.output_tiles(3)
        widths = [m1 - m0 for m0, m1 in spans]
        assert max(widths) - min(widths) <= m_tm

    def test_never_more_tiles_than_layout_units(self):
        _, qw = make_kernel(m=64)
        plan = build_plan(qw, TMACConfig(bits=4))
        m_tm = plan.weights.tile_config.m_tm
        assert len(plan.output_tiles(64)) == -(-64 // m_tm)

    def test_invalid_tile_count_rejected(self):
        _, qw = make_kernel()
        plan = build_plan(qw, TMACConfig(bits=4))
        with pytest.raises(ValueError):
            plan.output_tiles(0)


class TestConfigKnobs:
    def test_invalid_num_threads_rejected(self):
        with pytest.raises(ValueError):
            TMACConfig(bits=4, num_threads=0)
        with pytest.raises(ValueError):
            TMACConfig(bits=4, num_threads=-2)
        TMACConfig(bits=4, num_threads=None)
        TMACConfig(bits=4, num_threads=8)

    def test_invalid_parallel_threshold_rejected(self):
        with pytest.raises(ValueError):
            TMACConfig(bits=4, parallel_threshold=-1)
        TMACConfig(bits=4, parallel_threshold=0)

    def test_env_overrides_executor_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "parallel")
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        config = TMACConfig(bits=4)
        assert config.executor == "parallel"
        assert config.num_threads == 2
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        with pytest.raises(ValueError):
            TMACConfig(bits=4)

    def test_env_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        config = TMACConfig(bits=4)
        assert config.executor == "vectorized"
        assert config.num_threads is None


class TestBackendPlumbing:
    def test_backend_executor_kwargs(self, monkeypatch):
        from repro.backends import get_backend

        backend = get_backend("tmac", bits=4, group_size=32,
                              executor="parallel", num_threads=2)
        assert backend.config.executor == "parallel"
        assert backend.config.num_threads == 2
        # num_threads alone implies the parallel executor — but only when
        # no executor was chosen anywhere (kwarg, config, environment).
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        implied = get_backend("tmac", bits=4, num_threads=3)
        assert implied.config.executor == "parallel"
        assert implied.config.num_threads == 3
        # tmac-fa keeps lossy aggregation alongside the executor choice.
        fa = get_backend("tmac-fa", bits=4, executor="parallel")
        assert fa.config.fast_aggregation
        assert fa.config.executor == "parallel"
        # An explicitly supplied config's executor is never overridden by
        # a bare num_threads (the loop oracle stays the loop oracle).
        pinned = get_backend("tmac", config=TMACConfig(bits=4,
                                                       executor="loop"),
                             num_threads=2)
        assert pinned.config.executor == "loop"
        assert pinned.config.num_threads == 2
        # ...and neither is an executor selected via REPRO_EXECUTOR.
        monkeypatch.setenv("REPRO_EXECUTOR", "loop")
        env_pinned = get_backend("tmac", bits=4, num_threads=2)
        assert env_pinned.config.executor == "loop"
        assert env_pinned.config.num_threads == 2

    def test_backend_linear_outputs_match_serial(self):
        from repro.backends import get_backend

        w = gaussian_weights(96, 128, seed=21)
        x = gaussian_activation(4, 128, seed=22)
        serial = get_backend("tmac", bits=4, group_size=32,
                             executor="vectorized").make_linear(w)
        parallel = get_backend(
            "tmac", bits=4, group_size=32, executor="parallel",
            num_threads=4).make_linear(w)
        # Force sharding regardless of size via a zero threshold.
        parallel.kernel.config = parallel.kernel.config.with_options(
            parallel_threshold=0)
        np.testing.assert_array_equal(serial(x), parallel(x))
