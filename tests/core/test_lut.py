"""Unit tests for lookup-table precomputation, mirror consolidation and
table quantization."""

import numpy as np
import pytest

from repro.core.bitserial import BitSerialTransform
from repro.core.lut import (
    build_lut,
    lookup,
    lut_storage_bytes,
    precompute_lut,
)


def brute_force_entry(activation_group, pattern, s0=-1.0, s1=1.0):
    """Directly compute one table entry from its definition."""
    total = 0.0
    for t, value in enumerate(activation_group):
        sign = s1 if (pattern >> t) & 1 else s0
        total += sign * value
    return total


class TestBuildLut:
    def test_entries_match_brute_force(self, rng):
        a = rng.standard_normal((2, 8)).astype(np.float32)
        lut = build_lut(a, g=4)
        assert lut.shape == (2, 2, 16)
        for n in range(2):
            for j in range(2):
                group = a[n, j * 4:(j + 1) * 4]
                for p in range(16):
                    assert lut[n, j, p] == pytest.approx(
                        brute_force_entry(group, p), abs=1e-5)

    def test_pattern_zero_is_negated_sum(self, rng):
        a = rng.standard_normal((1, 4)).astype(np.float32)
        lut = build_lut(a, g=4)
        assert lut[0, 0, 0] == pytest.approx(-a.sum(), abs=1e-5)
        assert lut[0, 0, 15] == pytest.approx(a.sum(), abs=1e-5)

    def test_example_from_paper(self):
        """Section 3.1 example: alternating-sign patterns.

        In this implementation bit ``t`` of the pattern gives the sign of
        ``A[t]``, so the paper's "0101" pattern (-A1+A2-A3+A4) corresponds to
        the index ``0b1010`` and its mirror to ``0b0101``.
        """
        a = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        lut = build_lut(a, g=4)
        assert lut[0, 0, 0b1010] == pytest.approx(-1 + 2 - 3 + 4)
        assert lut[0, 0, 0b0101] == pytest.approx(1 - 2 + 3 - 4)

    def test_g_must_divide_k(self):
        with pytest.raises(ValueError):
            build_lut(np.zeros((1, 10), dtype=np.float32), g=4)

    @pytest.mark.parametrize("g", [2, 3, 4, 5])
    def test_generic_group_sizes(self, g, rng):
        a = rng.standard_normal((1, g * 3)).astype(np.float32)
        lut = build_lut(a, g=g)
        assert lut.shape == (1, 3, 1 << g)


class TestMirrorConsolidation:
    def test_half_table_stored(self, rng):
        a = rng.standard_normal((2, 16)).astype(np.float32)
        table = precompute_lut(a, g=4, mirror_consolidation=True,
                               table_quantization=False)
        assert table.stored_length == 8
        assert table.full_length == 16

    def test_lookup_reconstructs_mirrored_entries(self, rng):
        a = rng.standard_normal((2, 16)).astype(np.float32)
        full = precompute_lut(a, g=4, mirror_consolidation=False,
                              table_quantization=False, act_dtype="float32")
        half = precompute_lut(a, g=4, mirror_consolidation=True,
                              table_quantization=False, act_dtype="float32")
        indices = np.arange(16, dtype=np.uint8)[None, :].repeat(4, axis=0)
        indices = indices[:, :4]  # [M=4, J=4]
        full_vals = lookup(full, indices)
        half_vals = lookup(half, indices)
        np.testing.assert_allclose(half_vals, full_vals, atol=1e-6)

    def test_requires_symmetric_transform(self, rng):
        a = rng.standard_normal((1, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            precompute_lut(a, g=4, transform=BitSerialTransform(0.0, 1.0),
                           mirror_consolidation=True)


class TestTableQuantization:
    def test_quantized_values_are_int8(self, rng):
        a = rng.standard_normal((2, 32)).astype(np.float32)
        table = precompute_lut(a, g=4, table_quantization=True, scale_block=2)
        assert table.values.dtype == np.int8
        assert table.scales is not None
        assert table.scales.shape == (2, 4)

    def test_quantization_error_is_small(self, rng):
        a = rng.standard_normal((1, 32)).astype(np.float32)
        exact = precompute_lut(a, g=4, mirror_consolidation=True,
                               table_quantization=False, act_dtype="float32")
        quant = precompute_lut(a, g=4, mirror_consolidation=True,
                               table_quantization=True, scale_block=1)
        indices = np.arange(8, dtype=np.uint8)[None, :]
        exact_vals = lookup(exact, indices)
        quant_vals = lookup(quant, indices) * quant.scales[:, None, :]
        rel = np.abs(exact_vals - quant_vals).max() / np.abs(exact_vals).max()
        assert rel < 0.02

    def test_scale_block_must_divide_groups(self, rng):
        a = rng.standard_normal((1, 12)).astype(np.float32)
        with pytest.raises(ValueError):
            precompute_lut(a, g=4, table_quantization=True, scale_block=2)


class TestStorage:
    def test_storage_reduction_is_4x(self):
        """Mirror consolidation + table quantization shrink tables to 1/4."""
        baseline = lut_storage_bytes(1, 4096, 4, False, False, "float16")
        reduced = lut_storage_bytes(1, 4096, 4, True, True, "float16")
        assert baseline == 4 * reduced

    def test_lut_is_4x_activation_without_reduction(self):
        """For g=4 the raw fp16 LUT is 4x larger than the fp16 activation."""
        k = 1024
        activation_bytes = k * 2
        assert lut_storage_bytes(1, k, 4, False, False) == 4 * activation_bytes

    def test_storage_bytes_method(self, rng):
        a = rng.standard_normal((2, 32)).astype(np.float32)
        table = precompute_lut(a, g=4, mirror_consolidation=True,
                               table_quantization=True, scale_block=1)
        # 2 rows * 8 groups * 8 int8 entries + fp16 scales (2 * 8)
        assert table.storage_bytes() == 2 * 8 * 8 + 2 * 8 * 2


class TestLookup:
    def test_gather_matches_direct_indexing(self, rng):
        a = rng.standard_normal((3, 24)).astype(np.float32)
        table = precompute_lut(a, g=4, mirror_consolidation=False,
                               table_quantization=False, act_dtype="float32")
        indices = rng.integers(0, 16, size=(5, 6)).astype(np.uint8)
        out = lookup(table, indices)
        assert out.shape == (3, 5, 6)
        for n in range(3):
            for m in range(5):
                for j in range(6):
                    assert out[n, m, j] == pytest.approx(
                        table.values[n, j, indices[m, j]], abs=1e-6)

    def test_group_slice(self, rng):
        a = rng.standard_normal((1, 32)).astype(np.float32)
        table = precompute_lut(a, g=4, mirror_consolidation=False,
                               table_quantization=False, act_dtype="float32")
        indices = rng.integers(0, 16, size=(4, 3)).astype(np.uint8)
        out = lookup(table, indices, group_slice=slice(2, 5))
        np.testing.assert_allclose(
            out[0, 0, 0], table.values[0, 2, indices[0, 0]], atol=1e-6)

    def test_wrong_index_width_raises(self, rng):
        a = rng.standard_normal((1, 32)).astype(np.float32)
        table = precompute_lut(a, g=4)
        with pytest.raises(ValueError):
            lookup(table, np.zeros((4, 5), dtype=np.uint8),
                   group_slice=slice(0, 3))
