"""Regression tests for the frozen-plan invariant (found by repro_lint).

``preprocess_weights`` and the lazy gather-table build used to publish
writable arrays; a stray in-place write anywhere downstream would have
silently corrupted results (and, for the process executor, desynced the
content-addressed shared-memory segments from the plan bytes).  Every
published artifact is now ``setflags(write=False)``-frozen, so such a
write raises immediately instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TMACConfig
from repro.core.plan import build_plan
from repro.core.weights import preprocess_weights
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_weights


def make_plan(bits=4, mirrored=True):
    qw = quantize_weights(gaussian_weights(32, 128, seed=21), bits=bits,
                          group_size=32)
    config = TMACConfig(bits=bits, mirror_consolidation=mirrored)
    return build_plan(qw, config), config


class TestPreprocessedWeightsFrozen:
    def test_every_array_is_read_only(self, small_qweight):
        pw = preprocess_weights(small_qweight, TMACConfig(bits=4))
        arrays = [pw.scales, pw.zeros, *pw.index_planes, *pw.packed_planes]
        assert arrays
        for arr in arrays:
            assert not arr.flags.writeable

    def test_write_attempts_raise(self, small_qweight):
        pw = preprocess_weights(small_qweight, TMACConfig(bits=4))
        with pytest.raises(ValueError):
            pw.scales[0, 0] = 1.0
        with pytest.raises(ValueError):
            pw.index_planes[0][0, 0] = 3


class TestGatherTablesFrozen:
    @pytest.mark.parametrize("mirrored", [True, False])
    def test_lookup_tables_are_read_only(self, mirrored):
        plan, _ = make_plan(mirrored=mirrored)
        tables = plan.lookup_tables(mirrored)
        arrays = list(tables.folded)
        for group in (tables.signs, tables.offsets):
            if group is not None:
                arrays.extend(group)
        assert arrays
        for arr in arrays:
            assert not arr.flags.writeable

    def test_cached_object_is_shared_and_stays_frozen(self):
        plan, _ = make_plan()
        first = plan.lookup_tables(True)
        second = plan.lookup_tables(True)
        assert first is second
        with pytest.raises(ValueError):
            first.folded[0][0] = 0
