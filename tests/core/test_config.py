"""Unit tests for the kernel configuration and ablation stages."""

import pytest

from repro.core.config import ABLATION_STAGE_NAMES, TMACConfig, ablation_stages


class TestTMACConfig:
    def test_defaults_are_full_tmac(self):
        config = TMACConfig()
        assert config.bits == 4
        assert config.g == 4
        assert config.mirror_consolidation
        assert config.table_quantization
        assert not config.fast_aggregation
        assert config.tiling and config.permute_weights
        assert config.interleave_weights

    def test_table_length_reflects_mirror_consolidation(self):
        assert TMACConfig(mirror_consolidation=True).table_length == 8
        assert TMACConfig(mirror_consolidation=False).table_length == 16

    def test_table_entry_bytes(self):
        assert TMACConfig(table_quantization=True).table_entry_bytes == 1
        assert TMACConfig(table_quantization=False,
                          act_dtype="float16").table_entry_bytes == 2
        assert TMACConfig(table_quantization=False,
                          act_dtype="float32").table_entry_bytes == 4

    def test_with_options_returns_new_config(self):
        base = TMACConfig(bits=4)
        other = base.with_options(bits=2, name="low-bit")
        assert base.bits == 4
        assert other.bits == 2
        assert other.name == "low-bit"

    @pytest.mark.parametrize("kwargs", [
        {"bits": 0},
        {"bits": 9},
        {"g": 0},
        {"act_dtype": "float64"},
        {"lut_scale_granularity": "weird"},
        {"s0": 1.0, "s1": 1.0},
        {"fast_aggregation": True, "table_quantization": False},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TMACConfig(**kwargs)


class TestAblationStages:
    def test_stage_names_match_paper_figure10(self):
        stages = ablation_stages()
        assert tuple(s.name for s in stages) == ABLATION_STAGE_NAMES

    def test_stages_are_cumulative(self):
        stages = {s.name: s for s in ablation_stages()}
        assert not stages["TM-base"].table_quantization
        assert stages["+TQ"].table_quantization
        assert not stages["+TQ"].tiling
        assert stages["+Tiling"].tiling
        assert not stages["+Tiling"].permute_weights
        assert stages["+Perm."].permute_weights
        assert stages["+Tuning"].tuned
        assert stages["T-MAC"].interleave_weights
        assert not stages["T-MAC"].fast_aggregation
        assert stages["TM+FA"].fast_aggregation

    def test_stages_respect_requested_bits(self):
        stages = ablation_stages(bits=2)
        assert all(s.bits == 2 for s in stages)
