"""Process executor: bit-identity, shm lifecycle, fault paths, knobs."""

import gc

import numpy as np
import pytest

from repro.core import shm
from repro.core.config import TMACConfig
from repro.core.executor import (
    ExecutorWorkerError,
    ProcessExecutor,
    get_executor,
    process_executor_stats,
    reset_process_executor_stats,
)
from repro.core.kernel import TMACKernel
from repro.core.plan import PlanCache, build_plan
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave zero *new* published plan segments behind.

    Kernels (and therefore plans) built inside a test are locals; once the
    test returns and they are collected, the registry's finalizers must
    unlink every segment they published.  The assertion is against the
    pre-test baseline, not zero: when the whole suite runs, other modules
    (e.g. pytest-benchmark fixtures holding a kernel closure until the
    session-end report) may legitimately keep plans — and hence segments —
    alive across this file.
    """
    gc.collect()
    baseline = shm.PLAN_SEGMENTS.stats()["segments"]
    yield
    gc.collect()
    stats = shm.PLAN_SEGMENTS.stats()
    assert stats["segments"] <= baseline, f"leaked plan segments: {stats}"


def make_kernels(bits=4, m=96, k=128, group_size=32, seed=0, workers=2,
                 **options):
    """A (serial, process) kernel pair over the same quantized weights."""
    qw = quantize_weights(gaussian_weights(m, k, seed=seed), bits=bits,
                          group_size=group_size)
    serial = TMACKernel(qw, TMACConfig(bits=bits, executor="vectorized",
                                       **options))
    process = TMACKernel(qw, TMACConfig(bits=bits, executor="process",
                                        num_workers=workers,
                                        parallel_threshold=0, **options))
    return serial, process


class TestBitIdentity:
    """The process-pool result must equal the serial result bitwise."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parity_across_bits_and_workers(self, bits, workers):
        serial, process = make_kernels(bits=bits, seed=bits, workers=workers)
        a = gaussian_activation(3, 128, seed=bits + 50)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))

    def test_parity_single_worker_is_serial_path(self):
        serial, process = make_kernels(workers=1, seed=5)
        a = gaussian_activation(2, 128, seed=6)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))

    @pytest.mark.parametrize("options", [
        dict(fast_aggregation=True),
        dict(lut_scale_granularity="fine"),
        dict(table_quantization=False, act_dtype="float32"),
        dict(mirror_consolidation=False),
    ])
    def test_parity_across_table_modes(self, options):
        serial, process = make_kernels(bits=3, m=64, seed=7, workers=4,
                                       **options)
        a = gaussian_activation(2, 128, seed=8)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))

    @pytest.mark.parametrize("group_size", [32, 64, 128])
    def test_parity_across_group_sizes(self, group_size):
        serial, process = make_kernels(bits=4, m=96, k=256,
                                       group_size=group_size, seed=9,
                                       workers=3)
        a = gaussian_activation(2, 256, seed=10)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))

    def test_parity_against_loop_oracle(self):
        qw = quantize_weights(gaussian_weights(96, 128, seed=11), bits=4,
                              group_size=64)
        a = gaussian_activation(2, 128, seed=12)
        loop = TMACKernel(qw, TMACConfig(bits=4, executor="loop")).matmul(a)
        process = TMACKernel(qw, TMACConfig(
            bits=4, executor="process", num_workers=3,
            parallel_threshold=0)).matmul(a)
        np.testing.assert_array_equal(loop, process)

    def test_parity_with_shared_external_table(self):
        """Workers consume a shared read-only LUT, like the serving path."""
        qw1 = quantize_weights(gaussian_weights(64, 128, seed=13), bits=4,
                               group_size=32)
        qw2 = quantize_weights(gaussian_weights(96, 128, seed=14), bits=4,
                               group_size=32)
        a = gaussian_activation(2, 128, seed=15)
        config = TMACConfig(bits=4, executor="process", num_workers=4,
                            parallel_threshold=0)
        k1, k2 = TMACKernel(qw1, config), TMACKernel(qw2, config)
        table = k1.precompute(a)
        np.testing.assert_array_equal(k1.matmul_with_table(a, table),
                                      k1.matmul(a))
        np.testing.assert_array_equal(k2.matmul_with_table(a, table),
                                      k2.matmul(a))

    def test_parity_more_workers_than_tiles(self):
        qw = quantize_weights(gaussian_weights(32, 64, seed=16), bits=2,
                              group_size=32)
        a = gaussian_activation(1, 64, seed=17)
        serial = TMACKernel(qw, TMACConfig(
            bits=2, executor="vectorized")).matmul(a)
        process = TMACKernel(qw, TMACConfig(
            bits=2, executor="process", num_workers=16,
            parallel_threshold=0)).matmul(a)
        np.testing.assert_array_equal(serial, process)

    def test_repeated_calls_reuse_arena_bit_identically(self):
        """Arena reuse across calls must never perturb results."""
        serial, process = make_kernels(seed=18, workers=2)
        for step in range(4):
            a = gaussian_activation(2, 128, seed=20 + step)
            np.testing.assert_array_equal(serial.matmul(a),
                                          process.matmul(a))


class TestDispatchPolicy:
    def test_small_calls_fall_back_to_serial(self):
        reset_process_executor_stats()
        qw = quantize_weights(gaussian_weights(96, 128, seed=1), bits=4,
                              group_size=32)
        kernel = TMACKernel(qw, TMACConfig(bits=4, executor="process",
                                           num_workers=4))
        # 1 x 96 x (128/4) = 3072 gather elements << default threshold.
        kernel.matmul(gaussian_activation(1, 128, seed=1))
        stats = process_executor_stats()
        assert stats["process_calls"] == 1
        assert stats["process_serial_fallbacks"] == 1
        assert stats["process_dispatches"] == 0

    def test_explicit_workers_pin_the_process_pool(self):
        reset_process_executor_stats()
        _, process = make_kernels(seed=2, workers=2)
        process.matmul(gaussian_activation(2, 128, seed=3))
        stats = process_executor_stats()
        assert stats["process_dispatches"] == 1
        assert stats["process_thread_delegations"] == 0
        assert stats["process_shards_executed"] == 2

    def test_auto_workers_delegate_small_shapes_to_threads(self):
        """With num_workers unset, the cost model's IPC term routes tiny
        above-threshold shapes to the thread pool."""
        reset_process_executor_stats()
        qw = quantize_weights(gaussian_weights(96, 128, seed=4), bits=4,
                              group_size=32)
        kernel = TMACKernel(qw, TMACConfig(bits=4, executor="process",
                                           num_workers=None,
                                           parallel_threshold=0))
        serial = TMACKernel(qw, TMACConfig(bits=4, executor="vectorized"))
        a = gaussian_activation(2, 128, seed=5)
        np.testing.assert_array_equal(serial.matmul(a), kernel.matmul(a))
        stats = process_executor_stats()
        if shm.multiprocessing is None or (shm.os.cpu_count() or 1) < 2:
            assert stats["process_serial_fallbacks"] == 1
        else:
            assert stats["process_thread_delegations"] == 1
            assert stats["process_dispatches"] == 0

    def test_disable_shm_env_falls_back_serially(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert not shm.shm_available()
        reset_process_executor_stats()
        serial, process = make_kernels(seed=6, workers=4)
        a = gaussian_activation(2, 128, seed=7)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))
        stats = process_executor_stats()
        assert stats["process_serial_fallbacks"] == 1
        assert stats["process_dispatches"] == 0

    def test_resolve_workers(self):
        executor = get_executor("process")
        assert isinstance(executor, ProcessExecutor)
        assert executor.resolve_workers(
            TMACConfig(bits=4, num_workers=7)) == 7
        assert executor.resolve_workers(TMACConfig(bits=4)) >= 1

    def test_worker_pools_are_persistent(self):
        assert shm.get_process_pool(2) is shm.get_process_pool(2)
        assert shm.get_process_pool(2) is not shm.get_process_pool(3)


class TestConfigKnobs:
    def test_invalid_num_workers_rejected(self):
        with pytest.raises(ValueError):
            TMACConfig(bits=4, num_workers=0)
        with pytest.raises(ValueError):
            TMACConfig(bits=4, num_workers=-2)
        TMACConfig(bits=4, num_workers=None)
        TMACConfig(bits=4, num_workers=8)

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        config = TMACConfig(bits=4)
        assert config.executor == "process"
        assert config.num_workers == 2
        monkeypatch.setenv("REPRO_NUM_WORKERS", "not-a-number")
        with pytest.raises(ValueError):
            TMACConfig(bits=4)

    def test_env_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert TMACConfig(bits=4).num_workers is None


class TestBackendPlumbing:
    def test_num_workers_implies_process_executor(self, monkeypatch):
        from repro.backends import get_backend

        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        backend = get_backend("tmac", bits=4, group_size=32, num_workers=2)
        assert backend.config.executor == "process"
        assert backend.config.num_workers == 2
        # An explicit executor kwarg always wins.
        pinned = get_backend("tmac", bits=4, executor="vectorized",
                            num_workers=2)
        assert pinned.config.executor == "vectorized"
        assert pinned.config.num_workers == 2
        # ...and so does an executor selected via REPRO_EXECUTOR.
        monkeypatch.setenv("REPRO_EXECUTOR", "loop")
        env_pinned = get_backend("tmac", bits=4, num_workers=2)
        assert env_pinned.config.executor == "loop"
        assert env_pinned.config.num_workers == 2
        # tmac-fa keeps lossy aggregation alongside the executor choice.
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        fa = get_backend("tmac-fa", bits=4, executor="process",
                         num_workers=2)
        assert fa.config.fast_aggregation
        assert fa.config.executor == "process"


class TestStats:
    def test_snapshot_and_reset(self):
        reset_process_executor_stats()
        stats = process_executor_stats()
        for key in ("process_calls", "process_dispatches",
                    "process_serial_fallbacks", "process_thread_delegations",
                    "process_shards_executed", "process_worker_errors",
                    "process_shm_segments", "process_shm_bytes",
                    "process_worker_restarts"):
            assert key in stats
        assert stats["process_calls"] == 0
        _, process = make_kernels(seed=30, workers=2)
        process.matmul(gaussian_activation(2, 128, seed=31))
        after = process_executor_stats()
        assert after["process_calls"] == 1
        assert after["process_shm_segments"] >= 1
        assert after["process_shm_bytes"] > 0
        reset_process_executor_stats()
        cleared = process_executor_stats()
        assert cleared["process_calls"] == 0
        assert cleared["process_worker_restarts"] == 0

    def test_parallel_stats_reset_is_atomic(self):
        from repro.core.executor import (
            parallel_executor_stats,
            reset_parallel_executor_stats,
        )

        reset_parallel_executor_stats()
        qw = quantize_weights(gaussian_weights(96, 128, seed=32), bits=4,
                              group_size=32)
        kernel = TMACKernel(qw, TMACConfig(bits=4, executor="parallel",
                                           num_threads=2,
                                           parallel_threshold=0))
        kernel.matmul(gaussian_activation(2, 128, seed=33))
        assert parallel_executor_stats()["parallel_sharded_calls"] == 1
        reset_parallel_executor_stats()
        assert all(v == 0 for v in parallel_executor_stats().values())

    def test_pool_stat_accessors_are_safe_during_dispatch(self):
        """Regression (found by repro_lint): ``reset_stats`` and
        ``arena_bytes`` read/wrote pool state with no lock, racing the
        dispatch path's worker respawns and arena growth.  Hammer the
        accessors from other threads while calls run and assert nothing
        raises and the final counters are coherent."""
        import threading

        _, process = make_kernels(seed=34, workers=2)
        a = gaussian_activation(2, 128, seed=35)
        process.matmul(a)  # warm the pool + arena
        pool = shm.get_process_pool(2)
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                while not stop.is_set():
                    pool.arena_bytes()
                    pool.restart_count()
                    pool.reset_stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                process.matmul(a)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        assert errors == []
        assert pool.arena_bytes() > 0
        pool.reset_stats()
        assert pool.restart_count() == 0


class TestFaultTolerance:
    def test_worker_killed_between_calls_respawns(self):
        reset_process_executor_stats()
        serial, process = make_kernels(seed=40, workers=2)
        a = gaussian_activation(2, 128, seed=41)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))
        shm.get_process_pool(2).debug_kill_worker(0)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))
        assert process_executor_stats()["process_worker_restarts"] >= 1

    def test_worker_killed_mid_dispatch_completes_bit_identically(self):
        """A crash marker queued ahead of the call's shards kills the
        worker while it drains its queue; the dispatcher must respawn it,
        resubmit the lost shards and still return the exact result."""
        reset_process_executor_stats()
        serial, process = make_kernels(seed=42, workers=2)
        a = gaussian_activation(2, 128, seed=43)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))
        shm.get_process_pool(2).debug_kill_worker(0, mid_dispatch=True)
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))
        assert process_executor_stats()["process_worker_restarts"] >= 1

    def test_unrecoverable_pool_raises_typed_error(self, monkeypatch):
        """With respawn disabled, a dead pool must raise ExecutorWorkerError
        (never hang) and the next call must recover on fresh workers."""
        serial, process = make_kernels(seed=44, workers=2)
        a = gaussian_activation(2, 128, seed=45)
        process.matmul(a)  # warm the pool
        pool = shm.get_process_pool(2)
        monkeypatch.setattr(pool, "max_retries", 0)
        for worker in pool._workers:
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
        monkeypatch.setattr(pool, "_ensure_workers_locked",
                            lambda count_restarts=True: None)
        with pytest.raises(ExecutorWorkerError):
            process.matmul(a)
        monkeypatch.undo()
        np.testing.assert_array_equal(serial.matmul(a), process.matmul(a))


class TestShmLifecycle:
    def test_publish_is_idempotent_per_plan(self):
        # Baseline-relative: other modules' live plans may hold segments
        # when the full suite runs (see the autouse fixture's docstring).
        base = shm.PLAN_SEGMENTS.stats()["segments"]
        qw = quantize_weights(gaussian_weights(64, 128, seed=50), bits=4,
                              group_size=32)
        plan = build_plan(qw, TMACConfig(bits=4))
        m1 = shm.PLAN_SEGMENTS.publish(plan, mirrored=True)
        m2 = shm.PLAN_SEGMENTS.publish(plan, mirrored=True)
        assert m1["segment"] == m2["segment"]
        assert shm.PLAN_SEGMENTS.stats()["segments"] == base + 1
        del plan
        gc.collect()
        assert shm.PLAN_SEGMENTS.stats()["segments"] == base

    def test_segments_unlinked_after_plan_cache_eviction(self):
        """A create/evict/create cycle must not leak segments."""
        from multiprocessing import shared_memory

        base = shm.PLAN_SEGMENTS.stats()["segments"]
        cache = PlanCache(max_entries=1)
        config = TMACConfig(bits=4)
        qw1 = quantize_weights(gaussian_weights(64, 128, seed=51), bits=4,
                               group_size=32)
        qw2 = quantize_weights(gaussian_weights(96, 128, seed=52), bits=4,
                               group_size=32)
        plan1 = cache.get(qw1, config)
        manifest1 = shm.PLAN_SEGMENTS.publish(plan1, mirrored=True)
        assert shm.PLAN_SEGMENTS.stats()["segments"] == base + 1
        cache.get(qw2, config)  # evicts plan1 from the cache
        del plan1
        gc.collect()
        assert shm.PLAN_SEGMENTS.stats()["segments"] == base
        # The segment is unlinked from the OS, not merely forgotten.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=manifest1["segment"])
        # The re-created plan publishes a fresh segment without conflict.
        plan3 = cache.get(qw1, config)
        manifest3 = shm.PLAN_SEGMENTS.publish(plan3, mirrored=True)
        assert manifest3["segment"] != manifest1["segment"]
        del plan3
        cache.clear()
        gc.collect()
        assert shm.PLAN_SEGMENTS.stats()["segments"] == base

    def test_arena_grows_to_largest_call_and_is_reused(self):
        shm.shutdown_process_pools()
        _, small = make_kernels(seed=53, workers=2)
        small.matmul(gaussian_activation(1, 128, seed=54))
        pool = shm.get_process_pool(2)
        first = pool.arena_bytes()
        assert first > 0
        _, large = make_kernels(m=256, k=512, seed=55, workers=2)
        large.matmul(gaussian_activation(8, 512, seed=56))
        grown = pool.arena_bytes()
        assert grown >= first
        # A second small call reuses the grown arena (no reallocation).
        small.matmul(gaussian_activation(1, 128, seed=57))
        assert pool.arena_bytes() == grown
        assert shm.shm_registry_stats()["arena_segments"] == 1
        shm.shutdown_process_pools()
        assert shm.shm_registry_stats()["arena_bytes"] == 0
