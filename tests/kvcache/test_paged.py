"""Paged KV caches: drop-in equivalence, COW fork, reservation, reuse."""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.kvcache import OutOfBlocks, PagePool
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=64)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def model(arch):
    weights = generate_random_weights(arch, seed=3)
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def make_pool(arch, blocks=32, block_size=4, prefix_caching=True):
    block_bytes = kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                 arch.head_dim, block_size)
    return PagePool.for_model(arch, budget_bytes=blocks * block_bytes,
                              block_size=block_size,
                              prefix_caching=prefix_caching)


class TestDropIn:
    def test_forward_identical_to_unpaged_cache(self, arch, model):
        """PagedKVCache is a bit-exact drop-in for llm.layers.KVCache."""
        tokens = np.asarray([1, 2, 3, 4, 5, 6, 7, 8, 9])
        unpaged = model.new_cache()
        expected = model.forward(tokens, caches=unpaged, start_position=0)

        pool = make_pool(arch)
        views = pool.create_session_cache(tokens.tolist()).layer_views()
        actual = model.forward(tokens, caches=views, start_position=0)
        np.testing.assert_array_equal(expected, actual)

        # Incremental decode stays identical too (page-boundary crossing).
        for step, token in enumerate([11, 12, 13, 14, 15]):
            t = np.asarray([token])
            exp = model.forward(t, caches=unpaged, start_position=9 + step)
            act = model.forward(t, caches=views, start_position=9 + step)
            np.testing.assert_array_equal(exp, act)
        for layer in range(arch.num_layers):
            k_u, v_u = unpaged[layer].stacked()
            k_p, v_p = views[layer].stacked()
            np.testing.assert_array_equal(k_u, k_p)
            np.testing.assert_array_equal(v_u, v_p)
            assert unpaged[layer].length == views[layer].length
            assert unpaged[layer].memory_bytes() == views[layer].memory_bytes()

    def test_empty_cache_raises_like_unpaged(self, arch):
        pool = make_pool(arch)
        view = pool.create_session_cache([1, 2]).layer_views()[0]
        with pytest.raises(ValueError):
            view.stacked()


class TestReservation:
    def test_reserve_is_all_or_nothing(self, arch):
        pool = make_pool(arch, blocks=3, block_size=4)
        cache = pool.create_session_cache([1] * 4)
        cache.reserve(8)  # 2 pages
        other = pool.create_session_cache([2] * 4)
        other.reserve(4)  # pool now full
        with pytest.raises(OutOfBlocks):
            cache.reserve(16)  # needs 2 more pages, only 0 free
        # The failed reservation must not have leaked the pool dry.
        assert pool.free_blocks == 0
        assert len(cache.block_table) == 2

    def test_append_autogrows_and_respects_budget(self, arch):
        pool = make_pool(arch, blocks=2, block_size=4)
        cache = pool.create_session_cache([1])
        view = cache.layer_views()[0]
        heads, dim = pool.kv_shape
        rows = np.zeros((8, heads, dim), dtype=np.float32)
        view.append(rows, rows)  # grows to 2 pages
        assert view.length == 8
        with pytest.raises(OutOfBlocks):
            view.append(rows[:1], rows[:1])

    def test_release_returns_pages(self, arch):
        pool = make_pool(arch, blocks=4, block_size=4)
        cache = pool.create_session_cache([1])
        cache.reserve(16)
        assert pool.free_blocks == 0
        cache.release()
        assert pool.free_blocks == 4
        with pytest.raises(RuntimeError):
            cache.reserve(4)  # released caches are inert


class TestCopyOnWrite:
    def test_fork_shares_pages_until_write(self, arch, model):
        pool = make_pool(arch, block_size=4)
        tokens = np.asarray([1, 2, 3, 4, 5, 6])
        parent = pool.create_session_cache(tokens.tolist())
        model.forward(tokens, caches=parent.layer_views(), start_position=0)
        pages_before = pool.allocator.used_blocks

        child = parent.fork()
        assert pool.allocator.used_blocks == pages_before  # zero-copy fork
        assert pool.shared_blocks == 2  # both pages shared

        # Writing through the child forks only the partial tail page.
        child_views = child.layer_views()
        parent_views = parent.layer_views()
        exp_child = model.forward(np.asarray([7]), caches=child_views,
                                  start_position=6)
        assert pool.cow_forks == 1
        exp_parent = model.forward(np.asarray([8]), caches=parent_views,
                                   start_position=6)
        # Divergent tails, intact shared prefix: replay both histories
        # against fresh unpaged caches with the same prefill/decode
        # schedule (the attention einsum's reduction order depends on the
        # query count, so a whole-sequence pass differs in final ulps) and
        # compare bitwise.
        for branch_token, views in ((7, child_views), (8, parent_views)):
            fresh = model.new_cache()
            model.forward(tokens, caches=fresh, start_position=0)
            model.forward(np.asarray([branch_token]), caches=fresh,
                          start_position=6)
            for layer in range(arch.num_layers):
                k_f, v_f = fresh[layer].stacked()
                k_b, v_b = views[layer].stacked()
                np.testing.assert_array_equal(k_f, k_b)
                np.testing.assert_array_equal(v_f, v_b)

    def test_fork_release_keeps_parent_intact(self, arch, model):
        pool = make_pool(arch, block_size=4)
        tokens = np.asarray([1, 2, 3, 4, 5])
        parent = pool.create_session_cache(tokens.tolist())
        views = parent.layer_views()
        expected = model.forward(tokens, caches=views, start_position=0)
        child = parent.fork()
        child.release()
        k_before, _ = views[0].stacked()
        actual = model.forward(tokens, caches=pool.create_session_cache(
            tokens.tolist()).layer_views(), start_position=0)
        np.testing.assert_array_equal(expected, actual)
        k_after, _ = views[0].stacked()
        np.testing.assert_array_equal(k_before, k_after)


class TestPrefixReuse:
    def test_second_session_maps_same_physical_pages(self, arch, model):
        pool = make_pool(arch, block_size=4)
        tokens = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        first = pool.create_session_cache(tokens)
        model.forward(np.asarray(tokens), caches=first.layer_views(),
                      start_position=0)
        first.commit_prefix(tokens)

        second = pool.create_session_cache(tokens)
        # 8 of 9 positions come from the cache (2 full pages; the last
        # token is always recomputed).
        assert second.prefix_length == 8
        assert second.block_table[:2] == first.block_table[:2]
        assert pool.shared_blocks == 2
        assert pool.prefix_cache.hit_tokens == 8

    def test_eviction_unlinks_then_reuses_pages(self, arch, model):
        pool = make_pool(arch, blocks=3, block_size=4)
        tokens = [1, 2, 3, 4, 5, 6, 7, 8]
        first = pool.create_session_cache(tokens)
        model.forward(np.asarray(tokens), caches=first.layer_views(),
                      start_position=0)
        first.commit_prefix(tokens)
        first.release()  # 2 cached pages now evictable

        # A new session needs all 3 pages: the cached ones get evicted.
        big = pool.create_session_cache([9] * 12)
        big.reserve(12)
        assert pool.allocator.evictions >= 1
        ids, _ = pool.prefix_cache.match(tokens)
        assert ids == []  # evicted pages no longer match

    def test_partial_eviction_keeps_chain_root_matchable(self, arch, model):
        """Pages are released leaf-first, so one eviction under pressure
        trims the *tail* of a cached prefix chain — the root page stays
        matchable instead of orphaning every descendant."""
        pool = make_pool(arch, blocks=4, block_size=4)
        tokens = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]
        first = pool.create_session_cache(tokens)
        model.forward(np.asarray(tokens), caches=first.layer_views(),
                      start_position=0)
        first.commit_prefix(tokens)
        first.release()  # 3 cached pages evictable, 1 page truly free

        pressure = pool.create_session_cache([90] * 8)
        pressure.reserve(8)  # needs 2 pages: 1 free + 1 evicted (the leaf)
        assert pool.allocator.evictions == 1
        ids, _ = pool.prefix_cache.match(tokens)
        assert len(ids) == 2  # root + middle survive; only the tail is gone
