"""Block allocator: refcounting, free list, LRU eviction, OOM."""

import pytest

from repro.kvcache import BlockAllocator, OutOfBlocks


class TestAllocation:
    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            BlockAllocator(0)

    def test_allocate_until_exhausted(self):
        alloc = BlockAllocator(3)
        ids = [alloc.allocate() for _ in range(3)]
        assert sorted(ids) == [0, 1, 2]
        assert alloc.num_free == 0
        with pytest.raises(OutOfBlocks):
            alloc.allocate()

    def test_release_returns_block_to_free_list(self):
        alloc = BlockAllocator(1)
        block = alloc.allocate()
        alloc.release(block)
        assert alloc.num_free == 1
        assert alloc.allocate() == block

    def test_peak_used_tracks_high_water_mark(self):
        alloc = BlockAllocator(4)
        blocks = [alloc.allocate() for _ in range(3)]
        for block in blocks:
            alloc.release(block)
        assert alloc.used_blocks == 0
        assert alloc.peak_used_blocks == 3


class TestRefcounting:
    def test_retain_release_cycle(self):
        alloc = BlockAllocator(2)
        block = alloc.allocate()
        assert alloc.refcount(block) == 1
        alloc.retain(block)
        assert alloc.refcount(block) == 2
        alloc.release(block)
        assert alloc.refcount(block) == 1
        alloc.release(block)
        assert alloc.refcount(block) == 0
        assert alloc.num_free == 2

    def test_retain_unallocated_raises(self):
        alloc = BlockAllocator(2)
        with pytest.raises(KeyError):
            alloc.retain(0)

    def test_release_unallocated_raises(self):
        alloc = BlockAllocator(2)
        with pytest.raises(KeyError):
            alloc.release(1)


class TestEviction:
    def test_cached_blocks_evicted_in_lru_order(self):
        """Blocks released earliest are reclaimed first (LRU)."""
        alloc = BlockAllocator(3)
        evicted = []
        alloc.on_evict = evicted.append
        a, b, c = (alloc.allocate() for _ in range(3))
        for block in (a, b, c):
            alloc.mark_cached(block)
        # Release in the order b, a, c: LRU eviction must follow suit.
        alloc.release(b)
        alloc.release(a)
        alloc.release(c)
        assert alloc.num_free == 3
        assert [alloc.allocate() for _ in range(3)]
        assert evicted == [b, a, c]
        assert alloc.evictions == 3

    def test_retain_revives_evictable_block(self):
        """A prefix hit on an unreferenced cached block rescues it."""
        alloc = BlockAllocator(2)
        block = alloc.allocate()
        alloc.mark_cached(block)
        alloc.release(block)
        assert alloc.num_free == 2
        alloc.retain(block)  # prefix-cache hit
        assert alloc.refcount(block) == 1
        # Now only the truly free block can be allocated.
        other = alloc.allocate()
        assert other != block
        with pytest.raises(OutOfBlocks):
            alloc.allocate()

    def test_uncached_release_skips_evictable_list(self):
        alloc = BlockAllocator(1)
        block = alloc.allocate()
        alloc.release(block)
        assert alloc.evictions == 0
        alloc.allocate()  # straight from the free list
        assert alloc.evictions == 0

    def test_shared_counter_tracks_refcount_crossings(self):
        alloc = BlockAllocator(2)
        block = alloc.allocate()
        assert alloc.num_shared == 0
        alloc.retain(block)
        assert alloc.num_shared == 1
        alloc.retain(block)
        assert alloc.num_shared == 1  # still one *block* shared
        alloc.release(block)
        assert alloc.num_shared == 1
        alloc.release(block)
        assert alloc.num_shared == 0
        alloc.release(block)
