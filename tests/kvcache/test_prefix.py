"""Prefix cache: chained full-block matching, counters, eviction unlink."""

import pytest

from repro.kvcache import PrefixCache


class TestMatching:
    def test_empty_cache_matches_nothing(self):
        cache = PrefixCache(block_size=4)
        ids, key = cache.match([1, 2, 3, 4, 5])
        assert ids == [] and key is None

    def test_chain_match_walks_full_blocks(self):
        cache = PrefixCache(block_size=2)
        k1 = cache.chain_key(None, [1, 2])
        k2 = cache.chain_key(k1, [3, 4])
        cache.insert(k1, 10)
        cache.insert(k2, 11)
        ids, key = cache.match([1, 2, 3, 4, 5, 6])
        assert ids == [10, 11]
        assert key == k2

    def test_partial_blocks_never_match(self):
        cache = PrefixCache(block_size=4)
        cache.insert(cache.chain_key(None, [1, 2, 3, 4]), 0)
        ids, _ = cache.match([1, 2, 3])  # shorter than one block
        assert ids == []

    def test_chain_breaks_on_divergence(self):
        cache = PrefixCache(block_size=2)
        k1 = cache.chain_key(None, [1, 2])
        cache.insert(k1, 0)
        cache.insert(cache.chain_key(k1, [3, 4]), 1)
        ids, key = cache.match([1, 2, 9, 9])  # second block differs
        assert ids == [0] and key == k1

    def test_max_tokens_caps_the_match(self):
        """The engine always leaves >= 1 token to recompute for logits."""
        cache = PrefixCache(block_size=2)
        k1 = cache.chain_key(None, [1, 2])
        k2 = cache.chain_key(k1, [3, 4])
        cache.insert(k1, 0)
        cache.insert(k2, 1)
        ids, _ = cache.match([1, 2, 3, 4], max_tokens=3)
        assert ids == [0]  # the second block would cover token 4

    def test_same_prefix_of_distinct_chains_does_not_collide(self):
        """Block keys are chained: [1,2]+[3,4] != [9,9]+[3,4]."""
        cache = PrefixCache(block_size=2)
        k1 = cache.chain_key(None, [1, 2])
        cache.insert(k1, 0)
        cache.insert(cache.chain_key(k1, [3, 4]), 1)
        ids, _ = cache.match([9, 9, 3, 4])
        assert ids == []


class TestBookkeeping:
    def test_insert_keeps_first_mapping(self):
        cache = PrefixCache(block_size=2)
        key = cache.chain_key(None, [5, 6])
        assert cache.insert(key, 3)
        assert not cache.insert(key, 4)  # duplicate content, other block
        assert cache.lookup(key) == 3

    def test_forget_block_unlinks_chain(self):
        cache = PrefixCache(block_size=2)
        k1 = cache.chain_key(None, [1, 2])
        k2 = cache.chain_key(k1, [3, 4])
        cache.insert(k1, 0)
        cache.insert(k2, 1)
        cache.forget_block(0)  # allocator evicted the first block
        ids, _ = cache.match([1, 2, 3, 4])
        assert ids == []  # chain root gone; nothing matches
        assert len(cache) == 1  # the orphaned second entry remains keyed

    def test_hit_rate_counters(self):
        cache = PrefixCache(block_size=2)
        cache.insert(cache.chain_key(None, [1, 2]), 0)
        cache.match([1, 2, 3, 4])       # 2 of 4 tokens hit
        cache.match([7, 8])             # 0 of 2 tokens hit
        assert cache.lookups == 2
        assert cache.hit_tokens == 2
        assert cache.requested_tokens == 6
        assert cache.hit_rate == pytest.approx(2 / 6)

    def test_probe_mode_leaves_counters_alone(self):
        cache = PrefixCache(block_size=2)
        cache.insert(cache.chain_key(None, [1, 2]), 0)
        ids, _ = cache.match([1, 2, 3], record=False)
        assert ids == [0]
        assert cache.lookups == 0 and cache.requested_tokens == 0
