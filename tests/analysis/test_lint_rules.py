"""Per-rule good/bad fixture snippets for ``repro_lint``.

Each rule gets at least one *bad* snippet proving it fires and one *good*
snippet proving the blessed idiom stays quiet — the linter is a CI gate,
so both directions are load-bearing.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source


def run(path: str, source: str, rule: str):
    """Active findings of ``rule`` for a snippet."""
    findings = lint_source(path, textwrap.dedent(source))
    return [f for f in findings if f.rule == rule and not f.suppressed]


# --------------------------------------------------------------------- #
# frozen-plan
# --------------------------------------------------------------------- #

class TestFrozenPlan:
    def test_unfrozen_artifact_constructor_fires(self):
        bad = """
            def build(planes):
                return _LookupTables(stored=8, folded=planes)
        """
        assert len(run("x.py", bad, "frozen-plan")) == 1

    def test_setflags_evidence_passes(self):
        good = """
            def build(planes):
                for arr in planes:
                    arr.setflags(write=False)
                return _LookupTables(stored=8, folded=planes)
        """
        assert run("x.py", good, "frozen-plan") == []

    def test_setflags_write_true_is_not_evidence(self):
        bad = """
            def build(planes):
                planes[0].setflags(write=True)
                return PreprocessedWeights(index_planes=planes)
        """
        assert len(run("x.py", bad, "frozen-plan")) == 1

    def test_freeze_helper_and_view_count_as_evidence(self):
        good = """
            def rebuild(buf, spec):
                arr = _view(buf, spec)
                return _LookupTables(stored=8, folded=[arr])

            def build(qw):
                qw.freeze()
                return PreprocessedWeights(index_planes=qw.codes)
        """
        assert run("x.py", good, "frozen-plan") == []

    def test_plan_write_outside_build_fires(self):
        bad = """
            def poke(plan):
                plan.weights.scales[0] = 1.0
        """
        assert len(run("x.py", bad, "frozen-plan")) == 1

    def test_plan_write_inside_build_plan_passes(self):
        good = """
            def build_plan(qw, config):
                plan.checksum = compute(qw)
        """
        assert run("x.py", good, "frozen-plan") == []

    def test_kernel_plan_self_assign_outside_build_fires(self):
        bad = """
            class KernelPlan:
                def rewire(self):
                    self.transform = None
        """
        assert len(run("x.py", bad, "frozen-plan")) == 1

    def test_kernel_plan_init_assign_passes(self):
        good = """
            class KernelPlan:
                def __post_init__(self):
                    self.checksum = 0
        """
        assert run("x.py", good, "frozen-plan") == []


# --------------------------------------------------------------------- #
# lock-guard
# --------------------------------------------------------------------- #

class TestLockGuard:
    def test_unlocked_access_fires(self):
        bad = """
            class PlanCache:
                def peek(self, key):
                    return self._plans.get(key)
        """
        findings = run("x.py", bad, "lock-guard")
        assert len(findings) == 1
        assert findings[0].symbol == "PlanCache._plans"

    def test_with_lock_access_passes(self):
        good = """
            class PlanCache:
                def peek(self, key):
                    with self._lock:
                        return self._plans.get(key)
        """
        assert run("x.py", good, "lock-guard") == []

    def test_init_and_locked_methods_pass(self):
        good = """
            class PlanCache:
                def __init__(self):
                    self._plans = {}

                def _evict_locked(self):
                    self._plans.clear()
        """
        assert run("x.py", good, "lock-guard") == []

    def test_nested_def_resets_with_context(self):
        # A closure defined under the lock runs later, maybe after the
        # lock is released — the with-context must not leak into it.
        bad = """
            class PlanCache:
                def schedule(self, pool):
                    with self._lock:
                        def later():
                            self._plans.clear()
                        pool.submit(later)
        """
        assert len(run("x.py", bad, "lock-guard")) == 1

    def test_wrong_lock_does_not_guard(self):
        bad = """
            class KernelPlan:
                def peek(self):
                    with self._other_lock:
                        return self._gather_cache.get(True)
        """
        assert len(run("x.py", bad, "lock-guard")) == 1

    def test_unregistered_class_ignored(self):
        good = """
            class Unrelated:
                def peek(self):
                    return self._plans
        """
        assert run("x.py", good, "lock-guard") == []


# --------------------------------------------------------------------- #
# shm-lifecycle
# --------------------------------------------------------------------- #

class TestShmLifecycle:
    def test_unpaired_create_fires(self):
        bad = """
            def make(nbytes):
                return SharedMemory(create=True, size=nbytes)
        """
        assert len(run("x.py", bad, "shm-lifecycle")) == 1

    def test_finalize_in_same_scope_passes(self):
        good = """
            def make(owner, nbytes):
                seg = SharedMemory(create=True, size=nbytes)
                weakref.finalize(owner, seg.unlink)
                return seg
        """
        assert run("x.py", good, "shm-lifecycle") == []

    def test_module_level_atexit_sweep_passes(self):
        good = """
            @atexit.register
            def _cleanup():
                sweep()

            def make(nbytes):
                return SharedMemory(create=True, size=nbytes)
        """
        assert run("x.py", good, "shm-lifecycle") == []

    def test_attach_without_create_ignored(self):
        good = """
            def attach(name):
                return SharedMemory(name=name)
        """
        assert run("x.py", good, "shm-lifecycle") == []


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #

HOT = "src/repro/core/hot.py"


class TestDeterminism:
    def test_wall_clock_fires_in_scope(self):
        bad = """
            def stamp():
                return time.time()
        """
        assert len(run(HOT, bad, "determinism")) == 1

    def test_monotonic_clock_passes(self):
        good = """
            def stamp(clock=time.monotonic):
                return clock() + time.perf_counter()
        """
        assert run(HOT, good, "determinism") == []

    def test_global_random_fires(self):
        bad = """
            def jitter():
                return random.random()
        """
        assert len(run(HOT, bad, "determinism")) == 1

    def test_random_import_fires(self):
        bad = """
            from random import shuffle
        """
        assert len(run(HOT, bad, "determinism")) == 1

    def test_unseeded_np_rng_fires_seeded_passes(self):
        bad = """
            def noise(shape):
                return np.random.rand(*shape) + np.random.default_rng()
        """
        assert len(run(HOT, bad, "determinism")) == 2
        good = """
            def noise(shape, seed):
                return np.random.default_rng(seed).normal(size=shape)
        """
        assert run(HOT, good, "determinism") == []

    def test_out_of_scope_path_ignored(self):
        source = """
            def stamp():
                return time.time()
        """
        assert run("src/repro/workloads/gen.py", source, "determinism") == []


# --------------------------------------------------------------------- #
# no-swallowed-futures
# --------------------------------------------------------------------- #

class TestNoSwallowedFutures:
    def test_dropped_submit_expression_fires(self):
        bad = """
            def go(pool, work):
                pool.submit(work)
        """
        assert len(run("executor.py", bad, "no-swallowed-futures")) == 1

    def test_unconsumed_binding_fires(self):
        bad = """
            def go(pool, work):
                fut = pool.submit(work)
        """
        assert len(run("runner.py", bad, "no-swallowed-futures")) == 1

    def test_consumed_futures_pass(self):
        good = """
            def go(pool, spans):
                futures = [pool.submit(run, s) for s in spans]
                for future in futures:
                    future.result()

            def ship(pool, work):
                fut = pool.submit(work)
                return fut
        """
        assert run("executor.py", good, "no-swallowed-futures") == []

    def test_explicit_discard_passes(self):
        good = """
            def fire_and_forget(pool, work):
                _ = pool.submit(work)
        """
        assert run("executor.py", good, "no-swallowed-futures") == []

    def test_other_files_ignored(self):
        source = """
            def go(pool, work):
                pool.submit(work)
        """
        assert run("engine.py", source, "no-swallowed-futures") == []
