"""Runtime sanitizer tests: lock-order graph, patched locks, plan canary.

Everything here uses *isolated* ``LockOrderGraph`` / ``PlanCanaryRegistry``
instances (never the globals), so deliberately-provoked inversions and
canary trips cannot pollute the session-wide gate in ``conftest.py`` when
the suite itself runs under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    LockOrderGraph,
    LockOrderInversionError,
    PlanCanaryRegistry,
    PlanMutationError,
    _SanitizedLock,
)
from repro.core.config import TMACConfig
from repro.core.executor import get_executor
from repro.core.plan import build_plan
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestLockOrderGraph:
    def test_consistent_order_has_no_inversion(self):
        graph = LockOrderGraph()
        graph.record("a.py:1", "b.py:2")
        graph.record("b.py:2", "c.py:3")
        graph.record("a.py:1", "c.py:3")
        assert graph.inversions() == []
        assert graph.edge_count() == 3

    def test_two_lock_inversion_detected(self):
        graph = LockOrderGraph()
        graph.record("a.py:1", "b.py:2")
        graph.record("b.py:2", "a.py:1")
        (inv,) = graph.inversions()
        held, new, path = inv
        assert (held, new) == ("b.py:2", "a.py:1")

    def test_transitive_inversion_detected(self):
        # a -> b, b -> c, then c -> a closes a 3-cycle.
        graph = LockOrderGraph()
        graph.record("a", "b")
        graph.record("b", "c")
        graph.record("c", "a")
        assert len(graph.inversions()) == 1

    def test_inversion_reported_once_per_edge_pair(self):
        graph = LockOrderGraph()
        graph.record("a", "b")
        graph.record("b", "a")
        graph.record("b", "a")  # repeat observation, not a new inversion
        assert len(graph.inversions()) == 1

    def test_same_site_edges_ignored(self):
        graph = LockOrderGraph()
        graph.record("a.py:1", "a.py:1")
        assert graph.edge_count() == 0
        assert graph.inversions() == []

    def test_raise_mode_raises_at_the_closing_edge(self):
        graph = LockOrderGraph(raise_on_inversion=True)
        graph.record("a", "b")
        with pytest.raises(LockOrderInversionError, match="inversion"):
            graph.record("b", "a")

    def test_render_is_stable_and_diffable(self):
        graph = LockOrderGraph()
        graph.record("b", "c")
        graph.record("a", "b")
        text = graph.render()
        assert text.index("a -> b") < text.index("b -> c")
        assert "# inversions: 0" in text

    def test_reset_clears_everything(self):
        graph = LockOrderGraph()
        graph.record("a", "b")
        graph.record("b", "a")
        graph.reset()
        assert graph.edge_count() == 0
        assert graph.inversions() == []


class TestSanitizedLock:
    def test_opposite_acquisition_orders_recorded_as_inversion(self):
        graph = LockOrderGraph()
        lock_a = _SanitizedLock("site-a", graph)
        lock_b = _SanitizedLock("site-b", graph)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        assert len(graph.inversions()) == 1

    def test_trylock_never_contributes_edges(self):
        graph = LockOrderGraph()
        lock_a = _SanitizedLock("site-a", graph)
        lock_b = _SanitizedLock("site-b", graph)
        with lock_a:
            assert lock_b.acquire(blocking=False)
            lock_b.release()
        with lock_b:
            with lock_a:
                pass
        # Only the blocking b->a edge exists; no inversion from the trylock.
        assert graph.edge_count() == 1
        assert graph.inversions() == []

    def test_held_stack_survives_out_of_order_release(self):
        graph = LockOrderGraph()
        lock_a = _SanitizedLock("site-a", graph)
        lock_b = _SanitizedLock("site-b", graph)
        lock_c = _SanitizedLock("site-c", graph)
        lock_a.acquire()
        lock_b.acquire()
        lock_a.release()  # hand-over-hand: a released before b
        lock_c.acquire()  # must record b->c (b is the innermost held)
        lock_c.release()
        lock_b.release()
        assert graph.edge_count() == 2  # a->b and b->c
        assert graph.inversions() == []

    def test_cross_thread_isolation(self):
        # Held stacks are thread-local: another thread's held lock must
        # not fabricate an ordering edge for this thread.  Sequencing
        # uses raw (unpatched) locks, and the thread starts/joins outside
        # the held region, so when the whole suite runs sanitized no
        # fixture edge leaks into the session-wide graph snapshot.
        graph = LockOrderGraph()
        lock_a = _SanitizedLock("site-a", graph)
        lock_b = _SanitizedLock("site-b", graph)
        gate = sanitizer._REAL_LOCK()
        done = sanitizer._REAL_LOCK()
        gate.acquire()
        done.acquire()

        def other():
            gate.acquire()  # wait until the main thread holds lock_a
            with lock_b:
                pass
            done.release()

        thread = threading.Thread(target=other)
        thread.start()
        with lock_a:
            gate.release()
            done.acquire()  # raw lock: no ordering edge recorded
        thread.join()
        assert graph.edge_count() == 0

    def test_behaves_like_a_lock(self):
        lock = _SanitizedLock("site", LockOrderGraph())
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert not lock.acquire(blocking=False)
        assert not lock.locked()

    def test_install_is_inert_when_disabled(self, monkeypatch):
        monkeypatch.setattr(sanitizer, "_ENABLED", False)
        monkeypatch.setattr(sanitizer, "_installed", False)
        real = threading.Lock
        try:
            assert sanitizer.install() is False
            assert threading.Lock is real
        finally:
            monkeypatch.setattr(sanitizer, "_installed", False)


class _FakeWeights:
    def __init__(self, rng):
        self.scales = rng.normal(size=(8, 4)).astype(np.float32)
        self.zeros = rng.normal(size=(8, 4)).astype(np.float32)
        self.index_planes = [rng.integers(0, 16, size=(8, 16)).astype("u1")]
        self.packed_planes = [rng.integers(0, 255, size=(8, 8)).astype("u1")]


class _FakePlan:
    def __init__(self, seed=0):
        self.weights = _FakeWeights(np.random.default_rng(seed))
        self._gather_cache = {}


class TestPlanCanary:
    def test_clean_dispatch_passes(self):
        registry = PlanCanaryRegistry()
        plan = _FakePlan()
        with registry.canary(plan):
            _ = plan.weights.scales.sum()
        assert registry.trips == 0
        assert registry.tracked() == 1

    def test_mutation_trips(self):
        registry = PlanCanaryRegistry()
        plan = _FakePlan()
        with pytest.raises(PlanMutationError, match="weights.scales"):
            with registry.canary(plan):
                plan.weights.scales[0, 0] += 1.0
        assert registry.trips == 1

    def test_trip_survives_an_in_dispatch_exception(self):
        # The canary checks in a finally block: a dispatch that raises
        # AND corrupted the plan must still surface the corruption.
        registry = PlanCanaryRegistry()
        plan = _FakePlan()
        with pytest.raises(PlanMutationError):
            with registry.canary(plan):
                plan.weights.zeros[0, 0] = 42.0
                raise RuntimeError("worker died")
        assert registry.trips == 1

    def test_lazily_built_artifacts_extend_baseline(self):
        registry = PlanCanaryRegistry()
        plan = _FakePlan()
        with registry.canary(plan):
            # The gather tables appear mid-dispatch (lazy build): that is
            # publication, not mutation.
            class _Tables:
                folded = [np.arange(16, dtype=np.int32)]
                signs = None
                offsets = None

            plan._gather_cache[True] = _Tables()
        assert registry.trips == 0
        # ... but mutating the now-known artifact on the next dispatch trips.
        with pytest.raises(PlanMutationError, match="gather"):
            with registry.canary(plan):
                plan._gather_cache[True].folded[0][0] = 99
        assert registry.trips == 1

    def test_real_plan_mutation_trips_through_executor(self):
        """End-to-end: a real KernelPlan, a real executor dispatch, and a
        deliberate artifact mutation mid-flight must trip the canary."""
        registry = PlanCanaryRegistry()
        qw = quantize_weights(gaussian_weights(32, 128, seed=10), bits=2,
                              group_size=32)
        cfg = TMACConfig(bits=2)
        plan = build_plan(qw, cfg)
        executor = get_executor(cfg.executor)
        activation = gaussian_activation(2, 128, seed=11)
        table = plan.precompute(activation, cfg)

        with registry.canary(plan):
            executor.matmul_with_table(plan, table, cfg, activation)
        assert registry.trips == 0

        scales = plan.weights.scales
        scales.setflags(write=True)
        try:
            with pytest.raises(PlanMutationError, match="weights.scales"):
                with registry.canary(plan):
                    executor.matmul_with_table(plan, table, cfg, activation)
                    scales[0, 0] += 0.5
        finally:
            scales[0, 0] -= 0.5
            scales.setflags(write=False)
        assert registry.trips == 1

    def test_frozen_plans_make_accidental_mutation_impossible(self):
        qw = quantize_weights(gaussian_weights(32, 128, seed=12), bits=2,
                              group_size=32)
        plan = build_plan(qw, TMACConfig(bits=2))
        with pytest.raises(ValueError):
            plan.weights.scales[0, 0] = 1.0

    def test_stats_shape(self):
        report = sanitizer.stats()
        for key in ("enabled", "lock_order_edges", "lock_order_inversions",
                    "canary_trips", "plans_tracked"):
            assert key in report
