"""Suppressions, JSON report, CLI behaviour — and the tree-is-clean gate."""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.analysis.findings import parse_suppressions
from repro.analysis.lint import iter_python_files, lint_source, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

BAD_LOCK = textwrap.dedent("""
    class PlanCache:
        def peek(self, key):
            return self._plans.get(key)
""")


class TestSuppressions:
    def test_trailing_directive_suppresses_own_line(self):
        src = BAD_LOCK.replace(
            "return self._plans.get(key)",
            "return self._plans.get(key)  "
            "# repro-lint: disable=lock-guard -- benign snapshot",
        )
        findings = lint_source("x.py", src)
        assert [f.rule for f in findings if not f.suppressed] == []
        sup = [f for f in findings if f.suppressed]
        assert len(sup) == 1
        assert sup[0].suppress_reason == "benign snapshot"

    def test_standalone_directive_guards_next_line(self):
        src = BAD_LOCK.replace(
            "        return self._plans.get(key)",
            "        # repro-lint: disable=lock-guard -- benign snapshot\n"
            "        return self._plans.get(key)",
        )
        assert [f for f in lint_source("x.py", src) if not f.suppressed] == []

    def test_file_level_directive(self):
        src = ("# repro-lint: disable-file=lock-guard -- fixture file\n"
               + BAD_LOCK)
        assert [f for f in lint_source("x.py", src) if not f.suppressed] == []

    def test_reason_is_mandatory(self):
        src = BAD_LOCK.replace(
            "return self._plans.get(key)",
            "return self._plans.get(key)  # repro-lint: disable=lock-guard",
        )
        findings = lint_source("x.py", src)
        active = {f.rule for f in findings if not f.suppressed}
        # The undocumented directive does NOT suppress, and is itself
        # reported — both the original finding and bad-suppression stay.
        assert active == {"lock-guard", "bad-suppression"}

    def test_multi_rule_directive(self):
        sup = parse_suppressions(
            "# repro-lint: disable=lock-guard,frozen-plan -- fixture\n")
        assert sup.lookup("lock-guard", 2) == "fixture"
        assert sup.lookup("frozen-plan", 2) == "fixture"
        assert sup.lookup("determinism", 2) is None


class TestCli:
    def test_bad_tree_exits_nonzero_and_writes_json(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(BAD_LOCK)
        report_path = tmp_path / "report.json"
        rc = main([str(tmp_path), "--json", str(report_path)])
        assert rc == 1
        report = json.loads(report_path.read_text())
        assert report["tool"] == "repro-lint"
        assert report["files_checked"] == 1
        assert report["summary"]["findings"] == 1
        assert report["summary"]["by_rule"] == {"lock-guard": 1}
        (finding,) = report["findings"]
        assert finding["rule"] == "lock-guard"
        assert finding["symbol"] == "PlanCache._plans"
        out = capsys.readouterr().out
        assert "lock-guard" in out

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--quiet"]) == 0

    def test_rule_selection(self, tmp_path):
        (tmp_path / "mod.py").write_text(BAD_LOCK)
        assert main([str(tmp_path), "--rules", "determinism",
                     "--quiet"]) == 0
        assert main([str(tmp_path), "--rules", "lock-guard",
                     "--quiet"]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path), "--rules", "no-such-rule"])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("frozen-plan", "lock-guard", "shm-lifecycle",
                     "determinism", "no-swallowed-futures"):
            assert rule in out

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path), "--quiet"]) == 1

    def test_iter_python_files_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.txt"):
            (tmp_path / name).write_text("")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "z.py").write_text("")
        files = [os.path.basename(p)
                 for p in iter_python_files([str(tmp_path)])]
        assert files == ["a.py", "b.py", "z.py"]


class TestTreeIsClean:
    def test_src_tree_has_no_active_findings(self):
        """The acceptance gate: the shipped tree lints clean."""
        assert main([os.path.join(REPO_ROOT, "src"), "--quiet"]) == 0
