"""Unit tests for the llama.cpp-style dequantization kernel."""

import numpy as np
import pytest

from repro.baselines.dequant_gemm import DequantGEMM, dequant_gemm, dequant_gemv
from repro.baselines.reference import quantized_reference_gemm
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestDequantGEMM:
    def test_close_to_dequantized_reference(self, small_qweight,
                                            small_activation):
        out = DequantGEMM(small_qweight).matmul(small_activation)
        ref = quantized_reference_gemm(small_activation, small_qweight)
        nmse = np.mean((out - ref) ** 2) / np.mean(ref ** 2)
        # Only the int8 activation quantization separates the two.
        assert nmse < 5e-4

    def test_without_activation_quantization_is_exact(self, small_qweight,
                                                       small_activation):
        kernel = DequantGEMM(small_qweight, quantize_activations=False)
        out = kernel.matmul(small_activation)
        ref = quantized_reference_gemm(small_activation, small_qweight)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_all_bit_widths(self, bits):
        w = gaussian_weights(24, 128, seed=bits)
        a = gaussian_activation(2, 128, seed=bits + 1)
        qw = quantize_weights(w, bits=bits, group_size=32)
        out = DequantGEMM(qw).matmul(a)
        ref = quantized_reference_gemm(a, qw)
        nmse = np.mean((out - ref) ** 2) / (np.mean(ref ** 2) + 1e-12)
        assert nmse < 1e-3

    def test_1d_round_trip(self, small_qweight):
        a = gaussian_activation(1, 256, seed=5)[0]
        out = DequantGEMM(small_qweight).matmul(a)
        assert out.shape == (48,)

    def test_wrong_k_rejected(self, small_qweight):
        with pytest.raises(ValueError):
            DequantGEMM(small_qweight).matmul(np.zeros((1, 128)))

    def test_block_size_must_nest(self, small_qweight):
        with pytest.raises(ValueError):
            DequantGEMM(small_qweight, act_block_size=48)

    def test_shape_properties(self, small_qweight):
        kernel = DequantGEMM(small_qweight)
        assert kernel.out_features == 48
        assert kernel.in_features == 256


class TestFunctionalAPI:
    def test_dequant_gemm_from_raw_weights(self):
        w = gaussian_weights(16, 64, seed=0)
        a = gaussian_activation(2, 64, seed=1)
        out = dequant_gemm(a, w, bits=4, group_size=32)
        assert out.shape == (2, 16)

    def test_dequant_gemv_rejects_multirow(self):
        w = gaussian_weights(16, 64, seed=2)
        a = gaussian_activation(3, 64, seed=3)
        with pytest.raises(ValueError):
            dequant_gemv(a, w)

    def test_tmac_and_dequant_agree_on_same_weights(self):
        """The two kernels consume identical QuantizedWeight objects and
        produce nearly identical results (Table 3's llama.cpp vs T-MAC)."""
        from repro.core.gemm import tmac_gemm

        w = gaussian_weights(32, 128, seed=4)
        a = gaussian_activation(1, 128, seed=5)
        qw = quantize_weights(w, bits=4, group_size=32)
        out_dequant = dequant_gemm(a, qw)
        out_tmac = tmac_gemm(a, qw)
        diff = np.mean((out_dequant - out_tmac) ** 2) / np.mean(out_tmac ** 2)
        assert diff < 1e-3
