"""Unit tests for the reference GEMM baselines."""

import numpy as np
import pytest

from repro.baselines.reference import (
    quantized_reference_gemm,
    reference_gemm,
    reference_gemv,
)
from repro.quant.uniform import dequantize_weights, quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestReferenceGemm:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((3, 32)).astype(np.float32)
        w = rng.standard_normal((8, 32)).astype(np.float32)
        np.testing.assert_allclose(reference_gemm(a, w), a @ w.T, rtol=1e-5)

    def test_gemv_handles_1d(self, rng):
        a = rng.standard_normal(32).astype(np.float32)
        w = rng.standard_normal((8, 32)).astype(np.float32)
        out = reference_gemv(a, w)
        assert out.shape == (8,)
        np.testing.assert_allclose(out, w @ a, rtol=1e-5)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            reference_gemm(np.zeros((2, 16)), np.zeros((4, 32)))


class TestQuantizedReference:
    def test_equals_dequantize_then_matmul(self):
        w = gaussian_weights(16, 64, seed=0)
        a = gaussian_activation(2, 64, seed=1)
        qw = quantize_weights(w, bits=4, group_size=32)
        expected = a @ dequantize_weights(qw).T
        np.testing.assert_allclose(quantized_reference_gemm(a, qw), expected,
                                   rtol=1e-5, atol=1e-5)

    def test_error_vs_fp_shrinks_with_bits(self):
        w = gaussian_weights(32, 256, seed=2)
        a = gaussian_activation(2, 256, seed=3)
        fp = reference_gemm(a, w)
        errors = []
        for bits in (1, 2, 4):
            qw = quantize_weights(w, bits=bits, group_size=64)
            out = quantized_reference_gemm(a, qw)
            errors.append(float(np.mean((out - fp) ** 2)))
        assert errors[0] > errors[1] > errors[2]
