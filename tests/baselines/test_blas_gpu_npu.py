"""Unit tests for the BLAS, GPU and NPU baselines."""

import pytest

from repro.baselines.blas_gemm import blas_gemm_latency
from repro.baselines.gpu import (
    GPU_LOW_BIT_EFFICIENCY,
    gpu_gemm_latency,
    gpu_gemv_latency,
    gpu_token_latency,
)
from repro.baselines.npu import npu_tokens_per_sec
from repro.core.config import TMACConfig
from repro.hardware import (
    CostModel,
    JETSON_AGX_ORIN,
    M2_ULTRA,
    ONEPLUS_12,
    RASPBERRY_PI_5,
    SURFACE_LAPTOP_7,
)


class TestBlasBaseline:
    def test_scales_with_sequence_length(self):
        short = blas_gemm_latency(M2_ULTRA, 16, 4096, 4096, 4)
        long = blas_gemm_latency(M2_ULTRA, 256, 4096, 4096, 4)
        assert long.seconds > short.seconds

    def test_amx_makes_m2_blas_competitive_for_gemm(self):
        """On M2-Ultra the BLAS path beats T-MAC for 4-bit mpGEMM (Fig. 7)."""
        blas = blas_gemm_latency(M2_ULTRA, 256, 4096, 4096, 4)
        tmac = CostModel(M2_ULTRA).tmac_gemm_latency(
            256, 4096, 4096, TMACConfig(bits=4))
        assert blas.seconds < tmac.seconds

    def test_weak_devices_lose_to_tmac_at_low_bits(self):
        """On Raspberry Pi T-MAC wins the 2-bit mpGEMM (Fig. 7)."""
        blas = blas_gemm_latency(RASPBERRY_PI_5, 256, 4096, 4096, 2)
        tmac = CostModel(RASPBERRY_PI_5).tmac_gemm_latency(
            256, 4096, 4096, TMACConfig(bits=2))
        assert tmac.seconds < blas.seconds

    def test_dequantization_traffic_included(self):
        """The BLAS path must pay for writing/reading the fp16 copy."""
        lat = blas_gemm_latency(RASPBERRY_PI_5, 1, 4096, 4096, 4)
        assert lat.memory_seconds > 0


class TestGpuBaseline:
    def test_requires_gpu(self):
        with pytest.raises(ValueError):
            gpu_gemv_latency(M2_ULTRA, 4096, 4096, 4)

    def test_launch_overhead_dominates_small_kernels(self):
        lat = gpu_gemv_latency(JETSON_AGX_ORIN, 128, 128, 4)
        overhead = JETSON_AGX_ORIN.gpu.kernel_launch_overhead_us * 1e-6
        assert lat.seconds >= overhead

    def test_low_bits_do_not_speed_up_gpu(self):
        """llama.cpp GPU kernels get no benefit below 4 bits (Fig. 11)."""
        lat4 = gpu_gemv_latency(JETSON_AGX_ORIN, 4096, 11008, 4)
        lat2 = gpu_gemv_latency(JETSON_AGX_ORIN, 4096, 11008, 2)
        assert lat2.seconds > 0.8 * lat4.seconds

    def test_efficiency_table_is_monotonic(self):
        assert GPU_LOW_BIT_EFFICIENCY[4] >= GPU_LOW_BIT_EFFICIENCY[3] >= \
            GPU_LOW_BIT_EFFICIENCY[2] >= GPU_LOW_BIT_EFFICIENCY[1]

    def test_tmac_cpu_beats_gpu_at_1bit_on_orin(self):
        """Figure 11: T-MAC (CPU) outperforms the GPU for W1 on all shapes."""
        model = CostModel(JETSON_AGX_ORIN)
        for m, k in ((4096, 4096), (11008, 4096), (4096, 11008)):
            cpu = model.tmac_gemv_latency(m, k, TMACConfig(bits=1))
            gpu = gpu_gemv_latency(JETSON_AGX_ORIN, m, k, 1)
            assert cpu.seconds < gpu.seconds

    def test_gpu_wins_large_4bit_gemm(self):
        """The GPU's parallel throughput wins back at higher bits / GEMM."""
        gpu = gpu_gemm_latency(JETSON_AGX_ORIN, 256, 11008, 4096, 4)
        cpu = CostModel(JETSON_AGX_ORIN).tmac_gemm_latency(
            256, 11008, 4096, TMACConfig(bits=4))
        assert gpu.seconds < cpu.seconds

    def test_token_latency_positive_and_bit_aware(self):
        lat4 = gpu_token_latency(JETSON_AGX_ORIN, 3.8e9, 100, 1.3e10, bits=4)
        lat2 = gpu_token_latency(JETSON_AGX_ORIN, 1.9e9, 100, 1.3e10, bits=2)
        assert lat4 > 0 and lat2 > 0


class TestNpuBaseline:
    def test_published_4bit_numbers(self):
        assert npu_tokens_per_sec(SURFACE_LAPTOP_7, "Llama-2-7B-4bit") == \
            pytest.approx(10.40)
        assert npu_tokens_per_sec(ONEPLUS_12, "Llama-2-7B-4bit") == \
            pytest.approx(11.30)

    def test_2bit_deduced_from_4bit(self):
        """The paper marks NPU 2-bit entries with '*': same as 4-bit."""
        assert npu_tokens_per_sec(SURFACE_LAPTOP_7, "Llama-2-7B-2bit",
                                  bits=2) == pytest.approx(10.40)

    def test_no_npu_returns_none(self):
        assert npu_tokens_per_sec(JETSON_AGX_ORIN, "Llama-2-7B-4bit") is None

    def test_unknown_model_returns_none(self):
        assert npu_tokens_per_sec(SURFACE_LAPTOP_7, "Mistral-7B-4bit") is None
