"""EngineRunner: thread-shipped ops, step-failure containment, reaping."""

import time

import pytest

from repro.backends import get_backend
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine
from repro.server.runner import EngineRunner


def make_model():
    arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=64)
    weights = generate_random_weights(arch, seed=3)
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestRunnerBasics:
    def test_submit_and_drain(self):
        with EngineRunner(ServingEngine(make_model())) as runner:
            events = []
            sid = runner.submit(prompt_tokens=[1, 2], max_new_tokens=4,
                                stream_hook=events.append).result(5)
            assert wait_until(lambda: events and events[-1].finished)
            tokens = [e.token for e in events if not e.finished]
            assert len(tokens) == 4
            result = runner.reap(sid).result(5)
            assert result.generated_tokens == tokens
            assert runner.call(lambda e: len(e.sessions)).result(5) == 0

    def test_call_after_stop_fails_fast(self):
        runner = EngineRunner(ServingEngine(make_model()))
        runner.start()
        runner.stop()
        with pytest.raises(RuntimeError):
            runner.call(lambda e: e.num_waiting).result(5)

    def test_reap_unknown_session_is_none(self):
        with EngineRunner(ServingEngine(make_model())) as runner:
            assert runner.reap(10 ** 9).result(5) is None

    def test_call_before_start_fails_fast(self):
        """A never-started runner must not hang callers forever."""
        runner = EngineRunner(ServingEngine(make_model()))
        with pytest.raises(RuntimeError):
            runner.call(lambda e: e.num_waiting)

    def test_queue_depth_ignores_non_submit_commands(self):
        """Stats/reap traffic must not trip 429 admission control."""
        with EngineRunner(ServingEngine(make_model())) as runner:
            futures = [runner.stats() for _ in range(10)]
            assert runner.queue_depth == 0
            for future in futures:
                future.result(5)


class TestStepFailureContainment:
    def test_step_exception_cancels_sessions_and_loop_survives(self):
        engine = ServingEngine(make_model())

        def broken_step():
            raise RuntimeError("scheduler bug")

        engine.step = broken_step
        with EngineRunner(engine) as runner:
            events = []
            runner.submit(prompt_tokens=[1, 2], max_new_tokens=8,
                          stream_hook=events.append).result(5)
            # The failing step must not kill the thread, and the blocked
            # consumer must still get its terminal event (via cancel).
            assert wait_until(lambda: events and events[-1].finished)
            assert events[-1].finish_reason == "cancelled"
            assert runner.alive
            assert runner.step_failures >= 1
            assert isinstance(runner.last_step_error, RuntimeError)
            assert runner.stats().result(5)["step_failures"] >= 1
            # Commands keep flowing after the failure.
            assert runner.call(lambda e: len(e.sessions)).result(5) == 0


class TestPendingSubmitAccounting:
    def test_concurrent_submits_never_skew_queue_depth(self):
        """Regression (found by repro_lint): ``_pending_submits`` was
        incremented on caller threads and decremented on the runner
        thread with no lock — lost updates would skew admission control's
        queue depth forever.  Hammer submits from many threads and assert
        the counter returns exactly to zero."""
        import threading

        with EngineRunner(ServingEngine(make_model())) as runner:
            futures = []
            futures_lock = threading.Lock()

            def submit_some(seed):
                for i in range(10):
                    future = runner.submit(prompt_tokens=[1 + seed, 2 + i],
                                           max_new_tokens=1)
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=submit_some, args=(t,))
                       for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sids = [future.result(5) for future in futures]
            assert len(sids) == 40
            # Every shipped submit has executed; the pending counter must
            # be exactly zero (queue_depth only adds engine waiters).
            assert wait_until(lambda: runner._pending_submits == 0)
            assert runner._pending_submits == 0
