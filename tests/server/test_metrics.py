"""Prometheus-text metrics primitives and the gateway metric set."""

import threading

import pytest

from repro.server.metrics import (
    Counter,
    Gauge,
    GatewayMetrics,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_render(self):
        counter = Counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2)
        lines = counter.render()
        assert "# HELP requests_total Requests." in lines
        assert "# TYPE requests_total counter" in lines
        assert "requests_total 3" in lines

    def test_labels(self):
        counter = Counter("http_total", "By path/status.",
                          label_names=("path", "status"))
        counter.inc(path="/healthz", status="200")
        counter.inc(path="/healthz", status="200")
        counter.inc(path="/metrics", status="200")
        assert counter.value(path="/healthz", status="200") == 2
        rendered = "\n".join(counter.render())
        assert 'http_total{path="/healthz",status="200"} 2' in rendered
        assert 'http_total{path="/metrics",status="200"} 1' in rendered

    def test_wrong_labels_rejected(self):
        counter = Counter("x_total", "X.", label_names=("path",))
        with pytest.raises(ValueError):
            counter.inc(status="200")

    def test_set_total_mirrors_external_counter(self):
        counter = Counter("preemptions_total", "Engine counter.")
        counter.set_total(7)
        counter.set_total(9)  # scrape-time mirror, no accumulation
        assert counter.value() == 9

    def test_unlabelled_counter_renders_zero(self):
        assert "empty_total 0" in Counter("empty_total", "E.").render()


class TestGauge:
    def test_set_and_render(self):
        gauge = Gauge("queue_depth", "Waiting.")
        gauge.set(5)
        assert "queue_depth 5" in gauge.render()
        gauge.set(2.5)
        assert "queue_depth 2.5" in gauge.render()


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = Histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1, 1))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        rendered = "\n".join(hist.render())
        assert 'lat_seconds_bucket{le="0.01"} 1' in rendered
        assert 'lat_seconds_bucket{le="0.1"} 2' in rendered
        assert 'lat_seconds_bucket{le="1"} 3' in rendered
        assert 'lat_seconds_bucket{le="+Inf"} 4' in rendered
        assert "lat_seconds_count 4" in rendered
        assert hist.count == 4

    def test_quantile_estimate(self):
        hist = Histogram("q_seconds", "Q.", buckets=(0.01, 0.1, 1))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(1.0) == 1
        assert hist.quantile(0.0) == 0.01
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("e_s", "E.", buckets=(1,)).quantile(0.5) == 0.0

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("b_s", "B.", buckets=())

    def test_thread_safety_smoke(self):
        hist = Histogram("t_s", "T.", buckets=(0.5,))

        def observe():
            for _ in range(1000):
                hist.observe(0.1)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 4000


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("a", "A.")
        with pytest.raises(ValueError):
            registry.counter("a", "Again.")

    def test_render_concatenates_in_order(self):
        registry = MetricsRegistry()
        registry.gauge("first", "1.").set(1)
        registry.counter("second_total", "2.").inc()
        text = registry.render()
        assert text.index("first") < text.index("second_total")
        assert text.endswith("\n")


class TestGatewayMetrics:
    def test_engine_snapshot_mirroring(self):
        metrics = GatewayMetrics("gw")
        stats = {
            "preemptions": 3,
            "capacity_failures": 1,
            "deadline_expirations": 2,
            "global_plan_cache_hits": 30,
            "global_plan_cache_misses": 10,
            "prefix_hit_rate": 0.5,
            "kv_free_blocks": 12,
        }
        metrics.observe_engine(stats, queue_depth=4)
        text = metrics.render()
        assert "gw_queue_depth 4" in text
        assert "gw_preemptions_total 3" in text
        assert "gw_capacity_failures_total 1" in text
        assert "gw_deadline_expirations_total 2" in text
        assert "gw_plan_cache_hit_rate 0.75" in text
        assert "gw_prefix_cache_hit_rate 0.5" in text
        assert "gw_kv_free_pages 12" in text

    def test_timing_samples_feed_histograms(self):
        metrics = GatewayMetrics()
        metrics.observe_timing({"ttft_s": [0.004, 0.02],
                                "decode_step_s": [0.002]})
        assert metrics.ttft.count == 2
        assert metrics.token_latency.count == 1
        text = metrics.render()
        assert "gateway_ttft_seconds_count 2" in text
        assert "gateway_token_latency_seconds_count 1" in text

    def test_unpaged_engine_renders_sentinels(self):
        metrics = GatewayMetrics()
        metrics.observe_engine({"preemptions": 0}, queue_depth=0)
        text = metrics.render()
        assert "gateway_kv_free_pages -1" in text
        assert "gateway_prefix_cache_hit_rate -1" in text
