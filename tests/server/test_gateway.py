"""End-to-end HTTP tests of the serving gateway.

The acceptance bar of the gateway subsystem, exercised over real sockets
with the stdlib asyncio client:

* N concurrent streaming clients each receive tokens incrementally (the
  first chunk arrives while the engine still has work), and each
  request's concatenated stream is token-identical to a sequential
  temperature-0 :class:`repro.llm.inference.Generator` run — with a
  paged engine, chunked prefill and a shared prompt prefix in the mix.
* A mid-stream client disconnect cancels the session and returns the KV
  pool's free-page count to its baseline.
* Queue overflow answers 429 with a ``Retry-After`` header and the
  engine loop keeps serving afterwards.
"""

import asyncio
import contextlib

import pytest

from repro.backends import get_backend
from repro.core.config import GatewayConfig
from repro.hardware.memory import kv_block_bytes
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.server import serve_model
from repro.server.client import (
    GatewayError,
    http_get,
    post_completion,
    stream_completion,
)

PAGE = 16


def make_arch():
    return tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=256)


@pytest.fixture(scope="module")
def arch():
    return make_arch()


@pytest.fixture(scope="module")
def shared_weights(arch):
    return generate_random_weights(arch, seed=3)


@pytest.fixture()
def model(arch, shared_weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=shared_weights)


def page_budget(arch, pages):
    return pages * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                  arch.head_dim, PAGE)


def sequential_tokens(arch, weights, prompt, **kwargs):
    model = TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)
    generator = Generator(model, seed=kwargs.pop("seed", 0))
    return generator.generate(prompt, **kwargs).generated_tokens


@contextlib.asynccontextmanager
async def gateway_stack(model, config=None, **engine_kwargs):
    gateway = serve_model(model, config or GatewayConfig(port=0),
                          **engine_kwargs)
    gateway.runner.start()
    host, port = await gateway.start()
    try:
        yield gateway, host, port
    finally:
        await gateway.stop()
        gateway.runner.stop()


def engine_probe(gateway, fn):
    """Run ``fn(engine)`` on the engine thread; return an awaitable."""
    return asyncio.wrap_future(gateway.runner.call(fn))


class TestEndpoints:
    def test_healthz_metrics_and_routing(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                status, _, body = await http_get(host, port, "/healthz")
                assert status == 200
                assert b'"status": "ok"' in body
                status, headers, body = await http_get(host, port,
                                                       "/metrics")
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                for name in (b"gateway_ttft_seconds_bucket",
                             b"gateway_token_latency_seconds_bucket",
                             b"gateway_queue_depth",
                             b"gateway_active_sessions",
                             b"gateway_preemptions_total",
                             b"gateway_capacity_failures_total",
                             b"gateway_plan_cache_hit_rate",
                             b"gateway_prefix_cache_hit_rate"):
                    assert name in body, name
                status, _, _ = await http_get(host, port, "/nope")
                assert status == 404
                status, _, _ = await http_get(host, port,
                                              "/v1/completions")
                assert status == 405
                # Unmatched paths must not mint per-path metric series.
                assert gateway.metrics.http_requests.value(
                    path="other", status="404") == 1

        asyncio.run(scenario())

    def test_negative_content_length_is_400(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"POST /v1/completions HTTP/1.1\r\n"
                             b"Content-Length: -1\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                assert b"400" in status_line

        asyncio.run(scenario())

    def test_completed_sessions_are_reaped(self, model):
        """A long-running gateway must not accumulate finished sessions."""
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                for i in range(3):
                    await post_completion(
                        host, port, {"prompt": [1 + i, 2],
                                     "max_tokens": 2})
                stream = await stream_completion(
                    host, port, {"prompt": [9, 9], "max_tokens": 2})
                async for _ in stream:
                    pass
                # The reap is queued when the handler unwinds, which can
                # land just after the client sees [DONE]: poll briefly.
                for _ in range(100):
                    remaining = await engine_probe(
                        gateway, lambda e: len(e.sessions))
                    if remaining == 0:
                        break
                    await asyncio.sleep(0.01)
                assert remaining == 0
                assert gateway.lifecycle.in_flight == 0

        asyncio.run(scenario())

    def test_validation_errors_return_400(self, model, arch):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                for payload in (
                    {},                                   # missing prompt
                    {"prompt": []},                       # empty prompt
                    {"prompt": [1], "temprature": 1.0},   # unknown field
                    {"prompt": [1], "temperature": -1},   # engine-side
                    {"prompt": [arch.vocab_size + 5]},    # out of vocab
                ):
                    with pytest.raises(GatewayError) as excinfo:
                        await post_completion(host, port, payload)
                    assert excinfo.value.status == 400
                # The engine survived all of it.
                response = await post_completion(
                    host, port, {"prompt": [1, 2], "max_tokens": 2})
                assert len(response["choices"][0]["tokens"]) == 2

        asyncio.run(scenario())


class TestStreaming:
    def test_first_chunk_arrives_before_generation_completes(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                stream = await stream_completion(
                    host, port, {"prompt": [1, 5, 9], "max_tokens": 64})
                first = await stream.__anext__()
                assert first["choices"][0]["token"] is not None
                # 64 decode steps take far longer than one local
                # round-trip: the engine must still be generating.
                still_working = await engine_probe(
                    gateway, lambda e: e.has_work)
                assert still_working, \
                    "first chunk should precede generation completion"
                chunks = [first]
                async for chunk in stream:
                    chunks.append(chunk)
                tokens = [c["choices"][0]["token"] for c in chunks
                          if c["choices"][0]["token"] is not None]
                assert len(tokens) == 64
                assert chunks[-1]["choices"][0]["finish_reason"] == "length"

        asyncio.run(scenario())

    def test_concurrent_streams_token_identical_to_sequential(
            self, model, arch, shared_weights):
        """The acceptance criterion: N concurrent streaming clients over
        a paged engine with chunked prefill and a shared prompt prefix,
        each token-identical to the sequential Generator."""
        prefix = [11, 23, 35, 47] * 6  # 24 shared tokens
        prompts = [prefix + [1 + i, 5 + i] for i in range(6)]

        async def one_client(host, port, prompt):
            stream = await stream_completion(
                host, port, {"prompt": prompt, "max_tokens": 8})
            tokens, finish = [], None
            async for chunk in stream:
                choice = chunk["choices"][0]
                if choice["token"] is not None:
                    tokens.append(choice["token"])
                    assert choice["token_index"] == len(tokens) - 1
                else:
                    finish = choice["finish_reason"]
            return tokens, finish

        async def scenario():
            async with gateway_stack(
                    model, max_batch_size=3,
                    kv_cache_bytes=page_budget(make_arch(), 64),
                    prefill_chunk=16) as (gateway, host, port):
                outcomes = await asyncio.gather(*[
                    one_client(host, port, p) for p in prompts])
            return outcomes

        outcomes = asyncio.run(scenario())
        for prompt, (tokens, finish) in zip(prompts, outcomes):
            assert finish == "length"
            assert tokens == sequential_tokens(
                arch, shared_weights, prompt, max_new_tokens=8)

    def test_nonstream_matches_stream(self, model, arch, shared_weights):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                response = await post_completion(
                    host, port, {"prompt": [2, 7, 4], "max_tokens": 6})
                return response

        response = asyncio.run(scenario())
        choice = response["choices"][0]
        assert choice["tokens"] == sequential_tokens(
            arch, shared_weights, [2, 7, 4], max_new_tokens=6)
        assert choice["finish_reason"] == "length"
        assert response["usage"]["completion_tokens"] == 6


class TestDisconnect:
    def test_mid_stream_disconnect_frees_all_pages(self, model):
        async def scenario():
            async with gateway_stack(
                    model, max_batch_size=2,
                    kv_cache_bytes=page_budget(make_arch(), 64),
                    ) as (gateway, host, port):
                baseline = await engine_probe(
                    gateway, lambda e: e.pool.free_blocks)
                stream = await stream_completion(
                    host, port, {"prompt": [3, 1, 4, 1, 5],
                                 "max_tokens": 200})
                await stream.__anext__()
                await stream.__anext__()  # two tokens in flight
                held = await engine_probe(
                    gateway, lambda e: e.pool.free_blocks)
                assert held < baseline
                await stream.close()  # client walks away mid-stream
                # The gateway notices EOF and cancels on the engine
                # thread; poll until the pool is back to baseline.
                for _ in range(100):
                    if not await engine_probe(gateway,
                                              lambda e: e.has_work):
                        break
                    await asyncio.sleep(0.02)
                free = await engine_probe(
                    gateway, lambda e: e.pool.free_blocks)
                assert free == baseline
                sessions = await engine_probe(
                    gateway, lambda e: len(e.sessions))
                assert sessions == 0
                # And the engine still serves the next request.
                response = await post_completion(
                    host, port, {"prompt": [1, 2], "max_tokens": 2})
                assert len(response["choices"][0]["tokens"]) == 2
                assert gateway.metrics.client_disconnects.value() == 1

        asyncio.run(scenario())


class TestBackpressure:
    def test_queue_overflow_returns_429_and_survives(self, model):
        async def scenario():
            config = GatewayConfig(port=0, max_queue_depth=1)
            async with gateway_stack(
                    model, config,
                    max_batch_size=1) as (gateway, host, port):
                # Fill the single slot with a long streaming request.
                stream = await stream_completion(
                    host, port, {"prompt": [1, 2], "max_tokens": 150})
                await stream.__anext__()  # admitted and decoding
                # Second request: queues (depth 1 = the bound).
                queued_task = asyncio.create_task(post_completion(
                    host, port, {"prompt": [3, 4], "max_tokens": 2}))
                for _ in range(100):
                    depth = gateway.runner.queue_depth
                    if depth >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert depth >= 1
                # Third request: bounced with 429 + Retry-After.
                with pytest.raises(GatewayError) as excinfo:
                    await post_completion(
                        host, port, {"prompt": [5, 6], "max_tokens": 2})
                assert excinfo.value.status == 429
                assert int(excinfo.value.headers["retry-after"]) >= 1
                assert gateway.metrics.backpressure_rejections.value() == 1
                # Free the slot; the queued request completes, proving
                # the engine loop survived the overflow.
                await stream.close()
                queued = await queued_task
                assert len(queued["choices"][0]["tokens"]) == 2
                assert gateway.runner.alive

        asyncio.run(scenario())


class TestLifecycleOverHTTP:
    def test_expired_timeout_reports_deadline(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                # A deadline that predates the first engine step: the
                # request expires before producing anything.
                response = await post_completion(
                    host, port, {"prompt": [1, 2, 3], "max_tokens": 8,
                                 "timeout": 1e-9})
                assert response["choices"][0]["finish_reason"] == "deadline"
                assert response["choices"][0]["tokens"] == []
                # A generous deadline changes nothing.
                response = await post_completion(
                    host, port, {"prompt": [1, 2, 3], "max_tokens": 4,
                                 "timeout": 60})
                assert response["choices"][0]["finish_reason"] == "length"

        asyncio.run(scenario())

    def test_priority_field_accepted_and_forwarded(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                response = await post_completion(
                    host, port, {"prompt": [4, 2], "max_tokens": 2,
                                 "priority": 7})
                assert len(response["choices"][0]["tokens"]) == 2
                reasons = gateway.metrics.completed_requests
                assert reasons.value(reason="length") >= 1

        asyncio.run(scenario())

    def test_ttft_histogram_populated_after_requests(self, model):
        async def scenario():
            async with gateway_stack(model) as (gateway, host, port):
                for i in range(3):
                    await post_completion(
                        host, port, {"prompt": [1 + i, 2],
                                     "max_tokens": 3})
                _, _, body = await http_get(host, port, "/metrics")
                return body.decode()

        body = asyncio.run(scenario())
        for line in body.splitlines():
            if line.startswith("gateway_ttft_seconds_count"):
                assert int(line.split()[-1]) == 3
                break
        else:
            pytest.fail("ttft histogram missing from /metrics")
        for line in body.splitlines():
            if line.startswith("gateway_token_latency_seconds_count"):
                assert int(line.split()[-1]) >= 2
                break
        else:
            pytest.fail("token latency histogram missing from /metrics")
