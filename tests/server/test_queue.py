"""Gateway admission control: bounded queue, retry hints, tickets."""

import pytest

from repro.server.queue import QueueFull, RequestLifecycle, RequestTicket


class FakeClock:
    def __init__(self, start: float = 50.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmission:
    def test_admits_below_bound(self):
        lifecycle = RequestLifecycle(max_queue_depth=2)
        ticket = lifecycle.admit(queue_depth=1, priority=3, timeout_s=2.0)
        assert isinstance(ticket, RequestTicket)
        assert ticket.priority == 3
        assert ticket.timeout_s == 2.0
        assert lifecycle.in_flight == 1
        assert lifecycle.admitted_total == 1

    def test_rejects_at_bound_with_retry_hint(self):
        lifecycle = RequestLifecycle(max_queue_depth=2, retry_after_s=1.5)
        with pytest.raises(QueueFull) as excinfo:
            lifecycle.admit(queue_depth=2)
        assert excinfo.value.retry_after_s >= 1.5
        assert lifecycle.rejected_total == 1
        assert lifecycle.in_flight == 0

    def test_retry_hint_tracks_service_time(self):
        clock = FakeClock()
        lifecycle = RequestLifecycle(max_queue_depth=1, retry_after_s=1.0,
                                     clock=clock)
        ticket = lifecycle.admit(queue_depth=0)
        clock.advance(8.0)
        lifecycle.close(ticket, "length")
        assert lifecycle.mean_service_s == 8.0
        # Slow requests push the hint up (ceil of the EWMA)...
        assert lifecycle.retry_after_hint_s == 8.0
        # ...and the hint never exceeds a minute.
        slow = lifecycle.admit(queue_depth=0)
        clock.advance(1000.0)
        lifecycle.close(slow, "length")
        assert lifecycle.retry_after_hint_s == 60.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RequestLifecycle(max_queue_depth=0)
        with pytest.raises(ValueError):
            RequestLifecycle(max_queue_depth=1, ewma_alpha=0.0)


class TestTicketTimeline:
    def test_ttft_and_tpot(self):
        clock = FakeClock()
        lifecycle = RequestLifecycle(max_queue_depth=4, clock=clock)
        ticket = lifecycle.admit(queue_depth=0)
        assert ticket.ttft_s is None
        assert ticket.tpot_s is None
        clock.advance(0.5)
        lifecycle.note_token(ticket)  # first token fixes TTFT
        clock.advance(0.1)
        lifecycle.note_token(ticket)
        clock.advance(0.1)
        lifecycle.note_token(ticket)
        lifecycle.close(ticket, "length")
        assert ticket.ttft_s == pytest.approx(0.5)
        assert ticket.tokens == 3
        # 2 inter-token gaps over 0.2s.
        assert ticket.tpot_s == pytest.approx(0.1)
        assert ticket.finish_reason == "length"

    def test_close_is_idempotent(self):
        clock = FakeClock()
        lifecycle = RequestLifecycle(max_queue_depth=4, clock=clock)
        ticket = lifecycle.admit(queue_depth=0)
        clock.advance(1.0)
        lifecycle.close(ticket, "length")
        first_mean = lifecycle.mean_service_s
        lifecycle.close(ticket, "disconnect")  # race: already closed
        assert lifecycle.mean_service_s == first_mean
        assert ticket.finish_reason == "length"

    def test_ewma_blends(self):
        clock = FakeClock()
        lifecycle = RequestLifecycle(max_queue_depth=4, clock=clock,
                                     ewma_alpha=0.5)
        for duration in (2.0, 4.0):
            ticket = lifecycle.admit(queue_depth=0)
            clock.advance(duration)
            lifecycle.close(ticket, "length")
        assert lifecycle.mean_service_s == pytest.approx(3.0)
