"""Completion-request parsing, response bodies and SSE framing."""

import json

import pytest

from repro.server.protocol import (
    SSE_DONE,
    CompletionRequest,
    ProtocolError,
    chunk_body,
    completion_body,
    error_body,
    parse_sse_payload,
    sse_event,
)


class TestCompletionRequestParsing:
    def test_minimal(self):
        request = CompletionRequest.from_json({"prompt": [1, 2, 3]})
        assert request.prompt == (1, 2, 3)
        assert request.max_tokens == 16
        assert request.temperature == 0.0
        assert request.stream is False
        assert request.timeout_s is None

    def test_full(self):
        request = CompletionRequest.from_json({
            "prompt": [4], "max_tokens": 8, "temperature": 0.7,
            "top_k": 5, "stop": [9, 11], "stream": True, "seed": 3,
            "priority": 2, "timeout": 1.5,
        })
        assert request.max_tokens == 8
        assert request.stop == (9, 11)
        assert request.stream is True
        assert request.priority == 2
        assert request.timeout_s == 1.5

    def test_max_new_tokens_alias(self):
        request = CompletionRequest.from_json(
            {"prompt": [1], "max_new_tokens": 4})
        assert request.max_tokens == 4
        with pytest.raises(ProtocolError):
            CompletionRequest.from_json(
                {"prompt": [1], "max_tokens": 4, "max_new_tokens": 4})

    def test_single_int_stop(self):
        request = CompletionRequest.from_json({"prompt": [1], "stop": 7})
        assert request.stop == (7,)

    @pytest.mark.parametrize("body", [
        [1, 2],                                  # not an object
        {},                                      # missing prompt
        {"prompt": []},                          # empty prompt
        {"prompt": "abc"},                       # not token ids
        {"prompt": [1.5]},                       # float token
        {"prompt": [True]},                      # bool is not a token
        {"prompt": [1], "max_tokens": "4"},      # wrong type
        {"prompt": [1], "stream": 1},            # wrong type
        {"prompt": [1], "stop": "x"},            # wrong type
        {"prompt": [1], "timeout": 0},           # non-positive timeout
        {"prompt": [1], "timeout": True},        # bool timeout
        {"prompt": [1], "temprature": 1.0},      # unknown field (typo)
    ])
    def test_malformed_rejected(self, body):
        with pytest.raises(ProtocolError):
            CompletionRequest.from_json(body)

    def test_semantic_validation_is_deferred(self):
        """Range checks live in SamplingParams, not here (one source of
        truth); the parser only guards types."""
        request = CompletionRequest.from_json(
            {"prompt": [1], "temperature": -1.0})
        assert request.temperature == -1.0


class TestResponseBodies:
    def test_completion_body(self):
        body = completion_body(7, "m", 3, [5, 6], "length")
        assert body["id"] == "cmpl-7"
        assert body["choices"][0]["tokens"] == [5, 6]
        assert body["choices"][0]["finish_reason"] == "length"
        assert body["usage"] == {"prompt_tokens": 3,
                                 "completion_tokens": 2,
                                 "total_tokens": 5}

    def test_chunk_body(self):
        token = chunk_body(7, "m", 0, 42)
        assert token["choices"][0]["token"] == 42
        assert token["choices"][0]["finish_reason"] is None
        final = chunk_body(7, "m", 4, None, finish_reason="stop")
        assert final["choices"][0]["token"] is None
        assert final["choices"][0]["finish_reason"] == "stop"

    def test_error_body(self):
        body = error_body("boom", retry_after_s=3)
        assert body["error"]["message"] == "boom"
        assert body["error"]["retry_after_s"] == 3


class TestSSE:
    def test_round_trip(self):
        payload = chunk_body(1, "m", 0, 9)
        framed = sse_event(payload)
        assert framed.startswith(b"data: ")
        assert framed.endswith(b"\n\n")
        assert parse_sse_payload(framed.decode().strip()) == payload

    def test_done_sentinel(self):
        assert parse_sse_payload(SSE_DONE.decode().strip()) is None

    def test_compact_json(self):
        framed = sse_event({"a": 1, "b": [2, 3]})
        assert b" " not in framed[len(b"data: "):].strip()
        assert json.loads(framed[len(b"data: "):]) == {"a": 1, "b": [2, 3]}
