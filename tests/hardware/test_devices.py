"""Unit tests for the device catalogue (paper Tables 2 and 6)."""

import pytest

from repro.hardware import (
    ALL_DEVICES,
    EVALUATION_DEVICES,
    EXTENDED_DEVICES,
    JETSON_AGX_ORIN,
    JETSON_ORIN_NX,
    M2_ULTRA,
    ONEPLUS_12,
    RASPBERRY_PI_5,
    SURFACE_BOOK_3,
    SURFACE_LAPTOP_7,
    device_by_name,
)
from repro.hardware.device import CPUSpec, Device


class TestTable2Devices:
    """Datasheet values from paper Table 2."""

    def test_m2_ultra(self):
        assert M2_ULTRA.cpu.cores == 16
        assert M2_ULTRA.cpu.peak_bandwidth_gbs == pytest.approx(819.2)
        assert M2_ULTRA.cpu.isa_name == "neon"

    def test_raspberry_pi_5(self):
        assert RASPBERRY_PI_5.cpu.cores == 4
        assert RASPBERRY_PI_5.cpu.peak_bandwidth_gbs == pytest.approx(17.1)
        assert "A76" in RASPBERRY_PI_5.cpu.microarchitecture

    def test_jetson_agx_orin(self):
        assert JETSON_AGX_ORIN.cpu.cores == 12
        assert JETSON_AGX_ORIN.cpu.peak_bandwidth_gbs == pytest.approx(204.8)
        assert JETSON_AGX_ORIN.gpu is not None

    def test_surface_book_3(self):
        assert SURFACE_BOOK_3.cpu.cores == 4
        assert SURFACE_BOOK_3.cpu.peak_bandwidth_gbs == pytest.approx(58.2)
        assert SURFACE_BOOK_3.cpu.isa_name == "avx2"

    def test_evaluation_device_list(self):
        names = [d.name for d in EVALUATION_DEVICES]
        assert names == ["M2-Ultra", "Raspberry Pi 5", "Jetson AGX Orin",
                         "Surface Book 3"]


class TestTable6Devices:
    """Datasheet values from paper Table 6."""

    def test_surface_laptop_7(self):
        assert SURFACE_LAPTOP_7.cpu.cores == 12
        assert SURFACE_LAPTOP_7.default_threads == 4
        assert SURFACE_LAPTOP_7.npu.tops == pytest.approx(45.0)
        assert SURFACE_LAPTOP_7.npu.tokens_per_sec("Llama-2-7B-4bit") == \
            pytest.approx(10.40)

    def test_oneplus_12(self):
        assert ONEPLUS_12.npu.tops == pytest.approx(15.0)
        assert ONEPLUS_12.gpu.backend == "opencl"
        assert ONEPLUS_12.npu.tokens_per_sec("Llama-2-7B-4bit") == \
            pytest.approx(11.30)

    def test_jetson_orin_nx(self):
        assert JETSON_ORIN_NX.default_threads == 6
        assert JETSON_ORIN_NX.gpu.backend == "cuda"
        assert JETSON_ORIN_NX.npu is None

    def test_extended_device_list(self):
        assert len(EXTENDED_DEVICES) == 3
        assert len(ALL_DEVICES) == 7


class TestDeviceBehaviour:
    def test_bandwidth_saturates_with_threads(self):
        cpu = M2_ULTRA.cpu
        assert cpu.bandwidth_at(1) == pytest.approx(cpu.per_core_bandwidth_gbs)
        assert cpu.bandwidth_at(16) == pytest.approx(
            cpu.sustained_bandwidth_gbs)
        assert cpu.bandwidth_at(1) < cpu.bandwidth_at(4) <= \
            cpu.bandwidth_at(16)

    def test_sustained_below_peak(self):
        for device in ALL_DEVICES:
            assert device.cpu.sustained_bandwidth_gbs <= \
                device.cpu.peak_bandwidth_gbs

    def test_lookup_by_name_case_insensitive(self):
        assert device_by_name("m2-ultra") is M2_ULTRA
        assert device_by_name("Raspberry Pi 5") is RASPBERRY_PI_5
        with pytest.raises(KeyError):
            device_by_name("pixel 5")

    def test_default_threads_within_core_count(self):
        for device in ALL_DEVICES:
            assert 1 <= device.default_threads <= device.cpu.cores

    def test_invalid_thread_default_rejected(self):
        cpu = CPUSpec(
            microarchitecture="test", cores=2, frequency_ghz=1.0,
            isa_name="neon", simd_throughput_scale=1.0,
            peak_bandwidth_gbs=10, sustained_bandwidth_gbs=8,
            per_core_bandwidth_gbs=4,
        )
        with pytest.raises(ValueError):
            Device(name="bad", cpu=cpu, default_threads=3)

    def test_bandwidth_requires_positive_threads(self):
        with pytest.raises(ValueError):
            M2_ULTRA.cpu.bandwidth_at(0)
