"""Host calibration: fitting, persistence, and the live accuracy gate."""

import os

import numpy as np
import pytest

from repro.core.specialize import default_gather_variant, set_default_gather_variant
from repro.hardware import M2_ULTRA
from repro.hardware.calibrate import (
    PROBE_SHAPES,
    CalibrationProfile,
    ProbeResult,
    ProbeShape,
    _features,
    _fit,
    _nonnegative_lstsq,
    _probe_config,
    calibrate,
    load_profile,
)
from repro.hardware.cost_model import CostModel

TRUE_COEFFICIENTS = {
    "lut_base_s": 2e-5,
    "lut_per_elem_s": 3e-9,
    "span_base_s": 8e-5,
    "gather_per_elem_s": 2e-9,
    "aggregate_per_elem_s": 1e-9,
    "recombine_per_iter_s": 4e-9,
}


def synthetic_probes(coefficients=TRUE_COEFFICIENTS):
    """Probe results whose timings follow an exact linear cost model."""
    probes = []
    for spec in PROBE_SHAPES:
        shape = ProbeShape(*spec)
        config = _probe_config(shape.bits)
        lut_elems, gather, aggregate, recombine = _features(shape, config)
        lut_s = (coefficients["lut_base_s"]
                 + coefficients["lut_per_elem_s"] * lut_elems)
        span_s = (coefficients["span_base_s"]
                  + coefficients["gather_per_elem_s"] * gather
                  + coefficients["aggregate_per_elem_s"] * aggregate
                  + coefficients["recombine_per_iter_s"] * recombine)
        probes.append(ProbeResult(
            shape=shape, lut_elems=lut_elems, gather_elems=gather,
            aggregate_elems=aggregate, recombine_iters=recombine,
            lut_build_s=lut_s, span_s=span_s, total_s=lut_s + span_s,
        ))
    return probes


def synthetic_profile(cores=1, chunk_elements=None, gather="fancy",
                      coefficients=TRUE_COEFFICIENTS):
    profile = CalibrationProfile(
        host="testhost", cores=cores, numpy_version=np.__version__,
        repeats=1, gather_variant=gather,
        gather_timings_s={"fancy": 1e-3, "take": 2e-3},
        chunk_elements=chunk_elements, chunk_timings_s={},
        coefficients=dict(coefficients), probes=synthetic_probes(),
    )
    for probe in profile.probes:
        probe.predicted_s = profile.predict_gemm_seconds(
            probe.shape.n, probe.shape.m, probe.shape.k,
            _probe_config(probe.shape.bits), probe.shape.group_size)
    return profile


class TestFitting:
    def test_fit_recovers_exact_linear_costs(self):
        fitted = _fit(synthetic_probes())
        for name, truth in TRUE_COEFFICIENTS.items():
            assert fitted[name] == pytest.approx(truth, rel=1e-6), name

    def test_synthetic_profile_is_self_consistent(self):
        profile = synthetic_profile()
        assert profile.max_relative_error() == pytest.approx(0.0, abs=1e-9)

    def test_nonnegative_lstsq_clamps_negative_slopes(self):
        design = np.array([[1.0, 1.0], [1.0, 2.0], [1.0, 3.0]])
        target = np.array([3.0, 2.0, 1.0])  # plain lstsq slope = -1
        coef = _nonnegative_lstsq(design, target)
        assert (coef >= 0).all()
        assert coef[1] == 0.0
        assert coef[0] == pytest.approx(target.mean())

    def test_prediction_monotone_in_problem_size(self):
        profile = synthetic_profile()
        config = _probe_config(4)
        small = profile.predict_gemv_seconds(512, 1024, config)
        large = profile.predict_gemv_seconds(2048, 4096, config)
        assert 0 < small < large


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        profile = synthetic_profile(cores=4, chunk_elements=1 << 20)
        path = tmp_path / "calibration.json"
        profile.save(str(path))
        loaded = CalibrationProfile.load(str(path))
        assert loaded.coefficients == profile.coefficients
        assert loaded.cores == 4
        assert loaded.chunk_elements == 1 << 20
        assert len(loaded.probes) == len(profile.probes)
        assert loaded.probes[0].shape == profile.probes[0].shape
        assert loaded.max_relative_error() == pytest.approx(
            profile.max_relative_error())

    def test_load_profile_missing_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
        assert load_profile() is None
        assert load_profile(str(tmp_path / "absent.json")) is None

    def test_load_profile_from_env_applies_gather(self, tmp_path, monkeypatch):
        host_default = default_gather_variant()
        path = tmp_path / "calibration.json"
        synthetic_profile(gather="take").save(str(path))
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        try:
            profile = load_profile()
            assert profile is not None
            assert default_gather_variant() == "take"
        finally:
            set_default_gather_variant(host_default)


class TestCostModelAnchoring:
    def test_calibration_rescales_pool_decision(self):
        # Slow host: measured serial latencies are large relative to the
        # absolute IPC term, so sharding across processes pays off.
        slow = {k: v * 50 for k, v in TRUE_COEFFICIENTS.items()}
        model = CostModel(M2_ULTRA, calibration=synthetic_profile(
            cores=8, coefficients=slow))
        config = _probe_config(4)
        assert model.pool_dispatch_choice(8, 4096, 4096, config, 8) == "process"
        # Near-zero measured cost: nothing amortizes the IPC term.
        fast = {k: v * 1e-6 for k, v in TRUE_COEFFICIENTS.items()}
        model = CostModel(M2_ULTRA, calibration=synthetic_profile(
            cores=8, coefficients=fast))
        assert model.pool_dispatch_choice(8, 4096, 4096, config, 8) == "thread"


class TestLiveCalibration:
    @pytest.mark.skipif(
        os.environ.get("REPRO_SANITIZE", "") not in ("", "0"),
        reason="sanitizer canary checksums add non-linear per-dispatch "
               "overhead the cost fit cannot (and should not) model")
    def test_quick_calibration_meets_accuracy_gate(self):
        """Acceptance: the fitted model predicts measured mpGEMV latency
        within 25% on the probed decode shapes."""
        host_default = default_gather_variant()
        try:
            profile = calibrate(quick=True, repeats=3, sweep_chunks=False)
        finally:
            set_default_gather_variant(host_default)
        assert profile.gather_variant in ("fancy", "take")
        assert all(v >= 0 for v in profile.coefficients.values())
        assert profile.probes, "calibration kept no probe evidence"
        assert profile.max_relative_error(gemv_only=True) <= 0.25
