"""Unit tests for the memory/cache model and KV page accounting."""

import pytest

from repro.hardware.devices import M2_ULTRA, RASPBERRY_PI_5
from repro.hardware.memory import (
    MemoryModel,
    kv_block_bytes,
    kv_blocks_for_budget,
)


class TestMemoryModel:
    def test_cache_residency(self):
        model = MemoryModel(M2_ULTRA.cpu)
        assert model.cache_resident(1024 * 1024)
        assert not model.cache_resident(10 * 1024 * 1024 * 1024)

    def test_strided_access_derates_bandwidth(self):
        model = MemoryModel(RASPBERRY_PI_5.cpu)
        seq = model.effective_bandwidth_gbs(4, sequential=True)
        strided = model.effective_bandwidth_gbs(4, sequential=False)
        assert strided == pytest.approx(seq * model.strided_efficiency)

    def test_dram_time_scales_with_bytes(self):
        model = MemoryModel(M2_ULTRA.cpu)
        t1 = model.dram_time_seconds(1e9, threads=8)
        t2 = model.dram_time_seconds(2e9, threads=8)
        assert t2 == pytest.approx(2 * t1)

    def test_more_threads_never_slower(self):
        model = MemoryModel(M2_ULTRA.cpu)
        assert model.dram_time_seconds(1e9, threads=8) <= \
            model.dram_time_seconds(1e9, threads=1)

    def test_negative_bytes_rejected(self):
        model = MemoryModel(M2_ULTRA.cpu)
        with pytest.raises(ValueError):
            model.dram_time_seconds(-1, threads=1)

    def test_reusable_bytes_only_charged_once(self):
        model = MemoryModel(M2_ULTRA.cpu)
        without = model.dram_time_seconds(10e6, threads=8)
        with_reuse = model.dram_time_seconds(10e6, threads=8,
                                             reusable_bytes=1e6)
        assert with_reuse <= without


class TestKVPageAccounting:
    def test_block_bytes_formula(self):
        # 2 (K and V) * layers * block_size * kv_heads * head_dim * 4 bytes
        assert kv_block_bytes(2, 4, 16, 16) == 2 * 2 * 16 * 4 * 16 * 4
        # fp16 deployments halve it
        assert kv_block_bytes(2, 4, 16, 16, bytes_per_value=2) == \
            kv_block_bytes(2, 4, 16, 16) // 2

    def test_block_bytes_rejects_degenerate_dims(self):
        with pytest.raises(ValueError):
            kv_block_bytes(0, 4, 16, 16)
        with pytest.raises(ValueError):
            kv_block_bytes(2, 4, 16, 0)

    def test_blocks_for_budget_floors(self):
        assert kv_blocks_for_budget(10_000, 4_096) == 2

    def test_budget_too_small_for_one_page(self):
        with pytest.raises(ValueError):
            kv_blocks_for_budget(4_095, 4_096)
