"""Unit tests for the roofline cost model.

These tests assert the *relationships* the paper's evaluation establishes
(linear scaling with bits, memory- vs compute-bound regimes, multi-thread
behaviour), not absolute latencies.
"""

import pytest

from repro.core.config import TMACConfig, ablation_stages
from repro.hardware import CostModel, M2_ULTRA, RASPBERRY_PI_5, SURFACE_BOOK_3
from repro.simd.profile import profile_tmac_gemm


class TestRooflineBasics:
    def test_latency_is_max_of_compute_and_memory(self):
        model = CostModel(M2_ULTRA)
        lat = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=4))
        assert lat.seconds == pytest.approx(
            max(lat.compute_seconds, lat.memory_seconds))
        assert lat.bound in ("compute", "memory")

    def test_thread_validation(self):
        model = CostModel(RASPBERRY_PI_5)
        with pytest.raises(ValueError):
            model.tmac_gemv_latency(1024, 1024, TMACConfig(bits=4), threads=8)

    def test_more_threads_never_slower(self):
        model = CostModel(M2_ULTRA)
        single = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2),
                                         threads=1)
        multi = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2),
                                        threads=8)
        assert multi.seconds <= single.seconds

    def test_units_helpers(self):
        model = CostModel(M2_ULTRA)
        lat = model.tmac_gemv_latency(1024, 1024, TMACConfig(bits=4))
        assert lat.milliseconds == pytest.approx(lat.seconds * 1e3)
        assert lat.microseconds == pytest.approx(lat.seconds * 1e6)


class TestPaperShapeClaims:
    def test_tmac_scales_linearly_with_bits(self):
        """T-MAC latency is ~proportional to the weight bit width (Fig. 6)."""
        model = CostModel(M2_ULTRA)
        lats = [model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=b),
                                        threads=1).seconds
                for b in (1, 2, 3, 4)]
        assert lats[0] < lats[1] < lats[2] < lats[3]
        ratio_4_to_1 = lats[3] / lats[0]
        assert 2.5 < ratio_4_to_1 < 4.5

    def test_dequant_flat_from_4_to_2_bits(self):
        """llama.cpp does not speed up from 4-bit to 2-bit (Fig. 6)."""
        model = CostModel(M2_ULTRA)
        lat4 = model.dequant_gemv_latency(4096, 4096, 4, threads=1).seconds
        lat2 = model.dequant_gemv_latency(4096, 4096, 2, threads=1).seconds
        assert lat2 >= 0.9 * lat4

    def test_dequant_3bit_slowdown(self):
        """llama.cpp is ~15% slower at 3-bit than 4-bit (Sec. 5.2)."""
        model = CostModel(M2_ULTRA)
        lat4 = model.dequant_gemv_latency(4096, 4096, 4, threads=1).seconds
        lat3 = model.dequant_gemv_latency(4096, 4096, 3, threads=1).seconds
        assert 1.05 < lat3 / lat4 < 1.45

    @pytest.mark.parametrize("device", [M2_ULTRA, RASPBERRY_PI_5,
                                        SURFACE_BOOK_3])
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_tmac_beats_dequant_everywhere(self, device, bits):
        """T-MAC is at least as fast as llama.cpp at every bit width on every
        device (both can hit the same memory-bandwidth wall at 4 bits)."""
        model = CostModel(device)
        tmac = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=bits))
        dequant = model.dequant_gemv_latency(4096, 4096, bits)
        assert tmac.seconds <= dequant.seconds * 1.005

    def test_speedup_grows_as_bits_shrink(self):
        model = CostModel(M2_ULTRA)
        speedups = []
        for bits in (4, 3, 2, 1):
            tmac = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=bits),
                                           threads=1).seconds
            dequant = model.dequant_gemv_latency(4096, 4096, bits,
                                                 threads=1).seconds
            speedups.append(dequant / tmac)
        assert speedups == sorted(speedups)
        assert speedups[-1] > 5.0  # 1-bit speedup approaches the paper's ~11x

    def test_multithread_gemv_becomes_memory_bound(self):
        """Multi-threaded mpGEMV is limited by memory bandwidth (Sec. 5.2)."""
        model = CostModel(M2_ULTRA)
        lat = model.tmac_gemv_latency(11008, 4096, TMACConfig(bits=2),
                                      threads=8)
        assert lat.bound == "memory"

    def test_single_thread_dequant_is_compute_bound(self):
        model = CostModel(M2_ULTRA)
        lat = model.dequant_gemv_latency(4096, 4096, 4, threads=1)
        assert lat.bound == "compute"


class TestAblationOrdering:
    def test_each_stage_is_no_slower_than_previous(self):
        """Cumulative optimizations never hurt (Fig. 10 staircase)."""
        model = CostModel(M2_ULTRA)
        stages = ablation_stages(bits=4)
        latencies = [model.tmac_gemv_latency(4096, 4096, cfg, threads=1).seconds
                     for cfg in stages]
        for before, after in zip(latencies, latencies[1:]):
            assert after <= before * 1.001

    def test_full_tmac_substantially_faster_than_base(self):
        model = CostModel(M2_ULTRA)
        stages = {s.name: s for s in ablation_stages(bits=4)}
        base = model.tmac_gemv_latency(4096, 4096, stages["TM-base"],
                                       threads=1).seconds
        full = model.tmac_gemv_latency(4096, 4096, stages["T-MAC"],
                                       threads=1).seconds
        assert base / full > 1.5

    def test_table_spill_penalty_applies_without_tiling(self):
        profile_tiled = profile_tmac_gemm(1, 2048, 2048, TMACConfig(bits=4))
        profile_spilled = profile_tmac_gemm(
            1, 2048, 2048, TMACConfig(bits=4, tiling=False))
        model = CostModel(M2_ULTRA)
        tiled = model.compute_seconds(profile_tiled, threads=1)
        spilled = model.compute_seconds(profile_spilled, threads=1)
        assert spilled > tiled
