"""Property-based tests for the quantization substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.activation import dequantize_activation, quantize_activation
from repro.quant.bitnet import ternary_codes
from repro.quant.uniform import dequantize_weights, max_code, quantize_weights


def weight_matrices(max_m=8, k_choices=(16, 32, 64)):
    """Strategy for small well-conditioned weight matrices."""
    return st.integers(1, max_m).flatmap(
        lambda m: st.sampled_from(k_choices).flatmap(
            lambda k: hnp.arrays(
                dtype=np.float32,
                shape=(m, k),
                elements=st.floats(-8.0, 8.0, allow_nan=False, width=32),
            )
        )
    )


class TestUniformQuantProperties:
    @given(weights=weight_matrices(), bits=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_codes_always_in_range(self, weights, bits):
        qw = quantize_weights(weights, bits=bits, group_size=16)
        assert qw.codes.min() >= 0
        assert qw.codes.max() <= max_code(bits)

    @given(weights=weight_matrices(), bits=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_error_within_half_step(self, weights, bits):
        qw = quantize_weights(weights, bits=bits, group_size=16)
        recon = dequantize_weights(qw)
        step = np.repeat(qw.scales, qw.group_size, axis=1)
        assert np.all(np.abs(recon - weights) <= step * 0.5 + 1e-5)

    @given(weights=weight_matrices())
    @settings(max_examples=40, deadline=None)
    def test_quantization_is_idempotent(self, weights):
        """Quantizing an already-quantized (reconstructed) matrix is lossless."""
        qw = quantize_weights(weights, bits=4, group_size=16)
        recon = dequantize_weights(qw)
        qw2 = quantize_weights(recon, bits=4, group_size=16)
        recon2 = dequantize_weights(qw2)
        assert np.allclose(recon, recon2, atol=1e-4)


class TestActivationQuantProperties:
    @given(
        activation=hnp.arrays(
            dtype=np.float32, shape=(2, 64),
            elements=st.floats(-100.0, 100.0, allow_nan=False, width=32)),
        block=st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bounded(self, activation, block):
        qa = quantize_activation(activation, block_size=block)
        recon = dequantize_activation(qa)
        scale = np.abs(activation).max() + 1e-6
        assert np.abs(recon - activation).max() <= scale / 127.0 + 1e-5


class TestBitnetProperties:
    @given(weights=weight_matrices())
    @settings(max_examples=50, deadline=None)
    def test_ternary_values_and_positive_scales(self, weights):
        ternary, scales = ternary_codes(weights)
        assert set(np.unique(ternary)).issubset({-1, 0, 1})
        assert np.all(scales > 0)
