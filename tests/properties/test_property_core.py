"""Property-based tests for the T-MAC core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.aggregation import fast_aggregate, rhadd
from repro.core.bitserial import compose_bits, decompose_bits
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.lut import build_lut, lookup, precompute_lut
from repro.core.weights import (
    deinterleave_packed,
    group_bits,
    interleave_packed,
    pack_indices,
    permute_tiles,
    ungroup_bits,
    unpack_indices,
    unpermute_tiles,
)
from repro.quant.uniform import quantize_weights


class TestBitserialProperties:
    @given(
        codes=hnp.arrays(dtype=np.uint8, shape=(4, 16),
                         elements=st.integers(0, 15)),
    )
    @settings(max_examples=80, deadline=None)
    def test_decompose_compose_round_trip(self, codes):
        np.testing.assert_array_equal(
            compose_bits(decompose_bits(codes, 4)), codes)


class TestLayoutProperties:
    @given(
        plane=hnp.arrays(dtype=np.uint8, shape=(6, 24),
                         elements=st.integers(0, 1)),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_ungroup_round_trip(self, plane):
        np.testing.assert_array_equal(ungroup_bits(group_bits(plane, 4), 4),
                                      plane)

    @given(
        indices=hnp.arrays(dtype=np.uint8, shape=(3, 40),
                           elements=st.integers(0, 15)),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_round_trip(self, indices):
        packed = pack_indices(indices, g=4)
        np.testing.assert_array_equal(
            unpack_indices(packed, indices.shape[1], g=4), indices)

    @given(
        packed=hnp.arrays(dtype=np.uint8, shape=(2, 48),
                          elements=st.integers(0, 255)),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleave_round_trip(self, packed):
        np.testing.assert_array_equal(
            deinterleave_packed(interleave_packed(packed)), packed)

    @given(
        matrix=hnp.arrays(dtype=np.int32, shape=(7, 11),
                          elements=st.integers(-100, 100)),
        tile_m=st.integers(1, 8),
        tile_k=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_permute_round_trip(self, matrix, tile_m, tile_k):
        flat = permute_tiles(matrix, tile_m, tile_k)
        np.testing.assert_array_equal(
            unpermute_tiles(flat, matrix.shape, tile_m, tile_k), matrix)


class TestLutProperties:
    @given(
        activation=hnp.arrays(
            dtype=np.float32, shape=(1, 16),
            elements=st.floats(-4.0, 4.0, allow_nan=False, width=32)),
    )
    @settings(max_examples=60, deadline=None)
    def test_mirror_symmetry(self, activation):
        """Entry(p) == -Entry(~p) for the +-1 transform."""
        lut = build_lut(activation, g=4)
        for p in range(16):
            np.testing.assert_allclose(lut[0, :, p], -lut[0, :, 15 - p],
                                       atol=1e-4)

    @given(
        activation=hnp.arrays(
            dtype=np.float32, shape=(1, 16),
            elements=st.floats(-4.0, 4.0, allow_nan=False, width=32)),
        indices=hnp.arrays(dtype=np.uint8, shape=(5, 4),
                           elements=st.integers(0, 15)),
    )
    @settings(max_examples=60, deadline=None)
    def test_consolidated_lookup_equals_full_lookup(self, activation, indices):
        full = precompute_lut(activation, g=4, mirror_consolidation=False,
                              table_quantization=False, act_dtype="float32")
        half = precompute_lut(activation, g=4, mirror_consolidation=True,
                              table_quantization=False, act_dtype="float32")
        np.testing.assert_allclose(lookup(half, indices),
                                   lookup(full, indices), atol=1e-5)


class TestAggregationProperties:
    @given(
        values=hnp.arrays(dtype=np.int64, shape=(20, 8),
                          elements=st.integers(-127, 127)),
    )
    @settings(max_examples=80, deadline=None)
    def test_rhadd_bounds(self, values):
        a, b = values[:10], values[10:]
        result = rhadd(a, b)
        assert np.all(result >= np.minimum(a, b))
        assert np.all(result <= np.maximum(a, b) + 1)

    @given(
        values=hnp.arrays(dtype=np.int64, shape=(4, 16),
                          elements=st.integers(-127, 127)),
    )
    @settings(max_examples=80, deadline=None)
    def test_fast_aggregate_error_bounded(self, values):
        """The rhadd-tree estimate stays within a bounded distance of the
        true sum (each tree level contributes at most 1 LSB of error per
        element)."""
        estimate = fast_aggregate(values, axis=-1)
        true = values.sum(axis=-1)
        levels = 4  # 16 leaves
        assert np.all(np.abs(estimate - true) <= levels * 16 + 16)


class TestKernelProperties:
    @given(
        bits=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_kernel_error_bounded_by_quantization_step(self, bits, seed):
        """T-MAC output (without table quantization) equals the dequantized
        reference for any weights/activations and bit width."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((16, 32)).astype(np.float32)
        a = rng.standard_normal((2, 32)).astype(np.float32)
        qw = quantize_weights(w, bits=bits, group_size=16)
        config = TMACConfig(bits=bits, table_quantization=False,
                            act_dtype="float32")
        out = TMACKernel(qw, config).matmul(a)
        from repro.baselines.reference import quantized_reference_gemm
        ref = quantized_reference_gemm(a, qw)
        assert np.allclose(out, ref, atol=1e-3, rtol=1e-4)
