"""Unit tests for the power/energy model."""

import pytest

from repro.core.config import TMACConfig
from repro.energy import PowerModel
from repro.hardware import JETSON_AGX_ORIN, M2_ULTRA, RASPBERRY_PI_5
from repro.llm import LLAMA_2_7B, estimate_token_throughput


class TestCpuEnergy:
    def test_energy_equals_power_times_latency(self):
        model = PowerModel(M2_ULTRA)
        report = model.cpu_token_energy(0.02, 1e9, 3.5, threads=8)
        assert report.joules_per_token == pytest.approx(
            report.watts * report.seconds_per_token)

    def test_components_sum(self):
        model = PowerModel(M2_ULTRA)
        report = model.cpu_token_energy(0.02, 1e9, 3.5, threads=8)
        assert report.joules_per_token == pytest.approx(
            report.static_joules + report.compute_joules + report.memory_joules)

    def test_fewer_instructions_means_less_energy(self):
        model = PowerModel(M2_ULTRA)
        heavy = model.cpu_token_energy(0.02, 4e9, 3.5, threads=8)
        light = model.cpu_token_energy(0.02, 1e9, 3.5, threads=8)
        assert light.joules_per_token < heavy.joules_per_token
        assert light.watts < heavy.watts

    def test_invalid_inputs_rejected(self):
        model = PowerModel(M2_ULTRA)
        with pytest.raises(ValueError):
            model.cpu_token_energy(0.0, 1e9, 1.0, threads=1)
        with pytest.raises(ValueError):
            model.cpu_token_energy(0.1, -1, 1.0, threads=1)


class TestGpuEnergy:
    def test_gpu_power_above_idle(self):
        model = PowerModel(JETSON_AGX_ORIN)
        report = model.gpu_token_energy(0.05)
        assert report.watts > JETSON_AGX_ORIN.cpu.idle_power_w

    def test_requires_gpu(self):
        with pytest.raises(ValueError):
            PowerModel(RASPBERRY_PI_5).gpu_token_energy(0.1)


class TestPaperEnergyClaims:
    """Figure 9 / Table 5 structure: T-MAC uses less power and much less
    energy per token than llama.cpp on the same device and model."""

    @pytest.mark.parametrize("device", [M2_ULTRA, JETSON_AGX_ORIN])
    @pytest.mark.parametrize("bits", [2, 4])
    def test_tmac_reduces_power_and_energy(self, device, bits):
        power_model = PowerModel(device)
        reports = {}
        for engine in ("llama.cpp", "tmac"):
            est = estimate_token_throughput(device, LLAMA_2_7B, bits, engine)
            reports[engine] = power_model.cpu_token_energy(
                est.seconds_per_token, est.instructions_per_token,
                est.dram_gb_per_token, est.threads)
        assert reports["tmac"].watts < reports["llama.cpp"].watts
        assert reports["tmac"].joules_per_token < \
            reports["llama.cpp"].joules_per_token

    def test_energy_reduction_in_paper_range(self):
        """Energy per token drops by roughly 20-70% (Fig. 9)."""
        power_model = PowerModel(M2_ULTRA)
        est_l = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 2, "llama.cpp")
        est_t = estimate_token_throughput(M2_ULTRA, LLAMA_2_7B, 2, "tmac")
        joules_l = power_model.cpu_token_energy(
            est_l.seconds_per_token, est_l.instructions_per_token,
            est_l.dram_gb_per_token, est_l.threads).joules_per_token
        joules_t = power_model.cpu_token_energy(
            est_t.seconds_per_token, est_t.instructions_per_token,
            est_t.dram_gb_per_token, est_t.threads).joules_per_token
        reduction = 1 - joules_t / joules_l
        assert 0.2 < reduction < 0.8

    def test_orin_tmac_cpu_more_efficient_than_gpu(self):
        """Table 5: T-MAC CPU beats the GPU backend on energy per token."""
        power_model = PowerModel(JETSON_AGX_ORIN)
        est_t = estimate_token_throughput(JETSON_AGX_ORIN, LLAMA_2_7B, 2,
                                          "tmac")
        cpu_energy = power_model.cpu_token_energy(
            est_t.seconds_per_token, est_t.instructions_per_token,
            est_t.dram_gb_per_token, est_t.threads).joules_per_token
        est_g = estimate_token_throughput(JETSON_AGX_ORIN, LLAMA_2_7B, 2,
                                          "gpu")
        gpu_energy = power_model.gpu_token_energy(
            est_g.seconds_per_token).joules_per_token
        assert cpu_energy < gpu_energy
