"""Backend registry: registration round-trip, aliases, cost models."""

import numpy as np
import pytest

from repro.backends import (
    Backend,
    BLASBackend,
    DequantBackend,
    GPUBackend,
    NPUBackend,
    ReferenceBackend,
    TMACBackend,
    UnknownBackendError,
    backend_aliases,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.registry import _ALIASES, _FACTORIES
from repro.hardware import JETSON_AGX_ORIN, M2_ULTRA
from repro.workloads.generator import gaussian_activation, gaussian_weights


class TestRegistryRoundTrip:
    def test_builtin_backends_listed(self):
        names = list_backends()
        for expected in ("reference", "llama.cpp", "tmac", "tmac-fa",
                         "blas", "gpu", "npu"):
            assert expected in names

    def test_get_by_canonical_name_and_alias(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("fp"), ReferenceBackend)
        assert isinstance(get_backend("dequant"), DequantBackend)
        assert isinstance(get_backend("llamacpp"), DequantBackend)
        assert isinstance(get_backend("tmac"), TMACBackend)
        assert isinstance(get_backend("T-MAC"), TMACBackend)

    def test_case_insensitive(self):
        assert isinstance(get_backend("TMAC"), TMACBackend)
        assert isinstance(get_backend("Reference"), ReferenceBackend)

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(UnknownBackendError):
            get_backend("tpu")
        with pytest.raises(ValueError):  # UnknownBackendError is a ValueError
            get_backend("does-not-exist")
        with pytest.raises(UnknownBackendError):
            backend_aliases("tpu")

    def test_register_and_get_custom_backend(self):
        class NullBackend(Backend):
            name = "null-test"

            def __init__(self, **_ignored):
                pass

        try:
            register_backend("null-test", NullBackend, aliases=("nt",))
            assert isinstance(get_backend("null-test"), NullBackend)
            assert isinstance(get_backend("nt"), NullBackend)
            assert "null-test" in backend_aliases("nt")
        finally:
            _FACTORIES.pop("null-test", None)
            for alias in ("null-test", "nt"):
                _ALIASES.pop(alias, None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("tmac", TMACBackend)

    def test_tmac_fa_variant(self):
        backend = get_backend("tmac-fa", bits=4)
        assert backend.config.fast_aggregation
        assert "FA" in backend.name

    def test_tmac_fa_with_explicit_config(self):
        """An explicit config must not silently drop fast aggregation."""
        from repro.core.config import TMACConfig

        backend = get_backend("tmac-fa", config=TMACConfig(bits=4))
        assert backend.config.fast_aggregation
        assert "FA" in backend.name


class TestNumericBackends:
    def setup_method(self):
        self.weight = gaussian_weights(16, 64, seed=0)
        self.activation = gaussian_activation(2, 64, seed=1)

    def test_uniform_kwargs_accepted_by_all_numeric_backends(self):
        for name in ("reference", "dequant", "tmac", "tmac-fa"):
            backend = get_backend(name, bits=4, group_size=32,
                                  fast_aggregation=False, bitnet=False)
            linear = backend.make_linear(self.weight)
            out = linear(self.activation)
            assert out.shape == (2, 16)

    def test_reference_weight_bytes_is_fp32(self):
        linear = get_backend("reference").make_linear(self.weight)
        assert linear.weight_bytes == self.weight.size * 4

    def test_tmac_linear_exposes_kernel(self):
        linear = get_backend("tmac", bits=4, group_size=32).make_linear(
            self.weight)
        assert linear.kernel is not None
        table = linear.kernel.precompute(self.activation)
        np.testing.assert_array_equal(
            linear.kernel.matmul_with_table(self.activation, table),
            linear(self.activation),
        )


class TestCostModelBackends:
    def test_kind_markers(self):
        assert get_backend("tmac").kind == "numeric"
        for name in ("blas", "gpu", "npu"):
            assert get_backend(name).kind == "cost-model"

    def test_cost_backends_refuse_numeric_execution(self):
        for name in ("blas", "gpu", "npu"):
            with pytest.raises(NotImplementedError):
                get_backend(name).make_linear(np.zeros((4, 8), dtype=np.float32))

    def test_blas_latency(self):
        latency = get_backend("blas").estimate_latency(
            M2_ULTRA, n=256, m=4096, k=4096, bits=4)
        assert latency.seconds > 0

    def test_gpu_latency(self):
        latency = get_backend("gpu").estimate_latency(
            JETSON_AGX_ORIN, n=1, m=4096, k=4096, bits=4)
        assert latency.seconds > 0

    def test_numeric_backend_has_no_cost_model(self):
        with pytest.raises(NotImplementedError):
            get_backend("reference").estimate_latency(
                M2_ULTRA, n=1, m=16, k=16, bits=4)

    def test_npu_backend_wraps_published_numbers(self):
        backend = get_backend("npu")
        assert isinstance(backend, NPUBackend)
        # Devices without an NPU yield None rather than raising.
        assert backend.tokens_per_sec(M2_ULTRA, "llama-2-7b-4bit") is None


class TestBackendReprAndTypes:
    def test_concrete_types(self):
        assert isinstance(get_backend("blas"), BLASBackend)
        assert isinstance(get_backend("gpu"), GPUBackend)
