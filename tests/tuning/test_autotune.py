"""Execution autotuner: shape-keyed choices from a calibration profile."""

import numpy as np
import pytest

import repro.tuning.tuner as tuner_mod
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.quant.uniform import quantize_weights
from repro.tuning.tuner import (
    ExecutionChoice,
    ShapeTuner,
    autotune_enabled,
    reset_autotuner,
    resolve_autotuned,
)
from repro.workloads.generator import gaussian_activation, gaussian_weights

from tests.hardware.test_calibrate import TRUE_COEFFICIENTS, synthetic_profile


def _config(**kwargs):
    kwargs.setdefault("executor", "vectorized")
    return TMACConfig(bits=4, **kwargs)


class TestEnablement:
    @pytest.mark.parametrize("value,expected", [
        (None, False), ("", False), ("0", False), ("false", False),
        ("no", False), ("1", True), ("true", True), ("on", True),
    ])
    def test_env_parsing(self, monkeypatch, value, expected):
        if value is None:
            monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
        else:
            monkeypatch.setenv("REPRO_AUTOTUNE", value)
        assert autotune_enabled() is expected


class TestChoose:
    def test_single_core_stays_serial(self):
        tuner = ShapeTuner(synthetic_profile(cores=1))
        choice = tuner.choose(1, 4096, 4096, _config(parallel_threshold=1))
        assert choice.executor == "vectorized"
        assert choice.workers == 1
        assert choice.predicted_seconds > 0

    def test_small_shapes_stay_serial_below_threshold(self):
        tuner = ShapeTuner(synthetic_profile(cores=8))
        config = _config(parallel_threshold=1 << 30)
        choice = tuner.choose(1, 256, 1024, config)
        assert choice.executor == "vectorized"

    def test_multicore_large_shape_picks_a_pool(self):
        slow = {k: v * 50 for k, v in TRUE_COEFFICIENTS.items()}
        tuner = ShapeTuner(synthetic_profile(cores=8, coefficients=slow))
        config = _config(parallel_threshold=1)
        choice = tuner.choose(8, 4096, 4096, config)
        serial = tuner.profile.predict_gemm_seconds(8, 4096, 4096, config)
        assert choice.executor in ("parallel", "process")
        assert choice.workers > 1
        assert choice.predicted_seconds < serial

    def test_choice_memoized_per_shape(self):
        tuner = ShapeTuner(synthetic_profile(cores=1))
        config = _config()
        first = tuner.choose(1, 512, 2048, config)
        again = tuner.choose(1, 512, 2048, config)
        other = tuner.choose(1, 1024, 2048, config)
        assert again is first
        assert other is not first

    def test_profile_preferences_propagate(self):
        tuner = ShapeTuner(synthetic_profile(cores=1, chunk_elements=1 << 20,
                                             gather="take"))
        choice = tuner.choose(1, 512, 2048, _config())
        assert choice.chunk_elements == 1 << 20
        assert choice.gather_variant == "take"


class TestApply:
    def test_fills_only_delegated_fields(self):
        tuner = ShapeTuner(synthetic_profile(cores=1, chunk_elements=1 << 20))
        choice = ExecutionChoice(executor="vectorized", workers=1,
                                 chunk_elements=1 << 20,
                                 gather_variant="fancy",
                                 predicted_seconds=1e-3)
        delegated = _config(chunk_elements=None)
        tuned = tuner.apply(delegated, choice)
        assert tuned.chunk_elements == 1 << 20
        pinned = _config(chunk_elements=1 << 24)
        assert tuner.apply(pinned, choice) is pinned  # explicit wins, no-op

    def test_rewrites_executor_and_workers(self):
        tuner = ShapeTuner(synthetic_profile(cores=8))
        choice = ExecutionChoice(executor="process", workers=4,
                                 chunk_elements=None, gather_variant="fancy",
                                 predicted_seconds=1e-3)
        tuned = tuner.apply(_config(), choice)
        assert tuned.executor == "process"
        assert tuned.num_workers == 4
        choice = ExecutionChoice(executor="parallel", workers=3,
                                 chunk_elements=None, gather_variant="fancy",
                                 predicted_seconds=1e-3)
        tuned = tuner.apply(_config(), choice)
        assert tuned.executor == "parallel"
        assert tuned.num_threads == 3

    def test_matching_choice_returns_config_unchanged(self):
        tuner = ShapeTuner(synthetic_profile(cores=1))
        config = _config(chunk_elements=1 << 22)
        choice = ExecutionChoice(executor="vectorized", workers=1,
                                 chunk_elements=None, gather_variant="fancy",
                                 predicted_seconds=1e-3)
        assert tuner.apply(config, choice) is config


class TestKernelIntegration:
    @pytest.fixture()
    def tuned_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE", "1")
        monkeypatch.setattr(
            tuner_mod, "_AUTOTUNER",
            ShapeTuner(synthetic_profile(cores=1, chunk_elements=1 << 20)))
        yield
        reset_autotuner()

    def test_resolve_autotuned_fills_chunk_budget(self, tuned_env):
        qw = quantize_weights(gaussian_weights(64, 128, seed=2), bits=4,
                              group_size=32)
        kernel = TMACKernel(qw, _config(specialize=True))
        tuned = resolve_autotuned(kernel.plan, kernel.config, n=1)
        assert tuned.chunk_elements == 1 << 20
        assert tuned.executor == "vectorized"

    def test_autotuned_matmul_is_bit_identical(self, tuned_env, monkeypatch):
        qw = quantize_weights(gaussian_weights(64, 128, seed=2), bits=4,
                              group_size=32)
        a = gaussian_activation(3, 128, seed=9)
        tuned_out = TMACKernel(qw, _config(specialize=True)).matmul(a)
        monkeypatch.delenv("REPRO_AUTOTUNE")
        plain_out = TMACKernel(qw, _config(specialize=True)).matmul(a)
        np.testing.assert_array_equal(tuned_out, plain_out)

    def test_disabled_autotune_keeps_kernel_binding(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOTUNE", raising=False)
        qw = quantize_weights(gaussian_weights(64, 128, seed=2), bits=4,
                              group_size=32)
        kernel = TMACKernel(qw, _config(specialize=True))
        config, executor = kernel._execution(np.zeros((1, 128),
                                                      dtype=np.float32))
        assert config is kernel.config
        assert executor is kernel.executor
