"""Unit tests for the tile-configuration search."""

import pytest

from repro.core.config import TMACConfig
from repro.core.tiling import tmac_register_footprint
from repro.hardware import JETSON_AGX_ORIN, M2_ULTRA, SURFACE_BOOK_3
from repro.simd.isa import AVX2, NEON
from repro.tuning import Tuner, candidate_tile_configs


class TestSearchSpace:
    def test_candidates_fit_register_file(self):
        for isa in (NEON, AVX2):
            register_bytes = isa.num_registers * isa.width_bits // 8
            for tile in candidate_tile_configs(isa, bits=4):
                footprint = tmac_register_footprint(
                    m_tm=tile.m_tm, k_tk=tile.k_tk, g=4,
                    table_quantization=True, mirror_consolidation=True,
                    lanes=isa.lanes_int8)
                assert footprint.total_bytes <= register_bytes

    def test_reduction_tiles_are_group_multiples(self):
        for tile in candidate_tile_configs(NEON, bits=2, g=4):
            assert tile.k_tk % 4 == 0

    def test_avx2_has_fewer_feasible_configs(self):
        """AVX2's 16-register file admits fewer resident-LUT configurations."""
        neon = candidate_tile_configs(NEON, bits=4)
        avx2 = candidate_tile_configs(AVX2, bits=4)
        assert len(avx2) <= len(neon)

    def test_candidate_cap(self):
        assert len(candidate_tile_configs(NEON, bits=4, max_candidates=3)) <= 3

    def test_gemm_candidates_include_multirow_tiles(self):
        tiles = candidate_tile_configs(NEON, bits=4, n=256)
        assert any(t.n_tn > 1 for t in tiles)


class TestTuner:
    @pytest.mark.parametrize("device", [M2_ULTRA, SURFACE_BOOK_3,
                                        JETSON_AGX_ORIN])
    def test_best_is_no_worse_than_default(self, device):
        result = Tuner(device).tune(4096, 4096, TMACConfig(bits=4))
        assert result.best_latency_seconds <= result.default_latency_seconds
        assert result.improvement >= 1.0

    def test_records_cover_all_candidates(self):
        tuner = Tuner(M2_ULTRA)
        result = tuner.tune(1024, 1024, TMACConfig(bits=2), max_candidates=10)
        assert 1 <= len(result.records) <= 10
        best = min(r.latency_seconds for r in result.records)
        assert result.best_latency_seconds == pytest.approx(best)

    def test_gemm_tuning_prefers_larger_reduction_tiles(self):
        """For mpGEMM the partial-sum traffic rewards deeper K tiles."""
        result = Tuner(M2_ULTRA).tune(4096, 4096, TMACConfig(bits=4), n=256)
        small_k = [r for r in result.records if r.tile_config.k_tk == 4]
        if small_k:
            assert result.best_config.k_tk > 4
