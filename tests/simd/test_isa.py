"""Unit tests for the instruction-set descriptions."""

import pytest

from repro.simd.isa import AVX2, NEON, InstructionCategory, isa_for_name


class TestInstructionSets:
    def test_neon_width_and_registers(self):
        assert NEON.width_bits == 128
        assert NEON.num_registers == 32
        assert NEON.lanes_int8 == 16
        assert NEON.lanes_fp16 == 8

    def test_avx2_width_and_registers(self):
        assert AVX2.width_bits == 256
        assert AVX2.num_registers == 16
        assert AVX2.lanes_int8 == 32

    def test_lookup_reach_is_16_entries(self):
        """Both TBL and PSHUFB address 16 8-bit entries per 128-bit lane."""
        assert NEON.lookup_reach == 16
        assert AVX2.lookup_reach == 16

    def test_int8_adds_twice_as_fast_as_int16(self):
        """The throughput asymmetry that motivates fast aggregation."""
        for isa in (NEON, AVX2):
            assert isa.throughput_of(InstructionCategory.ADD_INT8) == \
                2 * isa.throughput_of(InstructionCategory.ADD_INT16)

    def test_all_categories_have_throughput(self):
        for isa in (NEON, AVX2):
            for category in InstructionCategory.ALL:
                assert isa.throughput_of(category) > 0

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            NEON.throughput_of("teleport")

    def test_lookup_by_name(self):
        assert isa_for_name("neon") is NEON
        assert isa_for_name("avx2") is AVX2
        with pytest.raises(KeyError):
            isa_for_name("riscv")
