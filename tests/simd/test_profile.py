"""Unit tests for the closed-form kernel instruction profiles."""

import pytest

from repro.core.config import TMACConfig
from repro.simd.isa import AVX2, NEON, InstructionCategory as IC
from repro.simd.profile import (
    DEQUANT_DECODE_INSTR_PER_WEIGHT,
    InstructionProfile,
    profile_dequant_gemm,
    profile_tmac_gemm,
)


class TestInstructionProfile:
    def test_add_and_total(self):
        profile = InstructionProfile()
        profile.add(IC.LOOKUP, 10)
        profile.add(IC.LOOKUP, 5)
        profile.add(IC.ADD_INT16, 3)
        assert profile.counts[IC.LOOKUP] == 15
        assert profile.total_instructions() == 18

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            InstructionProfile().add("warp", 1)

    def test_scaled_and_merged(self):
        a = InstructionProfile(counts={IC.LOOKUP: 10}, dram_read_bytes=100)
        b = InstructionProfile(counts={IC.LOOKUP: 5, IC.UNPACK: 2},
                               dram_read_bytes=50,
                               sequential_weight_access=False)
        doubled = a.scaled(2)
        assert doubled.counts[IC.LOOKUP] == 20
        assert doubled.dram_read_bytes == 200
        merged = a.merged(b)
        assert merged.counts[IC.LOOKUP] == 15
        assert merged.dram_read_bytes == 150
        assert merged.sequential_weight_access is False


class TestTmacProfile:
    def test_lookup_count_scales_linearly_with_bits(self):
        counts = {}
        for bits in (1, 2, 3, 4):
            profile = profile_tmac_gemm(1, 4096, 4096, TMACConfig(bits=bits))
            counts[bits] = profile.counts[IC.LOOKUP]
        assert counts[2] == pytest.approx(2 * counts[1])
        assert counts[4] == pytest.approx(4 * counts[1])
        assert counts[3] == pytest.approx(3 * counts[1])

    def test_lookup_count_matches_machine_formula(self):
        """One lookup instruction per `lanes` indices per bit (validated
        against the executable SIMD machine's counting in test_machine)."""
        m, k, bits = 256, 128, 4
        profile = profile_tmac_gemm(1, m, k, TMACConfig(bits=bits), isa=NEON)
        expected = bits * (m * k / 4) / 16  # g=4, 16 lanes
        assert profile.counts[IC.LOOKUP] == pytest.approx(expected)

    def test_fp16_tables_double_the_lookups(self):
        int8 = profile_tmac_gemm(1, 1024, 1024,
                                 TMACConfig(bits=4, table_quantization=True))
        fp16 = profile_tmac_gemm(1, 1024, 1024,
                                 TMACConfig(bits=4, table_quantization=False))
        assert fp16.counts[IC.LOOKUP] == pytest.approx(
            2 * int8.counts[IC.LOOKUP])

    def test_fast_aggregation_uses_int8_adds(self):
        fast = profile_tmac_gemm(1, 512, 512,
                                 TMACConfig(bits=4, fast_aggregation=True))
        exact = profile_tmac_gemm(1, 512, 512, TMACConfig(bits=4))
        assert IC.ADD_INT8 in fast.counts and IC.ADD_INT8 not in exact.counts
        assert IC.ADD_INT16 in exact.counts and IC.ADD_INT16 not in fast.counts

    def test_interleaving_removes_shuffles(self):
        with_il = profile_tmac_gemm(1, 512, 512, TMACConfig(bits=4))
        without_il = profile_tmac_gemm(
            1, 512, 512, TMACConfig(bits=4, interleave_weights=False))
        assert without_il.counts.get(IC.SHUFFLE, 0) > \
            with_il.counts.get(IC.SHUFFLE, 0)

    def test_layout_flags_propagate(self):
        profile = profile_tmac_gemm(
            1, 256, 256,
            TMACConfig(bits=4, tiling=False, permute_weights=False))
        assert not profile.tables_in_registers
        assert not profile.sequential_weight_access

    def test_dram_traffic_scales_with_bits(self):
        low = profile_tmac_gemm(1, 4096, 4096, TMACConfig(bits=1))
        high = profile_tmac_gemm(1, 4096, 4096, TMACConfig(bits=4))
        assert high.dram_read_bytes > 3 * low.dram_read_bytes

    def test_avx2_needs_fewer_lookup_instructions(self):
        neon = profile_tmac_gemm(1, 1024, 1024, TMACConfig(bits=4), isa=NEON)
        avx2 = profile_tmac_gemm(1, 1024, 1024, TMACConfig(bits=4), isa=AVX2)
        assert avx2.counts[IC.LOOKUP] == pytest.approx(
            neon.counts[IC.LOOKUP] / 2)

    def test_gemm_scales_with_n(self):
        gemv = profile_tmac_gemm(1, 1024, 1024, TMACConfig(bits=2))
        gemm = profile_tmac_gemm(256, 1024, 1024, TMACConfig(bits=2))
        assert gemm.counts[IC.LOOKUP] == pytest.approx(
            256 * gemv.counts[IC.LOOKUP])
        # Weights are only streamed from DRAM once regardless of N.
        assert gemm.dram_read_bytes < 2 * gemv.dram_read_bytes + 256 * 1024 * 4


class TestDequantProfile:
    def test_flat_cost_from_4_to_2_bits(self):
        """llama.cpp gains nothing from 4->2 bits (paper Section 5.2)."""
        four = profile_dequant_gemm(1, 4096, 4096, 4)
        two = profile_dequant_gemm(1, 4096, 4096, 2)
        ratio = two.total_instructions() / four.total_instructions()
        assert 0.95 < ratio < 1.25

    def test_3bit_decoding_penalty(self):
        """3-bit decoding is the most expensive (8 is not divisible by 3)."""
        assert DEQUANT_DECODE_INSTR_PER_WEIGHT[3] > \
            DEQUANT_DECODE_INSTR_PER_WEIGHT[4]
        assert DEQUANT_DECODE_INSTR_PER_WEIGHT[3] > \
            DEQUANT_DECODE_INSTR_PER_WEIGHT[2]

    def test_one_bit_deduced_from_two_bit(self):
        assert DEQUANT_DECODE_INSTR_PER_WEIGHT[1] == \
            DEQUANT_DECODE_INSTR_PER_WEIGHT[2]

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            profile_dequant_gemm(1, 128, 128, 5)

    def test_tmac_needs_fewer_instructions_than_dequant(self):
        """The core claim: LUT mpGEMV retires far fewer instructions."""
        for bits in (1, 2, 3, 4):
            tmac = profile_tmac_gemm(1, 4096, 4096, TMACConfig(bits=bits))
            dequant = profile_dequant_gemm(1, 4096, 4096, bits)
            assert tmac.total_instructions() < dequant.total_instructions()

    def test_dequant_traffic_scales_with_bits(self):
        low = profile_dequant_gemm(1, 4096, 4096, 2)
        high = profile_dequant_gemm(1, 4096, 4096, 4)
        assert high.dram_read_bytes > 1.5 * low.dram_read_bytes
