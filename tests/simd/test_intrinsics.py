"""Unit tests for the Table 1 intrinsics catalogue."""

import pytest

from repro.simd.intrinsics import INTRINSICS_TABLE, intrinsics_for


class TestIntrinsicsTable:
    def test_neon_row_matches_paper_table1(self):
        entry = intrinsics_for("neon")
        assert entry.lookup == "vqtbl1q_u8"
        assert entry.fast_aggregation == "vrhaddq_u8"
        assert entry.lookup_width_bits == 128

    def test_avx2_row_matches_paper_table1(self):
        entry = intrinsics_for("AVX2")
        assert entry.lookup == "_mm256_shuffle_epi8"
        assert entry.fast_aggregation == "_mm256_avg_epu8"
        assert entry.lookup_width_bits == 256

    def test_both_isas_present(self):
        assert set(INTRINSICS_TABLE) == {"neon", "avx2"}

    def test_unknown_isa_rejected(self):
        with pytest.raises(KeyError):
            intrinsics_for("sse2")
