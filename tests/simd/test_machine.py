"""Unit tests for the SIMD register machine."""

import numpy as np
import pytest

from repro.simd.isa import AVX2, NEON, InstructionCategory as IC
from repro.simd.machine import SIMDMachine, dequant_block_gemv, tmac_block_gemv


class TestInstructions:
    def test_tbl_matches_table_indexing(self, rng):
        machine = SIMDMachine(NEON)
        table = rng.integers(-100, 100, size=16).astype(np.int8)
        idx = rng.integers(0, 16, size=16).astype(np.uint8)
        out = machine.tbl(table, idx)
        np.testing.assert_array_equal(out, table[idx])

    def test_tbl_out_of_range_returns_zero(self):
        machine = SIMDMachine(NEON)
        table = np.arange(16, dtype=np.int8)
        idx = np.full(16, 200, dtype=np.uint8)
        np.testing.assert_array_equal(machine.tbl(table, idx), np.zeros(16))

    def test_tbl_requires_16_entries(self):
        machine = SIMDMachine(NEON)
        with pytest.raises(ValueError):
            machine.tbl(np.zeros(8, dtype=np.int8), np.zeros(16, dtype=np.uint8))

    def test_rhadd_semantics(self):
        machine = SIMDMachine(NEON)
        a = np.full(16, 3, dtype=np.int8)
        b = np.full(16, 4, dtype=np.int8)
        np.testing.assert_array_equal(machine.rhadd_i8(a, b), np.full(16, 4))

    def test_dot_int8(self, rng):
        machine = SIMDMachine(NEON)
        a = rng.integers(-10, 10, size=16).astype(np.int8)
        b = rng.integers(-10, 10, size=16).astype(np.int8)
        acc = np.zeros(4, dtype=np.int32)
        out = machine.dot_int8(acc, a, b)
        expected = (a.astype(np.int32) * b).reshape(4, 4).sum(axis=1)
        np.testing.assert_array_equal(out, expected)

    def test_unpack_instructions(self):
        machine = SIMDMachine(NEON)
        packed = np.arange(16, dtype=np.uint8) | 0xA0
        low = machine.and_mask(packed, 0x0F)
        high = machine.shr(packed, 4)
        np.testing.assert_array_equal(low, np.arange(16))
        np.testing.assert_array_equal(high, np.full(16, 0x0A))
        assert machine.instruction_counts()[IC.UNPACK] == 2

    def test_lane_width_enforced(self):
        machine = SIMDMachine(NEON)
        with pytest.raises(ValueError):
            machine.load(np.zeros(8, dtype=np.uint8))

    def test_avx2_lane_width(self):
        machine = SIMDMachine(AVX2)
        assert machine.lanes == 32
        machine.load(np.zeros(32, dtype=np.uint8))

    def test_counting_and_reset(self):
        machine = SIMDMachine(NEON)
        machine.load(np.zeros(16, dtype=np.uint8))
        machine.store(np.zeros(16))
        assert machine.total_instructions() == 2
        machine.reset()
        assert machine.total_instructions() == 0


class TestTmacBlock:
    def _numpy_reference(self, luts, indices):
        out = np.zeros(indices.shape[0], dtype=np.int64)
        for m in range(indices.shape[0]):
            out[m] = sum(int(luts[j, indices[m, j]])
                         for j in range(indices.shape[1]))
        return out

    def test_exact_aggregation_matches_reference(self, rng):
        machine = SIMDMachine(NEON)
        luts = rng.integers(-100, 100, size=(8, 16)).astype(np.int8)
        indices = rng.integers(0, 16, size=(32, 8)).astype(np.uint8)
        out = tmac_block_gemv(machine, luts, indices)
        np.testing.assert_array_equal(out, self._numpy_reference(luts, indices))

    def test_instruction_counts_match_closed_form(self, rng):
        """Lookups = M*J/lanes, one widening add per lookup."""
        machine = SIMDMachine(NEON)
        luts = rng.integers(-50, 50, size=(4, 16)).astype(np.int8)
        indices = rng.integers(0, 16, size=(64, 4)).astype(np.uint8)
        tmac_block_gemv(machine, luts, indices)
        counts = machine.instruction_counts()
        expected_lookups = 64 * 4 // 16
        assert counts[IC.LOOKUP] == expected_lookups
        assert counts[IC.ADD_INT16] == expected_lookups

    def test_fast_aggregation_is_approximate(self, rng):
        machine = SIMDMachine(NEON)
        luts = rng.integers(-100, 100, size=(16, 16)).astype(np.int8)
        indices = rng.integers(0, 16, size=(16, 16)).astype(np.uint8)
        exact = self._numpy_reference(luts, indices)
        fast = tmac_block_gemv(machine, luts, indices, fast_aggregation=True)
        # Unbiased-ish but not exact.
        assert not np.array_equal(fast, exact)
        assert np.abs(fast - exact).mean() < np.abs(exact).mean() * 0.2 + 32
        assert machine.instruction_counts()[IC.ADD_INT8] > 0

    def test_requires_lane_multiple(self, rng):
        machine = SIMDMachine(NEON)
        with pytest.raises(ValueError):
            tmac_block_gemv(machine, np.zeros((2, 16), dtype=np.int8),
                            np.zeros((10, 2), dtype=np.uint8))


class TestDequantBlock:
    def test_matches_numpy_dot(self, rng):
        machine = SIMDMachine(NEON)
        w = rng.integers(-20, 20, size=(8, 64)).astype(np.int8)
        a = rng.integers(-20, 20, size=64).astype(np.int8)
        out = dequant_block_gemv(machine, w, a)
        np.testing.assert_array_equal(
            out, w.astype(np.int64) @ a.astype(np.int64))

    def test_dot_instruction_count(self, rng):
        machine = SIMDMachine(NEON)
        w = rng.integers(-5, 5, size=(4, 32)).astype(np.int8)
        a = rng.integers(-5, 5, size=32).astype(np.int8)
        dequant_block_gemv(machine, w, a)
        assert machine.instruction_counts()[IC.DOT_INT8] == 4 * (32 // 16)

    def test_requires_lane_multiple(self, rng):
        machine = SIMDMachine(NEON)
        with pytest.raises(ValueError):
            dequant_block_gemv(machine, np.zeros((2, 20), dtype=np.int8),
                               np.zeros(20, dtype=np.int8))
