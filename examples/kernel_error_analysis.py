"""Kernel error analysis: how much accuracy do the T-MAC tricks cost?

Reproduces the Section 5.6 analysis interactively: for a Llama-sized GEMV
shape it measures the NMSE (against the un-quantized fp reference) of

* the llama.cpp-style dequantization kernel,
* T-MAC with exact aggregation (table quantization only), and
* T-MAC with fast 8-bit aggregation,

at every weight bit width, and prints the table-storage savings that mirror
consolidation and table quantization buy.

Run with:  python examples/kernel_error_analysis.py
"""

import numpy as np

from repro.baselines.dequant_gemm import DequantGEMM
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.lut import lut_storage_bytes
from repro.eval.nmse import nmse
from repro.workloads.generator import make_gemv_case


def error_table(m=1024, k=4096):
    print(f"=== NMSE vs un-quantized fp GEMV, shape {m}x{k}x1 ===")
    print(f"{'bits':>4} {'llama.cpp':>12} {'T-MAC':>12} {'T-MAC (+FA)':>12} "
          f"{'FA inflation':>12}")
    for bits in (4, 3, 2):
        case = make_gemv_case(m, k, bits=bits, group_size=128, seed=bits)
        reference = case.reference
        llama = nmse(reference, DequantGEMM(case.qweight).matmul(case.activation))
        tmac = nmse(reference, TMACKernel(
            case.qweight, TMACConfig(bits=bits)).matmul(case.activation))
        tmac_fa = nmse(reference, TMACKernel(
            case.qweight, TMACConfig(bits=bits, fast_aggregation=True)
        ).matmul(case.activation))
        print(f"{bits:>4} {llama:>12.3e} {tmac:>12.3e} {tmac_fa:>12.3e} "
              f"{tmac_fa / tmac:>11.2f}x")
    print("\nReading: T-MAC's table quantization adds essentially nothing on "
          "top of the weight quantization error (it matches llama.cpp); fast "
          "aggregation is the only lossy optimization.\n")


def storage_table(k=4096):
    print(f"=== lookup-table storage for one activation row, K={k} ===")
    combos = [
        ("fp16 table, full length", False, False),
        ("+ mirror consolidation", True, False),
        ("+ table quantization", False, True),
        ("both (T-MAC default)", True, True),
    ]
    baseline = lut_storage_bytes(1, k, 4, False, False)
    for label, mirror, quant in combos:
        size = lut_storage_bytes(1, k, 4, mirror, quant)
        print(f"{label:<28} {size:>8d} bytes  ({baseline / size:.1f}x smaller)")
    activation_bytes = k * 2
    print(f"(fp16 activation itself: {activation_bytes} bytes — the raw g=4 "
          f"table is 4x larger, the reduced one is equal in size)\n")


def aggregation_bias_demo():
    print("=== fast aggregation: where the error comes from ===")
    rng = np.random.default_rng(0)
    from repro.core.aggregation import exact_aggregate, fast_aggregate

    values = rng.integers(-100, 100, size=(10000, 32))
    exact = exact_aggregate(values, axis=-1)
    fast = fast_aggregate(values, axis=-1)
    bias = float(np.mean(fast - exact))
    rms = float(np.sqrt(np.mean((fast - exact) ** 2)))
    print(f"rounding-average tree over 32 int8 values: "
          f"residual bias {bias:+.2f}, RMS error {rms:.1f} "
          f"(values span ±100*32)")
    print("The probabilistic bias is subtracted, so only the rounding noise "
          "remains — that noise is the Table 3 NMSE inflation.")


if __name__ == "__main__":
    error_table()
    storage_table()
    aggregation_bias_demo()
