"""Plan a Llama-2-7B edge deployment: bits vs device vs throughput vs energy.

Walks the real Llama-2-7B layer shapes and, for every Table-2 device and
every weight bit width, estimates the packed model size, the decode
throughput of T-MAC vs the llama.cpp dequantization baseline, and the
energy per token — the information one needs to pick a deployment point
(the paper's Figures 6/8/9 condensed into one report).

Run with:  python examples/llama_edge_deployment.py
"""

from repro.energy import PowerModel
from repro.hardware import EVALUATION_DEVICES
from repro.llm import LLAMA_2_7B, estimate_token_throughput


def main():
    arch = LLAMA_2_7B
    print(f"model: {arch.name}  ({arch.num_parameters() / 1e9:.1f} B parameters)")
    print(f"fp16 footprint: {arch.weight_bytes(16) / 1e9:.1f} GB\n")

    header = (f"{'device':<16} {'bits':>4} {'size GB':>8} "
              f"{'llama.cpp tok/s':>16} {'T-MAC tok/s':>12} {'speedup':>8} "
              f"{'T-MAC J/token':>14}")
    print(header)
    print("-" * len(header))

    best = None
    for device in EVALUATION_DEVICES:
        power_model = PowerModel(device)
        for bits in (4, 3, 2, 1):
            size_gb = arch.weight_bytes(bits) / 1e9
            llama = estimate_token_throughput(device, arch, bits, "llama.cpp")
            tmac = estimate_token_throughput(device, arch, bits, "tmac")
            energy = power_model.cpu_token_energy(
                tmac.seconds_per_token, tmac.instructions_per_token,
                tmac.dram_gb_per_token, tmac.threads)
            print(f"{device.name:<16} {bits:>4} {size_gb:>8.2f} "
                  f"{llama.tokens_per_sec:>16.2f} {tmac.tokens_per_sec:>12.2f} "
                  f"{tmac.speedup_over(llama):>7.2f}x "
                  f"{energy.joules_per_token:>14.3f}")
            if best is None or tmac.tokens_per_sec > best[2]:
                best = (device.name, bits, tmac.tokens_per_sec)
        print()

    device_name, bits, tokens_per_sec = best
    print(f"fastest deployment point: {bits}-bit on {device_name} "
          f"at ~{tokens_per_sec:.0f} tokens/s (model estimate)")
    print("\nNote: latencies/energies come from the repository's roofline and "
          "power models of these devices, not from wall-clock measurements; "
          "see DESIGN.md for the substitution rationale.")


if __name__ == "__main__":
    main()
