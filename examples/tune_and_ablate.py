"""Tune tile configurations and walk the optimization ablation.

Shows the performance-engineering side of the library:

1. run the tile-configuration tuner (the AutoTVM stand-in) for a Llama GEMV
   shape on two devices with different register files (NEON vs AVX2), and
2. apply the paper's Figure-10 optimization stages cumulatively and report
   the modeled latency after each one.

Run with:  python examples/tune_and_ablate.py
"""

from repro.core.config import TMACConfig, ablation_stages
from repro.hardware import CostModel, M2_ULTRA, SURFACE_BOOK_3
from repro.tuning import Tuner


def tuning_demo(m=4096, k=4096, bits=4):
    print(f"=== tile-configuration tuning for {m}x{k} GEMV at {bits} bits ===")
    for device in (M2_ULTRA, SURFACE_BOOK_3):
        result = Tuner(device).tune(m, k, TMACConfig(bits=bits))
        best = result.best_config
        print(f"{device.name:<16} evaluated {len(result.records):>3} "
              f"candidates; best tile: m_tm={best.m_tm:<4} k_tk={best.k_tk:<4} "
              f"resident LUTs={best.num_onchip_luts:<3} "
              f"-> {result.best_latency_seconds * 1e3:.4f} ms "
              f"({result.improvement:.2f}x over the default)")
    print()


def ablation_demo(m=4096, k=4096, bits=4):
    print(f"=== cumulative optimizations, {m}x{k} GEMV at {bits} bits, "
          f"M2-Ultra ===")
    model = CostModel(M2_ULTRA)
    llama = model.dequant_gemv_latency(m, k, bits, threads=1)
    print(f"{'stage':<10} {'1-thread ms':>12} {'8-thread ms':>12} "
          f"{'vs llama.cpp (1T)':>18}")
    print(f"{'llama.cpp':<10} {llama.milliseconds:>12.3f} "
          f"{model.dequant_gemv_latency(m, k, bits).milliseconds:>12.3f} "
          f"{'1.00x':>18}")
    for config in ablation_stages(bits=bits):
        single = model.tmac_gemv_latency(m, k, config, threads=1)
        multi = model.tmac_gemv_latency(m, k, config)
        print(f"{config.name:<10} {single.milliseconds:>12.3f} "
              f"{multi.milliseconds:>12.3f} "
              f"{llama.seconds / single.seconds:>17.2f}x")
    print("\n(TM-base starts behind llama.cpp; table quantization, the "
          "LUT-centric layout and interleaving recover and extend the lead, "
          "as in the paper's Figure 10.)")


if __name__ == "__main__":
    tuning_demo()
    ablation_demo()
