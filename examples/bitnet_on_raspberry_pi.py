"""BitNet on a Raspberry Pi: the paper's headline deployment, end to end.

Two parts:

1. *Numerical*: build a small BitNet-style (ternary-weight) transformer and
   generate text through the T-MAC engine, verifying that the ternary
   weights — interpreted as 2-bit codes and decomposed into two one-bit
   matrices, exactly as the paper deploys BitNet-b1.58 — produce the same
   generations as the dequantization engine.
2. *Analytic*: estimate BitNet-b1.58-3B decode throughput on the
   Raspberry Pi 5 (paper: ~11 tokens/s) and on M2-Ultra single/8-core
   (paper: 30 / 71 tokens/s).

Run with:  python examples/bitnet_on_raspberry_pi.py
"""

import numpy as np

from repro.backends import get_backend
from repro.hardware import M2_ULTRA, RASPBERRY_PI_5
from repro.llm import (
    BITNET_3B,
    Generator,
    TransformerModel,
    estimate_token_throughput,
    tiny_arch,
)
from repro.llm.model import generate_random_weights


def numerical_demo():
    print("=== numerical demo: ternary-weight generation through T-MAC ===")
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=64)
    weights = generate_random_weights(arch, seed=42)

    engines = {
        "llama.cpp (dequant)": get_backend("dequant", bitnet=True,
                                           group_size=32),
        "T-MAC (LUT)": get_backend("tmac", bitnet=True, group_size=32),
    }
    prompt = [11, 7, 42, 3]
    generations = {}
    for name, engine in engines.items():
        model = TransformerModel(arch, engine=engine, weights=weights)
        result = Generator(model).generate(prompt, max_new_tokens=8)
        generations[name] = result.generated_tokens
        print(f"{name:>22}: {result.generated_tokens}")

    agreement = np.mean([a == b for a, b in
                         zip(*generations.values())])
    print(f"token agreement between the two kernels: {agreement:.0%}\n")


def analytic_demo():
    print("=== analytic demo: BitNet-b1.58-3B decode throughput ===")
    print(f"packed 2-bit model size: "
          f"{BITNET_3B.weight_bytes(2) / 1e9:.2f} GB\n")
    cases = [
        ("Raspberry Pi 5, 4 threads", RASPBERRY_PI_5, None),
        ("M2-Ultra, 1 thread", M2_ULTRA, 1),
        ("M2-Ultra, 8 threads", M2_ULTRA, 8),
    ]
    for label, device, threads in cases:
        llama = estimate_token_throughput(device, BITNET_3B, 2, "llama.cpp",
                                          threads=threads)
        tmac = estimate_token_throughput(device, BITNET_3B, 2, "tmac",
                                         threads=threads)
        print(f"{label:<26} llama.cpp {llama.tokens_per_sec:6.1f} tok/s   "
              f"T-MAC {tmac.tokens_per_sec:6.1f} tok/s   "
              f"({tmac.speedup_over(llama):.1f}x)")
    print("\n(paper measurements: ~11 tok/s on Raspberry Pi 5, 30 tok/s on a "
          "single M2-Ultra core, 71 tok/s on eight cores)")


if __name__ == "__main__":
    numerical_demo()
    analytic_demo()
