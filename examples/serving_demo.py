"""Serving demo: continuous batching with a paged, prefix-shared KV cache.

Builds a small transformer on the T-MAC backend, submits a burst of
requests that share a "system prompt" prefix (as chat traffic does), and
drives the continuous-batching scheduler against a byte-budgeted KV page
pool (``kv_cache_bytes``) until every request completes — printing the
per-step batch composition and the paging/prefix/batching statistics at
the end.  The same requests are then replayed one at a time to show that
batching, paging and prefix sharing do not change a single token.

Run with:  python examples/serving_demo.py
"""

import numpy as np

from repro.backends import get_backend
from repro.core.plan import plan_cache_stats
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine


def main():
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=96)
    weights = generate_random_weights(arch, seed=7)
    model = TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)

    engine = ServingEngine(model, max_batch_size=4,
                           kv_cache_bytes=2 << 20, page_size=8,
                           prefill_chunk=16)
    rng = np.random.default_rng(0)
    system_prompt = rng.integers(1, arch.vocab_size, size=24).tolist()
    requests = []
    for i in range(8):
        prompt = system_prompt + rng.integers(
            1, arch.vocab_size, size=2 + i % 3).tolist()
        budget = 4 + 2 * (i % 4)
        requests.append((engine.submit(prompt, max_new_tokens=budget),
                         prompt, budget))

    print(f"submitted {len(requests)} requests "
          f"(max_batch_size={engine.max_batch_size})\n")
    step = 0
    while engine.has_work:
        summary = engine.step()
        step += 1
        print(f"step {step:>2}: batch={summary['batch_size']} "
              f"active={summary['active']} waiting={summary['waiting']}")
    results = engine.results()

    print("\ngenerations (batched == sequential replay):")
    generator = Generator(TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights))
    for session_id, prompt, budget in requests:
        batched = results[session_id].generated_tokens
        sequential = generator.generate(
            prompt, max_new_tokens=budget).generated_tokens
        marker = "OK " if batched == sequential else "DIFF"
        print(f"  [{marker}] session {session_id}: prompt {prompt} -> {batched}")

    stats = engine.serving_stats()
    print(f"\nbatched decode steps: {stats['decode_steps']}, "
          f"mean batch size {stats['mean_batch_size']:.1f}")
    print(f"LUT precomputes saved by per-step sharing: {stats['lut_reuses']}")
    print(f"KV pool: {stats['kv_num_blocks']:.0f} pages of "
          f"{stats['kv_block_size']:.0f} tokens, peak "
          f"{stats['kv_peak_bytes']:.0f} bytes "
          f"(peak shared pages: {stats['peak_shared_blocks']:.0f})")
    print(f"prefix cache: {stats['prefix_hit_tokens']:.0f} tokens served "
          f"from shared pages ({stats['prefix_hit_rate']:.0%} hit rate), "
          f"{stats['preemptions']:.0f} preemptions")
    cache = plan_cache_stats()
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(sequential-replay model rebind hit the cache)")


if __name__ == "__main__":
    main()
