"""Serving demo: continuous batching over concurrent generation requests.

Builds a small transformer on the T-MAC backend, submits a burst of
requests with different prompts and generation budgets, and drives the
continuous-batching scheduler until every request completes — printing the
per-step batch composition and the cache/batching statistics at the end.
The same requests are then replayed one at a time to show that batching
does not change a single token.

Run with:  python examples/serving_demo.py
"""

import numpy as np

from repro.backends import get_backend
from repro.core.plan import plan_cache_stats
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine


def main():
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=96)
    weights = generate_random_weights(arch, seed=7)
    model = TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)

    engine = ServingEngine(model, max_batch_size=4)
    rng = np.random.default_rng(0)
    requests = []
    for i in range(8):
        prompt = rng.integers(1, arch.vocab_size, size=2 + i % 3).tolist()
        budget = 4 + 2 * (i % 4)
        requests.append((engine.submit(prompt, max_new_tokens=budget),
                         prompt, budget))

    print(f"submitted {len(requests)} requests "
          f"(max_batch_size={engine.max_batch_size})\n")
    step = 0
    while engine.has_work:
        summary = engine.step()
        step += 1
        print(f"step {step:>2}: batch={summary['batch_size']} "
              f"active={summary['active']} waiting={summary['waiting']}")
    results = engine.results()

    print("\ngenerations (batched == sequential replay):")
    generator = Generator(TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights))
    for session_id, prompt, budget in requests:
        batched = results[session_id].generated_tokens
        sequential = generator.generate(
            prompt, max_new_tokens=budget).generated_tokens
        marker = "OK " if batched == sequential else "DIFF"
        print(f"  [{marker}] session {session_id}: prompt {prompt} -> {batched}")

    stats = engine.serving_stats()
    print(f"\nbatched decode steps: {stats['decode_steps']}, "
          f"mean batch size {stats['mean_batch_size']:.1f}")
    print(f"LUT precomputes saved by per-step sharing: {stats['lut_reuses']}")
    cache = plan_cache_stats()
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(sequential-replay model rebind hit the cache)")


if __name__ == "__main__":
    main()
