"""Gateway demo: stream a completion over HTTP and read the live metrics.

Boots the full serving stack — paged continuous-batching engine, engine
runner thread, asyncio HTTP gateway — on an ephemeral local port, then
acts as its own client:

1. streams one completion over ``POST /v1/completions`` (SSE chunks),
   printing each token as it arrives and the measured TTFT;
2. checks the chunks really were incremental (the first token chunk
   arrived while the engine still had decode work left);
3. runs a burst of concurrent streaming clients and verifies every
   stream is token-identical to a sequential ``Generator`` replay;
4. scrapes ``GET /healthz`` and ``GET /metrics`` and prints the
   interesting series;
5. shuts the stack down cleanly.

Doubles as the CI gateway smoke job — it exits non-zero if any of the
checks fail.

Run with:  python examples/gateway_demo.py
"""

import asyncio
import time

from repro.backends import get_backend
from repro.core.config import GatewayConfig
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.server import serve_model
from repro.server.client import http_get, stream_completion


def build_model():
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=128)
    weights = generate_random_weights(arch, seed=7)
    model = TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)
    return arch, weights, model


async def main():
    arch, weights, model = build_model()
    gateway = serve_model(model, GatewayConfig(port=0),
                          max_batch_size=4, kv_cache_bytes=2 << 20,
                          page_size=8, prefill_chunk=16)
    gateway.runner.start()
    host, port = await gateway.start()
    print(f"gateway listening on http://{host}:{port}\n")

    # -- 1/2: one streaming completion, incremental by construction ----- #
    prompt = [5, 17, 29, 41, 53]
    start = time.perf_counter()
    stream = await stream_completion(
        host, port, {"prompt": prompt, "max_tokens": 24})
    first = await stream.__anext__()
    ttft_ms = (time.perf_counter() - start) * 1e3
    engine_busy_at_first_chunk = (
        await asyncio.wrap_future(gateway.runner.call(
            lambda e: e.has_work)))
    tokens = [first["choices"][0]["token"]]
    print(f"streaming: first token {tokens[0]} after {ttft_ms:.1f} ms "
          f"(engine still busy: {engine_busy_at_first_chunk})")
    finish_reason = None
    async for chunk in stream:
        choice = chunk["choices"][0]
        if choice["token"] is not None:
            tokens.append(choice["token"])
        else:
            finish_reason = choice["finish_reason"]
    print(f"streamed {len(tokens)} tokens, finish_reason={finish_reason}")
    assert engine_busy_at_first_chunk, \
        "first chunk should arrive before generation completes"
    assert finish_reason == "length"

    # -- 3: concurrent clients, token-identical to sequential ----------- #
    prompts = [[11, 23, 35] + [1 + i] for i in range(6)]

    async def client(p):
        collected = []
        s = await stream_completion(host, port,
                                    {"prompt": p, "max_tokens": 8})
        async for chunk in s:
            token = chunk["choices"][0]["token"]
            if token is not None:
                collected.append(token)
        return collected

    outcomes = await asyncio.gather(*[client(p) for p in prompts])
    generator = Generator(TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights))
    matches = 0
    for p, got in zip(prompts, outcomes):
        expected = generator.generate(p, max_new_tokens=8).generated_tokens
        marker = "OK " if got == expected else "DIFF"
        matches += got == expected
        print(f"  [{marker}] prompt {p} -> {got}")
    assert matches == len(prompts), "streams must match sequential replay"

    # -- 4: health + metrics ------------------------------------------- #
    status, _, body = await http_get(host, port, "/healthz")
    print(f"\n/healthz -> {status} {body.decode()}")
    assert status == 200
    status, _, body = await http_get(host, port, "/metrics")
    assert status == 200
    wanted = ("gateway_ttft_seconds_count",
              "gateway_token_latency_seconds_count",
              "gateway_streamed_tokens_total",
              "gateway_queue_depth",
              "gateway_plan_cache_hit_rate",
              "gateway_prefix_cache_hit_rate")
    print("/metrics (selected series):")
    for line in body.decode().splitlines():
        if line.startswith(wanted):
            print(f"  {line}")
    assert sum(1 for line in body.decode().splitlines()
               if line.startswith("gateway_ttft_seconds_count")) == 1

    await gateway.stop()
    gateway.runner.stop()
    print("\nclean shutdown: OK")


if __name__ == "__main__":
    asyncio.run(main())
