"""Quickstart: mixed-precision GEMM with T-MAC in a few lines.

Quantizes a weight matrix to 2 bits, builds a T-MAC kernel (offline stage),
and multiplies activations against it without ever dequantizing the weights
(online stage) — then checks the result against the floating-point
reference and shows the memory saving.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import TMACConfig, TMACKernel, plan_cache_stats, quantize_weights, \
    tmac_gemm
from repro.baselines.reference import reference_gemm


def main():
    rng = np.random.default_rng(0)

    # A "linear layer": 1024 outputs x 1024 inputs (a Llama-sized projection
    # scaled down so the example runs instantly).
    out_features, in_features = 1024, 1024
    weights = rng.standard_normal((out_features, in_features)).astype(np.float32)
    activation = rng.standard_normal((1, in_features)).astype(np.float32)

    # --- One-shot functional API -----------------------------------------
    output = tmac_gemm(activation, weights, bits=2, group_size=128)
    reference = reference_gemm(activation, weights)
    nmse = float(np.mean((output - reference) ** 2) / np.mean(reference ** 2))
    print(f"one-shot tmac_gemm: output shape {output.shape}, "
          f"NMSE vs fp32 reference = {nmse:.2e} (2-bit quantization error)")

    # A second call against the same weights reuses the cached kernel plan —
    # the offline preprocessing (bit planes, packing, permutation) runs once.
    tmac_gemm(activation, weights, bits=2, group_size=128)
    stats = plan_cache_stats()
    print(f"plan cache after a repeated call: {stats['hits']} hit(s), "
          f"{stats['misses']} miss(es)")

    # --- Reusable kernel (the normal inference path) ---------------------
    # Offline: quantize once, preprocess the weights once.
    qweight = quantize_weights(weights, bits=2, group_size=128)
    config = TMACConfig(
        bits=2,                     # weight bit width
        g=4,                        # LUT group size (fills one TBL register)
        mirror_consolidation=True,  # store half the table, negate the rest
        table_quantization=True,    # int8 tables with dynamic scales
        fast_aggregation=False,     # lossy speedup, off by default
    )
    kernel = TMACKernel(qweight, config)

    # Online: many matmuls against the same weights.
    for step in range(3):
        act = rng.standard_normal((1, in_features)).astype(np.float32)
        out = kernel.matmul(act)
        print(f"decode step {step}: |out|_max = {np.abs(out).max():.3f}")

    fp16_bytes = weights.size * 2
    packed_bytes = qweight.memory_bytes()
    print(f"\nweight memory: fp16 {fp16_bytes / 1e6:.2f} MB -> "
          f"2-bit packed {packed_bytes / 1e6:.2f} MB "
          f"({fp16_bytes / packed_bytes:.1f}x smaller)")
    table = kernel.precompute(activation)
    print(f"lookup tables for one activation row: {table.storage_bytes()} bytes "
          f"({table.stored_length} int8 entries per group after mirror "
          f"consolidation)")


if __name__ == "__main__":
    main()
