"""Extension ablation: the LUT group size ``g``.

Section 4 of the paper argues that ``g = 4`` is the sweet spot: the
``2^g``-entry table exactly fills one 128-bit TBL/PSHUF register, whereas
``g = 5`` needs two registers and the slower TBL2/AVX-512 lookups, and
smaller ``g`` wastes lookup reach.  This benchmark quantifies that argument
with the storage model and the register-footprint math, and verifies the
numerical kernel stays correct for non-default group sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.lut import lut_storage_bytes
from repro.core.tiling import tmac_register_footprint
from repro.baselines.reference import quantized_reference_gemm
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights

HEADERS = ["g", "table entries", "LUT bytes (K=4096, int8+mirror)",
           "fits one 128-bit register", "lookups per 64 one-bit weights"]


def test_group_size_ablation(benchmark, record_table):
    rows = []
    for g in (2, 3, 4, 5, 6):
        entries = (1 << g) // 2  # with mirror consolidation
        storage = lut_storage_bytes(1, 4096, g, True, True)
        fits = entries <= 16
        lookups_per_64 = 64 / g / 16  # one TBL covers 16 indices of g bits
        rows.append([g, entries, storage, "yes" if fits else "no",
                     f"{lookups_per_64:.2f}"])
    record_table("ablation_group_size",
                 "Extension — LUT group size trade-off (g=4 fills one "
                 "TBL register)", HEADERS, rows)

    # g=4 is the largest group whose (consolidated) table still fits a single
    # 128-bit lookup register.
    assert (1 << 4) // 2 <= 16
    assert (1 << 5) // 2 * 2 > 16  # unconsolidated g=5 exceeds one register

    # Register footprint grows monotonically with g for a fixed tile.
    footprints = [
        tmac_register_footprint(m_tm=32, k_tk=g, g=g,
                                table_quantization=True,
                                mirror_consolidation=True).total_bytes
        for g in (2, 4)
    ]
    assert footprints[0] <= footprints[1]

    # Numerical correctness holds for non-default group sizes too.
    w = gaussian_weights(32, 96, seed=0)
    a = gaussian_activation(1, 96, seed=1)
    qw = quantize_weights(w, bits=3, group_size=24)
    ref = quantized_reference_gemm(a, qw)
    for g in (2, 3, 4, 6):
        if 24 % g:
            continue
        out = TMACKernel(qw, TMACConfig(bits=3, g=g, table_quantization=False,
                                        act_dtype="float32")).matmul(a)
        np.testing.assert_allclose(out, ref, atol=1e-3, rtol=1e-4)

    benchmark(lambda: lut_storage_bytes(1, 4096, 4, True, True))
