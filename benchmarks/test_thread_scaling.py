"""Thread/process scaling of the parallel executors: tok/s and mpGEMM GB/s.

The paper's headline claim is LUT-based mpGEMM throughput that scales
near-linearly with CPU threads (Figures 6b/8b).  This benchmark exercises
the reproduction's :class:`~repro.core.executor.ParallelExecutor` (GIL-bound
threads) and :class:`~repro.core.executor.ProcessExecutor` (shared-memory
worker processes) at 1/2/4 workers and records, into
``benchmarks/results/thread_scaling.txt`` and ``BENCH_thread_scaling.json``:

* measured end-to-end serving throughput (tok/s) on the benchmark model,
* measured mpGEMM weight-traversal bandwidth (GB/s) on the Llama-2-7B
  attention shape (S0, 4096x4096, 4-bit) for both the thread pool and the
  process pool,
* the roofline cost model's projected scaling on the Table 2 devices
  (:meth:`~repro.hardware.cost_model.CostModel.thread_scaling` and
  :meth:`~repro.hardware.cost_model.CostModel.process_scaling`).

Every *measured* series row is annotated with the host core count — a
"4 threads" number measured on a 1-core container is not a scaling
datapoint, and the annotation keeps that visible in the recorded artifact.

Correctness is asserted unconditionally: both pooled executors must be
*bit-identical* to the serial vectorized executor on every Figure 6/7
weight shape, and generated tokens must not change with the worker count.
The cost-model >= 1.5x thread projection at 4 threads is always asserted;
the *measured* >= 1.5x assertions (threads and processes) additionally
require an explicit opt-in (``REPRO_ASSERT_THREAD_SCALING=1``) on a host
with >= 4 usable cores — wall-clock scaling depends on hardware a shared CI
runner cannot promise.  On a single-core host the process-pool measurement
is skipped with an explicit note row rather than recorded as a meaningless
slowdown.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core import shm
from repro.core.config import TMACConfig
from repro.core.executor import (
    process_executor_stats,
    reset_parallel_executor_stats,
    reset_process_executor_stats,
)
from repro.core.kernel import TMACKernel
from repro.core.plan import clear_plan_cache
from repro.hardware import CostModel, EVALUATION_DEVICES
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.quant.uniform import quantize_weights
from repro.serving import ServingEngine
from repro.workloads.generator import gaussian_activation, gaussian_weights
from repro.workloads.shapes import KERNEL_SHAPES

THREAD_COUNTS = (1, 2, 4)
NUM_SESSIONS = 6
MAX_NEW_TOKENS = 8


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def assert_measured_scaling() -> bool:
    """Whether to hard-assert measured wall-clock speedups (opt-in)."""
    return bool(os.environ.get("REPRO_ASSERT_THREAD_SCALING")) and \
        available_cores() >= 4


def measured_label(base: str) -> str:
    """Tag a measured series with the cores it actually ran on."""
    return f"{base} (measured, {available_cores()} cores)"


def parallel_config(threads: int, threshold: int = 0) -> TMACConfig:
    return TMACConfig(bits=4, executor="parallel", num_threads=threads,
                      parallel_threshold=threshold)


def process_config(workers: int, threshold: int = 0) -> TMACConfig:
    # Explicit num_workers pins the process pool (no cost-model delegation).
    return TMACConfig(bits=4, executor="process", num_workers=workers,
                      parallel_threshold=threshold)


def test_parallel_parity_on_fig6_fig7_shapes(record_table):
    """Bit-identity on every Figure 6/7 weight shape (acceptance gate).

    N=1 covers the Figure 6 mpGEMV regime on all six shapes; S0 is
    additionally checked at N=8 as a CI-sized stand-in for the Figure 7
    mpGEMM regime (the kernel is row-independent, so the row count does
    not interact with the sharding math — asserted at N=2..3 across every
    table mode in the unit tests).  Both pooled executors — threads and
    shared-memory processes — are held to the same standard.
    """
    check_process = shm.shm_available()
    rows = []
    for shape in KERNEL_SHAPES:
        qw = quantize_weights(gaussian_weights(shape.m, shape.k, seed=1),
                              bits=4, group_size=128)
        # executor pinned: the baseline must stay serial even when
        # REPRO_EXECUTOR flips the process default (CI legs 2/3).
        serial_kernel = TMACKernel(qw, TMACConfig(bits=4,
                                                  executor="vectorized"))
        parallel_kernel = TMACKernel.from_plan(serial_kernel.plan,
                                               parallel_config(4))
        process_kernel = (TMACKernel.from_plan(serial_kernel.plan,
                                               process_config(4))
                          if check_process else None)
        n_values = (1, 8) if shape.label == "S0" else (1,)
        for n in n_values:
            a = gaussian_activation(n, shape.k, seed=2)
            serial = serial_kernel.matmul(a)
            np.testing.assert_array_equal(serial, parallel_kernel.matmul(a))
            if process_kernel is not None:
                np.testing.assert_array_equal(serial,
                                              process_kernel.matmul(a))
            rows.append([shape.label, f"{shape.m}x{shape.k}x{n}",
                         "bit-identical",
                         "bit-identical" if check_process else "skipped"])
    record_table("thread_scaling_parity",
                 "Pooled executors vs serial vectorized — fig6/fig7 shapes",
                 ["shape", "MxKxN", "threads vs serial",
                  "processes vs serial"], rows)


@pytest.fixture(scope="module")
def scaling_rows():
    """Accumulates the formatted measured + modeled rows for the table."""
    return []


@pytest.fixture(scope="module")
def scaling_points():
    """Accumulates structured (numeric) datapoints for BENCH_*.json."""
    return []


@pytest.fixture(scope="module")
def s0_plan():
    shape = KERNEL_SHAPES[0]
    qw = quantize_weights(gaussian_weights(shape.m, shape.k, seed=3),
                          bits=4, group_size=128)
    plan = TMACKernel(qw, TMACConfig(bits=4, executor="vectorized")).plan
    return plan, qw.memory_bytes()


def _measure_kernel_series(plan, weight_bytes, make_config, counts):
    """Best-of-3 S0 mpGEMV latency per worker count; asserts parity."""
    shape = KERNEL_SHAPES[0]
    a = gaussian_activation(1, shape.k, seed=4)
    seconds = {}
    outputs = {}
    for workers in counts:
        kernel = TMACKernel.from_plan(plan, make_config(workers))
        kernel.matmul(a)  # warm the gather metadata / worker pool
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            outputs[workers] = kernel.matmul(a)
            best = min(best, time.perf_counter() - start)
        seconds[workers] = best
    for workers in counts[1:]:
        np.testing.assert_array_equal(outputs[counts[0]], outputs[workers])
    return seconds


def _append_measured(scaling_rows, scaling_points, series, seconds,
                     weight_bytes):
    for workers, secs in seconds.items():
        speedup = seconds[min(seconds)] / secs
        gbps = weight_bytes / secs / 1e9
        scaling_rows.append([
            measured_label(series), workers, f"{secs * 1e3:.1f} ms",
            f"{gbps:.2f} GB/s", f"{speedup:.2f}x",
        ])
        scaling_points.append({
            "series": series, "kind": "measured",
            "host_cores": available_cores(), "workers": workers,
            "latency_ms": secs * 1e3, "bandwidth_gbps": gbps,
            "speedup": speedup,
        })


def test_mpgemm_bandwidth_thread_scaling(s0_plan, scaling_rows,
                                         scaling_points, benchmark):
    """Measured mpGEMM GB/s at 1/2/4 threads on S0 (4096x4096, 4-bit)."""
    reset_parallel_executor_stats()
    plan, weight_bytes = s0_plan
    shape = KERNEL_SHAPES[0]
    a = gaussian_activation(1, shape.k, seed=4)

    seconds = _measure_kernel_series(plan, weight_bytes, parallel_config,
                                     THREAD_COUNTS)
    _append_measured(scaling_rows, scaling_points, "mpGEMM S0 threads",
                     seconds, weight_bytes)

    if assert_measured_scaling():
        assert seconds[1] / seconds[4] >= 1.5, (
            f"4-thread mpGEMM speedup {seconds[1] / seconds[4]:.2f}x < 1.5x"
        )

    kernel = TMACKernel.from_plan(plan, parallel_config(THREAD_COUNTS[-1]))
    benchmark(lambda: kernel.matmul(a))


def test_mpgemm_bandwidth_process_scaling(s0_plan, scaling_rows,
                                          scaling_points):
    """Measured mpGEMM GB/s at 1/2/4 shared-memory workers on S0.

    The tentpole claim: sharding output tiles across processes sidesteps
    the GIL, so on a multi-core host the 4-worker run must clear 1.5x
    (asserted under ``REPRO_ASSERT_THREAD_SCALING=1``).  On a single-core
    host the measurement is meaningless — IPC overhead with no parallelism
    — so it is skipped with an explicit note row instead of recorded.
    """
    if not shm.shm_available():
        scaling_rows.append([measured_label("mpGEMM S0 processes"), "-",
                             "skipped (shared memory unavailable)", "-",
                             "-"])
        return
    reset_process_executor_stats()
    plan, weight_bytes = s0_plan
    cores = available_cores()
    if cores < 2:
        # Still exercise the pool end-to-end (parity at 2 workers) so the
        # code path is covered; just don't record wall-clock "scaling".
        shape = KERNEL_SHAPES[0]
        a = gaussian_activation(1, shape.k, seed=4)
        serial = TMACKernel.from_plan(
            plan, TMACConfig(bits=4, executor="vectorized")).matmul(a)
        pooled = TMACKernel.from_plan(plan, process_config(2)).matmul(a)
        np.testing.assert_array_equal(serial, pooled)
        scaling_rows.append([measured_label("mpGEMM S0 processes"), "-",
                             "skipped (1 core: no parallel speedup "
                             "measurable)", "parity checked", "-"])
        scaling_points.append({
            "series": "mpGEMM S0 processes", "kind": "measured",
            "host_cores": cores, "skipped": "1 core",
        })
        return

    seconds = _measure_kernel_series(plan, weight_bytes, process_config,
                                     THREAD_COUNTS)
    _append_measured(scaling_rows, scaling_points, "mpGEMM S0 processes",
                     seconds, weight_bytes)
    stats = process_executor_stats()
    assert stats["process_dispatches"] > 0, (
        "process-pool series did not dispatch to worker processes"
    )
    if assert_measured_scaling():
        assert seconds[1] / seconds[4] >= 1.5, (
            f"4-worker process-pool speedup "
            f"{seconds[1] / seconds[4]:.2f}x < 1.5x"
        )


def test_serving_throughput_thread_scaling(scaling_rows, scaling_points):
    """Measured serving tok/s at 1/2/4 threads (continuous batching)."""
    clear_plan_cache()
    reset_parallel_executor_stats()
    arch = tiny_arch(hidden_size=256, intermediate_size=512, num_layers=2,
                     num_heads=4, vocab_size=997, max_seq_len=96)
    weights = generate_random_weights(arch, seed=17)
    prompts = [[(5 * i + 1) % arch.vocab_size, 7, (3 * i + 2) % arch.vocab_size]
               for i in range(NUM_SESSIONS)]

    tok_s = {}
    token_sets = {}
    for threads in THREAD_COUNTS:
        backend = get_backend(
            "tmac", bits=4, group_size=64,
            config=parallel_config(threads, threshold=2048))
        model = TransformerModel(arch, engine=backend, weights=weights)
        best = float("inf")
        for _ in range(2):
            engine = ServingEngine(model, max_batch_size=NUM_SESSIONS)
            ids = [engine.submit(p, max_new_tokens=MAX_NEW_TOKENS)
                   for p in prompts]
            start = time.perf_counter()
            results = engine.run()
            best = min(best, time.perf_counter() - start)
        tokens = sum(len(results[sid].generated_tokens) for sid in ids)
        tok_s[threads] = tokens / best
        token_sets[threads] = [results[sid].generated_tokens for sid in ids]

    # Determinism: the thread count must never change any session's output.
    for threads in THREAD_COUNTS[1:]:
        assert token_sets[threads] == token_sets[1]

    for threads in THREAD_COUNTS:
        scaling_rows.append([
            measured_label("serving decode"), threads, "-",
            f"{tok_s[threads]:.1f} tok/s",
            f"{tok_s[threads] / tok_s[1]:.2f}x",
        ])
        scaling_points.append({
            "series": "serving decode", "kind": "measured",
            "host_cores": available_cores(), "workers": threads,
            "tokens_per_s": tok_s[threads],
            "speedup": tok_s[threads] / tok_s[1],
        })

    if assert_measured_scaling():
        assert tok_s[4] >= 1.5 * tok_s[1], (
            f"4-thread serving speedup {tok_s[4] / tok_s[1]:.2f}x < 1.5x"
        )


def test_cost_model_thread_scaling(scaling_rows, scaling_points,
                                   record_table, record_bench):
    """Projected scaling on the Table 2 devices (thread model asserted).

    The thread projection must clear 1.5x at 4 threads on every device.
    The process projection is recorded but *not* asserted: it charges the
    IPC/shared-memory overhead term, and on devices where the modeled
    serial mpGEMV latency is tens of microseconds that overhead rightly
    swamps the parallel win — which is exactly why the dispatch heuristic
    (:func:`repro.hardware.cost_model.pool_dispatch_choice`) exists.
    """
    shape = KERNEL_SHAPES[0]
    config = TMACConfig(bits=4)
    for device in EVALUATION_DEVICES:
        model = CostModel(device)
        counts = [t for t in THREAD_COUNTS if t <= device.cpu.cores]
        latencies = model.thread_scaling(1, shape.m, shape.k, config, counts)
        process_latencies = model.process_scaling(1, shape.m, shape.k,
                                                  config, counts)
        base = latencies[1].seconds
        for threads in counts:
            latency = latencies[threads]
            scaling_rows.append([
                f"mpGEMM S0 thread model ({device.name})", threads,
                f"{latency.milliseconds:.3f} ms",
                latency.bound,
                f"{base / latency.seconds:.2f}x",
            ])
            scaling_points.append({
                "series": f"thread model {device.name}", "kind": "modeled",
                "workers": threads, "latency_ms": latency.milliseconds,
                "bound": latency.bound,
                "speedup": base / latency.seconds,
            })
            process_latency = process_latencies[threads]
            scaling_rows.append([
                f"mpGEMM S0 process model ({device.name})", threads,
                f"{process_latency.milliseconds:.3f} ms",
                process_latency.bound,
                f"{base / process_latency.seconds:.2f}x",
            ])
            scaling_points.append({
                "series": f"process model {device.name}", "kind": "modeled",
                "workers": threads,
                "latency_ms": process_latency.milliseconds,
                "bound": process_latency.bound,
                "speedup": base / process_latency.seconds,
            })
        if 4 in counts:
            assert base / latencies[4].seconds >= 1.5, (
                f"{device.name}: modeled 4-thread speedup below 1.5x"
            )

    record_table(
        "thread_scaling",
        "Pooled executor scaling — measured and modeled "
        f"(host cores: {available_cores()})",
        ["series", "workers", "latency", "throughput / bound", "speedup"],
        scaling_rows,
    )
    record_bench(
        "thread_scaling",
        scaling_points,
        params={
            "worker_counts": list(THREAD_COUNTS),
            "shape": f"{shape.m}x{shape.k}",
            "bits": 4,
            "num_sessions": NUM_SESSIONS,
            "max_new_tokens": MAX_NEW_TOKENS,
            "shm_available": shm.shm_available(),
            "measured_assertions": assert_measured_scaling(),
        },
        metrics=_headline_metrics(scaling_points),
    )


def _headline_metrics(points) -> dict:
    """Best measured/modeled 4-worker speedup per series family."""
    metrics = {}
    for point in points:
        if point.get("workers") == 4 and "speedup" in point:
            # "speedup" in the name keys the trajectory tool's
            # higher-is-better direction inference.
            key = f"{point['series']} speedup @4".replace(" ", "_")
            metrics[key] = round(point["speedup"], 3)
    return metrics
