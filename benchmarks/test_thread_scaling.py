"""Thread scaling of the parallel executor: serving tok/s and mpGEMM GB/s.

The paper's headline claim is LUT-based mpGEMM throughput that scales
near-linearly with CPU threads (Figures 6b/8b).  This benchmark exercises
the reproduction's :class:`~repro.core.executor.ParallelExecutor` at 1/2/4
worker threads and records, into ``benchmarks/results/thread_scaling.txt``:

* measured end-to-end serving throughput (tok/s) on the benchmark model,
* measured mpGEMM weight-traversal bandwidth (GB/s) on the Llama-2-7B
  attention shape (S0, 4096x4096, 4-bit),
* the roofline cost model's projected scaling on the Table 2 devices
  (:meth:`repro.hardware.cost_model.CostModel.thread_scaling`).

Correctness is asserted unconditionally: the parallel executor must be
*bit-identical* to the serial vectorized executor on every Figure 6/7
weight shape, and generated tokens must not change with the thread count.
The cost-model >= 1.5x projection at 4 threads is always asserted; the
*measured* >= 1.5x assertion additionally requires an explicit opt-in
(``REPRO_ASSERT_THREAD_SCALING=1``) on a host with >= 4 usable cores —
wall-clock scaling depends on hardware a shared CI runner cannot promise
(single-core containers, noisy neighbours, tiny-model GIL overhead), so by
default the measured numbers are recorded for inspection rather than
gating the build.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.plan import clear_plan_cache
from repro.hardware import CostModel, EVALUATION_DEVICES
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.quant.uniform import quantize_weights
from repro.serving import ServingEngine
from repro.workloads.generator import gaussian_activation, gaussian_weights
from repro.workloads.shapes import KERNEL_SHAPES

THREAD_COUNTS = (1, 2, 4)
NUM_SESSIONS = 6
MAX_NEW_TOKENS = 8


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def assert_measured_scaling() -> bool:
    """Whether to hard-assert measured wall-clock speedups (opt-in)."""
    return bool(os.environ.get("REPRO_ASSERT_THREAD_SCALING")) and \
        available_cores() >= 4


def parallel_config(threads: int, threshold: int = 0) -> TMACConfig:
    return TMACConfig(bits=4, executor="parallel", num_threads=threads,
                      parallel_threshold=threshold)


def test_parallel_parity_on_fig6_fig7_shapes(record_table):
    """Bit-identity on every Figure 6/7 weight shape (acceptance gate).

    N=1 covers the Figure 6 mpGEMV regime on all six shapes; S0 is
    additionally checked at N=8 as a CI-sized stand-in for the Figure 7
    mpGEMM regime (the kernel is row-independent, so the row count does
    not interact with the sharding math — asserted at N=2..3 across every
    table mode in the unit tests).
    """
    rows = []
    for shape in KERNEL_SHAPES:
        qw = quantize_weights(gaussian_weights(shape.m, shape.k, seed=1),
                              bits=4, group_size=128)
        # executor pinned: the baseline must stay serial even when
        # REPRO_EXECUTOR=parallel flips the process default (CI leg 2).
        serial_kernel = TMACKernel(qw, TMACConfig(bits=4,
                                                  executor="vectorized"))
        parallel_kernel = TMACKernel.from_plan(serial_kernel.plan,
                                               parallel_config(4))
        n_values = (1, 8) if shape.label == "S0" else (1,)
        for n in n_values:
            a = gaussian_activation(n, shape.k, seed=2)
            serial = serial_kernel.matmul(a)
            parallel = parallel_kernel.matmul(a)
            np.testing.assert_array_equal(serial, parallel)
            rows.append([shape.label, f"{shape.m}x{shape.k}x{n}",
                         "bit-identical"])
    record_table("thread_scaling_parity",
                 "Parallel executor vs serial vectorized — fig6/fig7 shapes",
                 ["shape", "MxKxN", "parallel vs serial"], rows)


@pytest.fixture(scope="module")
def scaling_rows():
    """Accumulates the measured + modeled rows across the tests below."""
    return []


def test_mpgemm_bandwidth_thread_scaling(scaling_rows, benchmark):
    """Measured mpGEMM GB/s at 1/2/4 threads on S0 (4096x4096, 4-bit)."""
    shape = KERNEL_SHAPES[0]
    qw = quantize_weights(gaussian_weights(shape.m, shape.k, seed=3),
                          bits=4, group_size=128)
    plan = TMACKernel(qw, TMACConfig(bits=4, executor="vectorized")).plan
    a = gaussian_activation(1, shape.k, seed=4)
    weight_bytes = qw.memory_bytes()

    seconds = {}
    outputs = {}
    for threads in THREAD_COUNTS:
        kernel = TMACKernel.from_plan(plan, parallel_config(threads))
        kernel.matmul(a)  # warm the gather metadata / worker pool
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            outputs[threads] = kernel.matmul(a)
            best = min(best, time.perf_counter() - start)
        seconds[threads] = best

    for threads in THREAD_COUNTS[1:]:
        np.testing.assert_array_equal(outputs[1], outputs[threads])

    for threads in THREAD_COUNTS:
        speedup = seconds[1] / seconds[threads]
        scaling_rows.append([
            "mpGEMM S0 (measured)", threads,
            f"{seconds[threads] * 1e3:.1f} ms",
            f"{weight_bytes / seconds[threads] / 1e9:.2f} GB/s",
            f"{speedup:.2f}x",
        ])

    if assert_measured_scaling():
        assert seconds[1] / seconds[4] >= 1.5, (
            f"4-thread mpGEMM speedup {seconds[1] / seconds[4]:.2f}x < 1.5x"
        )

    kernel = TMACKernel.from_plan(plan, parallel_config(THREAD_COUNTS[-1]))
    benchmark(lambda: kernel.matmul(a))


def test_serving_throughput_thread_scaling(scaling_rows):
    """Measured serving tok/s at 1/2/4 threads (continuous batching)."""
    clear_plan_cache()
    arch = tiny_arch(hidden_size=256, intermediate_size=512, num_layers=2,
                     num_heads=4, vocab_size=997, max_seq_len=96)
    weights = generate_random_weights(arch, seed=17)
    prompts = [[(5 * i + 1) % arch.vocab_size, 7, (3 * i + 2) % arch.vocab_size]
               for i in range(NUM_SESSIONS)]

    tok_s = {}
    token_sets = {}
    for threads in THREAD_COUNTS:
        backend = get_backend(
            "tmac", bits=4, group_size=64,
            config=parallel_config(threads, threshold=2048))
        model = TransformerModel(arch, engine=backend, weights=weights)
        best = float("inf")
        for _ in range(2):
            engine = ServingEngine(model, max_batch_size=NUM_SESSIONS)
            ids = [engine.submit(p, max_new_tokens=MAX_NEW_TOKENS)
                   for p in prompts]
            start = time.perf_counter()
            results = engine.run()
            best = min(best, time.perf_counter() - start)
        tokens = sum(len(results[sid].generated_tokens) for sid in ids)
        tok_s[threads] = tokens / best
        token_sets[threads] = [results[sid].generated_tokens for sid in ids]

    # Determinism: the thread count must never change any session's output.
    for threads in THREAD_COUNTS[1:]:
        assert token_sets[threads] == token_sets[1]

    for threads in THREAD_COUNTS:
        scaling_rows.append([
            "serving decode (measured)", threads, "-",
            f"{tok_s[threads]:.1f} tok/s",
            f"{tok_s[threads] / tok_s[1]:.2f}x",
        ])

    if assert_measured_scaling():
        assert tok_s[4] >= 1.5 * tok_s[1], (
            f"4-thread serving speedup {tok_s[4] / tok_s[1]:.2f}x < 1.5x"
        )


def test_cost_model_thread_scaling(scaling_rows, record_table):
    """Projected scaling on the Table 2 devices (always asserted)."""
    shape = KERNEL_SHAPES[0]
    config = TMACConfig(bits=4)
    for device in EVALUATION_DEVICES:
        model = CostModel(device)
        counts = [t for t in THREAD_COUNTS if t <= device.cpu.cores]
        latencies = model.thread_scaling(1, shape.m, shape.k, config, counts)
        base = latencies[1].seconds
        for threads in counts:
            latency = latencies[threads]
            scaling_rows.append([
                f"mpGEMM S0 model ({device.name})", threads,
                f"{latency.milliseconds:.3f} ms",
                latency.bound,
                f"{base / latency.seconds:.2f}x",
            ])
        if 4 in counts:
            assert base / latencies[4].seconds >= 1.5, (
                f"{device.name}: modeled 4-thread speedup below 1.5x"
            )

    record_table(
        "thread_scaling",
        "Parallel executor thread scaling — measured and modeled "
        f"(host cores: {available_cores()})",
        ["series", "threads", "latency", "throughput / bound", "speedup"],
        scaling_rows,
    )
