"""KV-cache microbenchmark: paged + prefix-shared vs unpaged KV memory.

Runs the same batch-8 workload — every prompt sharing a long system-prefix,
as chat serving traffic does — through the serving engine twice: once with
the legacy unbounded per-session caches, once against a byte-budgeted
:class:`repro.kvcache.pool.PagePool` with prefix sharing.  Records peak KV
bytes and decode throughput for both, plus the pool's sharing counters.

The paged run must (a) produce exactly the tokens the unpaged run produces
for every session and (b) hold a strictly lower peak of KV bytes — the
shared prefix is materialized once instead of once per session, which is
the point of the subsystem.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.hardware.memory import kv_block_bytes
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine

NUM_SESSIONS = 8
MAX_NEW_TOKENS = 8
PREFIX_TOKENS = 96
PAGE = 16


@pytest.fixture(scope="module")
def setup():
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=192)
    weights = generate_random_weights(arch, seed=7)
    rng = np.random.default_rng(21)
    prefix = rng.integers(1, arch.vocab_size, size=PREFIX_TOKENS).tolist()
    prompts = [prefix + [1 + i, 3 + 2 * i] for i in range(NUM_SESSIONS)]
    return arch, weights, prompts


def _build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def _run(engine, prompts):
    ids = [engine.submit(p, max_new_tokens=MAX_NEW_TOKENS) for p in prompts]
    start = time.perf_counter()
    results = engine.run()
    seconds = time.perf_counter() - start
    tokens = sum(len(results[sid].generated_tokens) for sid in ids)
    return ids, results, tokens, seconds


def test_paged_prefix_sharing_lowers_peak_kv(setup, record_table,
                                             record_bench):
    arch, weights, prompts = setup

    unpaged = ServingEngine(_build_model(arch, weights),
                            max_batch_size=NUM_SESSIONS)
    u_ids, u_results, u_tokens, u_seconds = _run(unpaged, prompts)
    u_stats = unpaged.serving_stats()

    budget = 64 * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                 arch.head_dim, PAGE)
    paged = ServingEngine(_build_model(arch, weights),
                          max_batch_size=NUM_SESSIONS,
                          kv_cache_bytes=budget, page_size=PAGE)
    p_ids, p_results, p_tokens, p_seconds = _run(paged, prompts)
    p_stats = paged.serving_stats()

    # Paging must not change a single generated token.
    for u_sid, p_sid in zip(u_ids, p_ids):
        assert u_results[u_sid].generated_tokens == \
            p_results[p_sid].generated_tokens

    record_table(
        "kvcache_memory",
        f"Paged KV + prefix sharing vs unpaged caches "
        f"({NUM_SESSIONS} sessions, {PREFIX_TOKENS}-token shared prefix, "
        f"{MAX_NEW_TOKENS} new tokens each)",
        ["mode", "peak KV bytes", "tokens", "seconds", "tokens/s",
         "prefix hit rate", "peak shared pages", "preemptions"],
        [
            ["unpaged", u_stats["peak_kv_bytes"], u_tokens,
             f"{u_seconds:.2f}", f"{u_tokens / u_seconds:.1f}", "-", "-",
             "-"],
            ["paged", p_stats["kv_peak_bytes"], p_tokens,
             f"{p_seconds:.2f}", f"{p_tokens / p_seconds:.1f}",
             f"{p_stats['prefix_hit_rate']:.0%}",
             p_stats["peak_shared_blocks"], p_stats["preemptions"]],
        ],
    )

    record_bench(
        "kvcache_memory",
        [
            {"series": "unpaged", "peak_kv_bytes": u_stats["peak_kv_bytes"],
             "tokens": u_tokens, "seconds": u_seconds,
             "tokens_per_s": u_tokens / u_seconds},
            {"series": "paged", "peak_kv_bytes": p_stats["kv_peak_bytes"],
             "tokens": p_tokens, "seconds": p_seconds,
             "tokens_per_s": p_tokens / p_seconds,
             "prefix_hit_rate": p_stats["prefix_hit_rate"],
             "peak_shared_blocks": p_stats["peak_shared_blocks"],
             "preemptions": p_stats["preemptions"]},
        ],
        params={"num_sessions": NUM_SESSIONS, "prefix_tokens": PREFIX_TOKENS,
                "max_new_tokens": MAX_NEW_TOKENS, "page_size": PAGE},
        metrics={
            "kv_bytes_saved_ratio":
                1.0 - p_stats["kv_peak_bytes"] / u_stats["peak_kv_bytes"],
            "prefix_hit_rate": p_stats["prefix_hit_rate"],
        },
    )

    # The flagship claim: the shared prefix is stored once, so the paged
    # peak undercuts the unpaged baseline for >= 2 prefix-sharing sessions.
    assert p_stats["kv_peak_bytes"] < u_stats["peak_kv_bytes"], (
        f"paged peak {p_stats['kv_peak_bytes']} not below unpaged "
        f"{u_stats['peak_kv_bytes']}"
    )
    assert p_stats["peak_shared_blocks"] >= PREFIX_TOKENS // PAGE
    assert p_stats["prefix_hit_rate"] > 0


def test_benchmark_hook_paged_decode_step(benchmark, setup):
    """pytest-benchmark integration: one paged batched decode step."""
    arch, weights, prompts = setup
    model = _build_model(arch, weights)
    budget = 64 * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                 arch.head_dim, PAGE)

    def fresh_engine():
        engine = ServingEngine(model, max_batch_size=NUM_SESSIONS,
                               kv_cache_bytes=budget, page_size=PAGE)
        for prompt in prompts:
            engine.submit(prompt, max_new_tokens=50)
        engine.step()  # admit + prefill + first batched step
        return (engine,), {}

    def step(engine):
        return engine.step()

    summary = benchmark.pedantic(step, setup=fresh_engine, rounds=5,
                                 iterations=1)
    assert summary["batch_size"] == NUM_SESSIONS
