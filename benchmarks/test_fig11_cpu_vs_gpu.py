"""Figure 11: mpGEMV kernels — T-MAC (CPU) vs llama.cpp (GPU) on Jetson AGX
Orin.

Compares the T-MAC CPU kernel latency against the llama.cpp CUDA backend for
the three Llama-2-7B shapes at 1-4 bits on the Jetson AGX Orin (unified
memory shared between CPU and iGPU).

Expected shape: T-MAC wins outright at 1 bit on all shapes, is comparable at
2-3 bits, and the GPU pulls ahead at 4 bits on the larger shapes — the
crossover the paper uses to argue that CPUs are a practical deployment
target.
"""

from __future__ import annotations

from repro.baselines.gpu import gpu_gemv_latency
from repro.core.config import TMACConfig
from repro.hardware import CostModel, JETSON_AGX_ORIN
from repro.workloads.shapes import KERNEL_SHAPES

BITS = (1, 2, 3, 4)
HEADERS = ["shape", "bits", "llama.cpp GPU (ms)", "T-MAC CPU (ms)",
           "CPU/GPU ratio"]


def test_fig11_cpu_vs_gpu(benchmark, record_table):
    model = CostModel(JETSON_AGX_ORIN)
    shapes = KERNEL_SHAPES[:3]  # the Llama-2-7B shapes used by the paper

    rows = []
    for shape in shapes:
        for bits in BITS:
            gpu = gpu_gemv_latency(JETSON_AGX_ORIN, shape.m, shape.k, bits)
            cpu = model.tmac_gemv_latency(shape.m, shape.k,
                                          TMACConfig(bits=bits))
            rows.append([
                str(shape), bits, f"{gpu.milliseconds:.3f}",
                f"{cpu.milliseconds:.3f}",
                f"{cpu.seconds / gpu.seconds:.2f}",
            ])

    record_table("fig11_cpu_vs_gpu_orin",
                 "Figure 11 — T-MAC (CPU) vs llama.cpp (GPU) mpGEMV on "
                 "Jetson AGX Orin (model)", HEADERS, rows)

    # W1: the CPU wins on every shape.
    one_bit = [r for r in rows if r[1] == 1]
    assert all(float(r[3]) < float(r[2]) for r in one_bit)
    # W4 on the largest shape: the GPU wins.
    four_bit_large = [r for r in rows if r[1] == 4 and "11008" in r[0]]
    assert any(float(r[2]) < float(r[3]) for r in four_bit_large)

    benchmark(lambda: gpu_gemv_latency(JETSON_AGX_ORIN, 4096, 4096, 2))
