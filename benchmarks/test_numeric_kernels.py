"""Wall-clock micro-benchmarks of the numerical kernels (pytest-benchmark).

These time the actual numpy implementations in this repository (not the
modeled edge-device latencies): T-MAC's precompute + lookup + aggregate
pipeline versus the dequantization kernel and the fp reference, on a
moderate shape.  They exist to keep the numerical kernels honest (no
pathological slowdowns as the code evolves) and to exercise the
pytest-benchmark integration; absolute numbers say nothing about the
paper's devices.
"""

from __future__ import annotations

import pytest

from repro.baselines.dequant_gemm import DequantGEMM
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.quant.uniform import quantize_weights
from repro.workloads.generator import gaussian_activation, gaussian_weights

M, K = 256, 512


@pytest.fixture(scope="module")
def case():
    weights = gaussian_weights(M, K, seed=0)
    activation = gaussian_activation(1, K, seed=1)
    qweight = quantize_weights(weights, bits=4, group_size=128)
    return weights, activation, qweight


def test_bench_tmac_gemv(benchmark, case):
    _, activation, qweight = case
    kernel = TMACKernel(qweight, TMACConfig(bits=4))
    result = benchmark(kernel.matmul, activation)
    assert result.shape == (1, M)


def test_bench_tmac_gemv_loop_executor(benchmark, case):
    """The seed per-group/per-bit loop path, kept as the reference executor."""
    _, activation, qweight = case
    kernel = TMACKernel(qweight, TMACConfig(bits=4, executor="loop"))
    result = benchmark(kernel.matmul, activation)
    assert result.shape == (1, M)


def test_bench_tmac_gemv_fast_aggregation(benchmark, case):
    _, activation, qweight = case
    kernel = TMACKernel(qweight, TMACConfig(bits=4, fast_aggregation=True))
    result = benchmark(kernel.matmul, activation)
    assert result.shape == (1, M)


def test_bench_dequant_gemv(benchmark, case):
    _, activation, qweight = case
    kernel = DequantGEMM(qweight)
    result = benchmark(kernel.matmul, activation)
    assert result.shape == (1, M)


def test_bench_reference_gemv(benchmark, case):
    weights, activation, _ = case
    result = benchmark(lambda: activation @ weights.T)
    assert result.shape == (1, M)


def test_bench_lut_precompute(benchmark, case):
    _, activation, qweight = case
    kernel = TMACKernel(qweight, TMACConfig(bits=4))
    table = benchmark(kernel.precompute, activation)
    assert table.num_groups == K // 4


def test_bench_offline_preprocessing(benchmark, case):
    weights, _, _ = case

    def preprocess():
        qw = quantize_weights(weights, bits=2, group_size=128)
        return TMACKernel(qw, TMACConfig(bits=2))

    kernel = benchmark(preprocess)
    assert kernel.bits == 2
