"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Results are written twice:

* plain-text tables to ``benchmarks/results/<name>.txt`` (human-readable,
  survive pytest's output capturing), and
* machine-readable ``benchmarks/results/BENCH_<name>.json`` documents
  (bench name, series, params, metrics, host info, git sha) so the
  performance trajectory is trackable across PRs — CI uploads them as a
  workflow artifact.

The ``benchmark`` fixture wraps a representative piece of the computation
so the suite integrates with ``pytest-benchmark`` (``--benchmark-only``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Iterable, List, Optional, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version of the BENCH_*.json document layout; bump on breaking changes so
#: trajectory tooling can dispatch on it.
BENCH_SCHEMA_VERSION = 1


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as a fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_result(name: str, title: str, content: str) -> str:
    """Write a reproduction artifact to ``benchmarks/results/<name>.txt``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(f"{title}\n{'=' * len(title)}\n\n{content}\n")
    return path


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def host_info() -> dict:
    """Hardware/software facts that contextualize a measured number."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable_cores(),
    }


def git_sha() -> str:
    """The commit the numbers were produced at (``unknown`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        pass
    return "unknown"


def write_bench_json(name: str, series, params: Optional[dict] = None,
                     metrics: Optional[dict] = None) -> str:
    """Write ``benchmarks/results/BENCH_<name>.json``.

    Parameters
    ----------
    name:
        Benchmark name; also the file stem.
    series:
        The measured/modeled data, as a list of series dicts (each with a
        ``name`` and a list of ``points``) or any JSON-serializable shape
        the benchmark finds natural.
    params:
        The knobs the run was executed with (shapes, counts, env).
    metrics:
        Headline scalar metrics (speedups, tok/s, hit rates) for quick
        cross-PR comparison without parsing the series.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "bench": name,
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha(),
        "host": host_info(),
        "params": params or {},
        "series": series,
        "metrics": metrics or {},
    }
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def record_table():
    """Fixture returning a helper that formats and persists a result table.

    Session-scoped (the helper is stateless) so module-scoped fixtures that
    accumulate rows across parametrized tests can depend on it too.
    """

    def _record(name: str, title: str, headers: Sequence[str],
                rows: List[Sequence]) -> str:
        content = format_table(headers, rows)
        path = write_result(name, title, content)
        return path

    return _record


@pytest.fixture(scope="session")
def record_bench():
    """Fixture returning the machine-readable BENCH_*.json writer."""
    return write_bench_json
