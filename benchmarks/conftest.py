"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Results are written as plain-text tables to
``benchmarks/results/`` (so they survive pytest's output capturing) and the
``benchmark`` fixture wraps a representative piece of the computation so the
suite integrates with ``pytest-benchmark`` (``--benchmark-only``).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as a fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_result(name: str, title: str, content: str) -> str:
    """Write a reproduction artifact to ``benchmarks/results/<name>.txt``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(f"{title}\n{'=' * len(title)}\n\n{content}\n")
    return path


@pytest.fixture(scope="session")
def record_table():
    """Fixture returning a helper that formats and persists a result table.

    Session-scoped (the helper is stateless) so module-scoped fixtures that
    accumulate rows across parametrized tests can depend on it too.
    """

    def _record(name: str, title: str, headers: Sequence[str],
                rows: List[Sequence]) -> str:
        content = format_table(headers, rows)
        path = write_result(name, title, content)
        return path

    return _record
