"""Table 3: NMSE of mpGEMV kernels relative to the un-quantized fp16 GEMV.

This is a fully *numerical* reproduction (no cost model involved): Gaussian
weights and activations are generated for the three Llama-2-7B shapes,
quantized to 4 bits, and executed by the llama.cpp-style kernel, T-MAC, and
T-MAC with fast aggregation; NMSE is computed against the un-quantized
reference, exactly as in Section 5.6.

Expected shape: llama.cpp and T-MAC NMSE are essentially identical (table
quantization is negligible) and fast aggregation inflates the NMSE by
roughly 2-3x (paper: ~2.5x).
"""

from __future__ import annotations

import pytest

from repro.eval.nmse import kernel_nmse_table
from repro.workloads.shapes import KERNEL_SHAPES

HEADERS = ["MxKxN", "llama.cpp", "T-MAC", "T-MAC (+FA)", "FA inflation"]

#: Paper Table 3 values, for side-by-side comparison in the output artifact.
PAPER_TABLE3 = {
    "4096x4096x1": (3.33e-3, 3.35e-3, 8.09e-3),
    "11008x4096x1": (3.44e-3, 3.46e-3, 8.27e-3),
    "4096x11008x1": (4.13e-3, 4.15e-3, 8.45e-3),
}


@pytest.fixture(scope="module")
def nmse_rows():
    shapes = KERNEL_SHAPES[:3]
    return kernel_nmse_table(shapes, bits=4, group_size=128, seed=0)


def test_table3_nmse(benchmark, record_table, nmse_rows):
    rows = []
    for row in nmse_rows:
        paper = PAPER_TABLE3.get(row.shape)
        rows.append([
            row.shape, f"{row.llama_cpp:.3e}", f"{row.tmac:.3e}",
            f"{row.tmac_fast_aggregation:.3e}", f"{row.fa_ratio:.2f}x",
        ])
        if paper:
            rows.append([
                f"  (paper)", f"{paper[0]:.3e}", f"{paper[1]:.3e}",
                f"{paper[2]:.3e}", f"{paper[2] / paper[1]:.2f}x",
            ])

    record_table("table3_nmse",
                 "Table 3 — NMSE vs un-quantized fp GEMV (numerical)",
                 HEADERS, rows)

    for row in nmse_rows:
        # T-MAC == llama.cpp within a few percent; FA meaningfully worse.
        assert row.tmac == pytest.approx(row.llama_cpp, rel=0.1)
        assert 1.3 < row.fa_ratio < 6.0
        # Same order of magnitude as the paper's numbers.
        assert 5e-4 < row.llama_cpp < 5e-2

    benchmark(lambda: kernel_nmse_table([(512, 1024)], bits=4, seed=1))
