"""Unit tests for the cross-PR benchmark trajectory tool."""

import json

import pytest

import trajectory


def write_doc(results_dir, bench, metrics, git_sha="aaa111"):
    doc = {
        "bench": bench,
        "schema_version": 1,
        "git_sha": git_sha,
        "host": {"platform": "test"},
        "params": {},
        "series": [],
        "metrics": metrics,
    }
    path = results_dir / f"BENCH_{bench}.json"
    path.write_text(json.dumps(doc))
    return path


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "batched_tokens_per_s", "speedup_over_serial", "hit_rate",
        "mpGEMM_S0_threads_speedup_@4",  # a thread-scaling headline
    ])
    def test_higher_is_better(self, name):
        assert trajectory.metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", [
        "decode_latency_ms", "S0_seconds", "nmse", "p99", "gemv_s",
    ])
    def test_lower_is_better(self, name):
        assert trajectory.metric_direction(name) == "lower"

    def test_ambiguous_names_are_skipped(self):
        assert trajectory.metric_direction("workers") is None
        # "_s" is a suffix check only — not a substring trap.
        assert trajectory.metric_direction("s0_shape") is None


class TestUpdate:
    def test_creates_trajectory_and_appends_points(self, tmp_path):
        write_doc(tmp_path, "serving", {"tokens_per_s": 100.0}, "sha1")
        doc = trajectory.update(str(tmp_path))
        assert doc["benches"]["serving"]["points"] == [
            {"git_sha": "sha1", "metrics": {"tokens_per_s": 100.0}}]
        write_doc(tmp_path, "serving", {"tokens_per_s": 120.0}, "sha2")
        doc = trajectory.update(str(tmp_path))
        assert [p["git_sha"] for p in doc["benches"]["serving"]["points"]] \
            == ["sha1", "sha2"]

    def test_same_sha_replaces_instead_of_duplicating(self, tmp_path):
        write_doc(tmp_path, "serving", {"tokens_per_s": 100.0}, "sha1")
        trajectory.update(str(tmp_path))
        write_doc(tmp_path, "serving", {"tokens_per_s": 105.0}, "sha1")
        doc = trajectory.update(str(tmp_path))
        points = doc["benches"]["serving"]["points"]
        assert len(points) == 1
        assert points[0]["metrics"]["tokens_per_s"] == 105.0

    def test_history_is_bounded(self, tmp_path):
        for i in range(7):
            write_doc(tmp_path, "serving", {"tokens_per_s": float(i)},
                      f"sha{i}")
            trajectory.update(str(tmp_path), max_points=3)
        doc = trajectory.load_trajectory(
            str(tmp_path / trajectory.TRAJECTORY_BASENAME))
        points = doc["benches"]["serving"]["points"]
        assert [p["git_sha"] for p in points] == ["sha4", "sha5", "sha6"]

    def test_non_numeric_metrics_dropped(self, tmp_path):
        write_doc(tmp_path, "serving",
                  {"tokens_per_s": 10.0, "host": "not-a-number"})
        doc = trajectory.update(str(tmp_path))
        assert doc["benches"]["serving"]["points"][0]["metrics"] == {
            "tokens_per_s": 10.0}


class TestCheck:
    def seed_baseline(self, tmp_path, metrics, sha="base"):
        write_doc(tmp_path, "serving", metrics, sha)
        trajectory.update(str(tmp_path))

    def test_no_regression_within_threshold(self, tmp_path):
        self.seed_baseline(tmp_path, {"tokens_per_s": 100.0})
        write_doc(tmp_path, "serving", {"tokens_per_s": 95.0}, "new")
        assert trajectory.check(str(tmp_path)) == []

    def test_flags_throughput_drop(self, tmp_path):
        self.seed_baseline(tmp_path, {"tokens_per_s": 100.0})
        write_doc(tmp_path, "serving", {"tokens_per_s": 80.0}, "new")
        messages = trajectory.check(str(tmp_path))
        assert len(messages) == 1
        assert "tokens_per_s" in messages[0]
        assert "20.0%" in messages[0]

    def test_flags_latency_increase(self, tmp_path):
        self.seed_baseline(tmp_path, {"decode_latency_ms": 10.0})
        write_doc(tmp_path, "serving", {"decode_latency_ms": 15.0}, "new")
        assert len(trajectory.check(str(tmp_path))) == 1

    def test_improvements_never_flagged(self, tmp_path):
        self.seed_baseline(tmp_path, {"tokens_per_s": 100.0,
                                      "decode_latency_ms": 10.0})
        write_doc(tmp_path, "serving",
                  {"tokens_per_s": 200.0, "decode_latency_ms": 1.0}, "new")
        assert trajectory.check(str(tmp_path)) == []

    def test_no_baseline_is_silent(self, tmp_path):
        write_doc(tmp_path, "serving", {"tokens_per_s": 1.0}, "new")
        assert trajectory.check(str(tmp_path)) == []

    def test_ambiguous_metrics_skipped(self, tmp_path):
        self.seed_baseline(tmp_path, {"workers": 8.0})
        write_doc(tmp_path, "serving", {"workers": 1.0}, "new")
        assert trajectory.check(str(tmp_path)) == []


class TestCli:
    def test_update_then_check_exit_codes(self, tmp_path, capsys):
        write_doc(tmp_path, "serving", {"tokens_per_s": 100.0}, "base")
        assert trajectory.main(["update", "--results", str(tmp_path)]) == 0
        write_doc(tmp_path, "serving", {"tokens_per_s": 50.0}, "new")
        # Default: annotate but stay green (shared-runner noise policy).
        assert trajectory.main(["check", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "::warning title=benchmark regression::" in out
        assert trajectory.main(["check", "--results", str(tmp_path),
                                "--strict"]) == 1
