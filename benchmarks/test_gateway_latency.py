"""Gateway serving latency under open-loop Poisson arrivals.

The serving-systems complement to the throughput benchmarks: clients
arrive by a Poisson process (open loop — arrivals do not wait for earlier
requests, as real traffic does not) at several request rates, each
streaming one completion over real HTTP against the paged
continuous-batching engine.  For every rate we record TTFT and TPOT
(p50/p95) measured at the client, plus goodput (completed tokens per
second over the makespan), into ``benchmarks/results/gateway_latency.txt``.

The expected shape: TTFT grows with the arrival rate (queueing ahead of
admission) while TPOT stays comparatively flat (decode is batched), and
goodput rises with offered load until the engine saturates.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.config import GatewayConfig
from repro.hardware.memory import kv_block_bytes
from repro.llm import TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.server import serve_model
from repro.server.client import stream_completion

PAGE = 16
REQUESTS_PER_RATE = 10
MAX_NEW_TOKENS = 8
ARRIVAL_RATES_RPS = (4.0, 16.0, 64.0)


def build_model():
    arch = tiny_arch(hidden_size=64, intermediate_size=128, num_layers=2,
                     num_heads=4, vocab_size=97, max_seq_len=192)
    weights = generate_random_weights(arch, seed=3)
    model = TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)
    return arch, model


async def _one_request(host, port, prompt):
    """Stream one completion; returns (ttft_s, tpot_s, tokens)."""
    start = time.perf_counter()
    first_at = None
    last_at = start
    count = 0
    stream = await stream_completion(
        host, port, {"prompt": prompt, "max_tokens": MAX_NEW_TOKENS})
    async for chunk in stream:
        if chunk["choices"][0]["token"] is None:
            continue
        now = time.perf_counter()
        if first_at is None:
            first_at = now
        last_at = now
        count += 1
    ttft = first_at - start if first_at is not None else float("nan")
    tpot = ((last_at - first_at) / (count - 1)
            if first_at is not None and count > 1 else float("nan"))
    return ttft, tpot, count


async def _run_rate(host, port, rate_rps, rng):
    """Open-loop: fire REQUESTS_PER_RATE clients at Poisson arrivals."""
    gaps = rng.exponential(1.0 / rate_rps, size=REQUESTS_PER_RATE)
    tasks = []
    start = time.perf_counter()
    for i, gap in enumerate(gaps):
        await asyncio.sleep(gap)
        prompt = [1 + (3 * i) % 90, 5, 9 + (2 * i) % 80]
        tasks.append(asyncio.create_task(
            _one_request(host, port, prompt)))
    outcomes = await asyncio.gather(*tasks)
    makespan = time.perf_counter() - start
    return outcomes, makespan


@pytest.mark.benchmark(group="gateway-latency")
def test_gateway_open_loop_latency(record_table, record_bench, benchmark):
    arch, model = build_model()
    budget = 64 * kv_block_bytes(arch.num_layers, arch.num_kv_heads,
                                 arch.head_dim, PAGE)

    rows = []
    summary = {}

    async def run_all():
        gateway = serve_model(model, GatewayConfig(port=0),
                              max_batch_size=4, kv_cache_bytes=budget,
                              prefill_chunk=32)
        gateway.runner.start()
        host, port = await gateway.start()
        try:
            rng = np.random.default_rng(42)
            for rate in ARRIVAL_RATES_RPS:
                outcomes, makespan = await _run_rate(host, port, rate, rng)
                ttfts = np.array([o[0] for o in outcomes])
                tpots = np.array([o[1] for o in outcomes
                                  if np.isfinite(o[1])])
                tokens = sum(o[2] for o in outcomes)
                goodput = tokens / makespan
                summary[rate] = {
                    "completed": len(outcomes),
                    "tokens": tokens,
                    "ttft_p50_ms": float(np.percentile(ttfts, 50) * 1e3),
                    "ttft_p95_ms": float(np.percentile(ttfts, 95) * 1e3),
                    "tpot_p50_ms": float(np.percentile(tpots, 50) * 1e3),
                    "tpot_p95_ms": float(np.percentile(tpots, 95) * 1e3),
                    "goodput_tok_s": goodput,
                }
        finally:
            await gateway.stop()
            gateway.runner.stop()

    asyncio.run(run_all())

    for rate in ARRIVAL_RATES_RPS:
        s = summary[rate]
        rows.append([
            f"{rate:.0f}",
            s["completed"],
            f"{s['ttft_p50_ms']:.1f}",
            f"{s['ttft_p95_ms']:.1f}",
            f"{s['tpot_p50_ms']:.1f}",
            f"{s['tpot_p95_ms']:.1f}",
            f"{s['goodput_tok_s']:.1f}",
        ])
    record_table(
        "gateway_latency",
        "Gateway open-loop latency (Poisson arrivals, "
        f"{REQUESTS_PER_RATE} streaming requests/rate, "
        f"{MAX_NEW_TOKENS} tokens each)",
        ["rate_rps", "completed", "ttft_p50_ms", "ttft_p95_ms",
         "tpot_p50_ms", "tpot_p95_ms", "goodput_tok_s"],
        rows,
    )
    record_bench(
        "gateway_latency",
        [dict(rate_rps=rate, **summary[rate])
         for rate in ARRIVAL_RATES_RPS],
        params={"requests_per_rate": REQUESTS_PER_RATE,
                "max_new_tokens": MAX_NEW_TOKENS,
                "arrival_rates_rps": list(ARRIVAL_RATES_RPS),
                "page_size": PAGE},
        metrics={
            "peak_goodput_tok_s": max(
                summary[rate]["goodput_tok_s"]
                for rate in ARRIVAL_RATES_RPS),
            "ttft_p95_ms_at_peak_rate":
                summary[ARRIVAL_RATES_RPS[-1]]["ttft_p95_ms"],
        },
    )

    # Sanity: every request completed fully at every rate, and latency
    # numbers are physical.
    for rate in ARRIVAL_RATES_RPS:
        s = summary[rate]
        assert s["completed"] == REQUESTS_PER_RATE
        assert s["tokens"] == REQUESTS_PER_RATE * MAX_NEW_TOKENS
        assert s["ttft_p50_ms"] > 0
        assert s["goodput_tok_s"] > 0
    # Offered load spans 16x; goodput must rise with it (the engine is
    # nowhere near saturation at 4 rps with a tiny model).
    assert summary[ARRIVAL_RATES_RPS[-1]]["goodput_tok_s"] > \
        summary[ARRIVAL_RATES_RPS[0]]["goodput_tok_s"]

    # pytest-benchmark hook: one representative streamed completion.
    async def one():
        gateway = serve_model(model, GatewayConfig(port=0),
                              max_batch_size=4, kv_cache_bytes=budget)
        gateway.runner.start()
        host, port = await gateway.start()
        try:
            return await _one_request(host, port, [1, 5, 9])
        finally:
            await gateway.stop()
            gateway.runner.stop()

    benchmark.pedantic(lambda: asyncio.run(one()), rounds=3, iterations=1)
