"""Figure 10: optimization breakdown (ablation) on M2-Ultra.

Applies the T-MAC optimizations cumulatively — TM-base, +Table Quantization,
+Tiling, +Permutation, +Tuning, +Interleaving (= full T-MAC), +Fast
Aggregation — to the S0-S5 GEMV shapes and compares each stage against the
llama.cpp baseline, as the paper's Figure 10 does with multi-threading.
Single-threaded latencies are reported as well because (as the paper notes)
most optimizations show larger benefits there, while tiling needs
multi-threading to matter.

The "+Tuning" stage actually runs the tile-configuration tuner (the AutoTVM
stand-in); on M2-Ultra the default configuration is already near-optimal so
its gain is small, matching the paper's observation.
"""

from __future__ import annotations

from repro.core.config import ablation_stages
from repro.hardware import CostModel, M2_ULTRA
from repro.tuning import Tuner
from repro.workloads.shapes import KERNEL_SHAPES

HEADERS = ["shape", "stage", "multi-thread (ms)", "single-thread (ms)",
           "vs llama.cpp (MT)"]


def _stage_latency(model, shape, config, tuner, threads):
    tile_config = None
    if config.tuned:
        tile_config = tuner.tune(shape.m, shape.k, config).best_config
    return model.tmac_gemv_latency(shape.m, shape.k, config, threads=threads,
                                   tile_config=tile_config)


def test_fig10_optimization_breakdown(benchmark, record_table):
    model = CostModel(M2_ULTRA)
    tuner = Tuner(M2_ULTRA)
    stages = ablation_stages(bits=4)

    rows = []
    for shape in KERNEL_SHAPES:
        llama_mt = model.dequant_gemv_latency(shape.m, shape.k, 4)
        previous_mt = None
        for config in stages:
            mt = _stage_latency(model, shape, config, tuner,
                                threads=M2_ULTRA.default_threads)
            st = _stage_latency(model, shape, config, tuner, threads=1)
            rows.append([
                shape.label, config.name, f"{mt.milliseconds:.4f}",
                f"{st.milliseconds:.4f}",
                f"{llama_mt.seconds / mt.seconds:.2f}x",
            ])
            # Cumulative optimizations never make things slower.
            if previous_mt is not None:
                assert mt.seconds <= previous_mt * 1.001
            previous_mt = mt.seconds

        # TM-base is roughly on par with (or slightly slower than) llama.cpp;
        # the full T-MAC configuration is clearly faster.
        base_mt = float(rows[-len(stages)][2])
        full_mt = float(rows[-2][2])
        assert base_mt > 0.75 * llama_mt.milliseconds
        assert full_mt < llama_mt.milliseconds

    record_table("fig10_ablation_m2ultra",
                 "Figure 10 — cumulative optimization breakdown on M2-Ultra "
                 "(model)", HEADERS, rows)

    shape = KERNEL_SHAPES[0]
    config = stages[-2]  # full T-MAC
    benchmark(lambda: model.tmac_gemv_latency(shape.m, shape.k, config))


def test_fig10_breakdown_on_compute_bound_device(benchmark, record_table):
    """Companion table on a compute-bound device (Raspberry Pi 5).

    On the modeled M2-Ultra the memory wall hides the compute-side stages
    (table quantization, interleaving, fast aggregation); on the Raspberry
    Pi 5 the single-thread kernel is compute-bound and the full staircase is
    visible, which is the regime the paper's per-stage factors (1.45x tiling,
    1.39x permutation, 1.42x interleaving, 1.29x fast aggregation) describe.
    """
    from repro.hardware import RASPBERRY_PI_5

    model = CostModel(RASPBERRY_PI_5)
    tuner = Tuner(RASPBERRY_PI_5)
    stages = ablation_stages(bits=4)
    shape = KERNEL_SHAPES[0]
    llama = model.dequant_gemv_latency(shape.m, shape.k, 4, threads=1)

    rows = []
    latencies = {}
    for config in stages:
        lat = _stage_latency(model, shape, config, tuner, threads=1)
        latencies[config.name] = lat.seconds
        rows.append([shape.label, config.name, "-",
                     f"{lat.milliseconds:.4f}",
                     f"{llama.seconds / lat.seconds:.2f}x"])
    record_table("fig10_ablation_raspberry_pi",
                 "Figure 10 (companion) — single-thread breakdown on "
                 "Raspberry Pi 5 (model)", HEADERS, rows)

    # The compute-side optimizations are individually visible here.
    assert latencies["+TQ"] < latencies["TM-base"] * 0.95
    assert latencies["T-MAC"] < latencies["+Tuning"] * 0.98
    assert latencies["T-MAC"] < latencies["TM-base"] * 0.7

    benchmark(lambda: model.tmac_gemv_latency(shape.m, shape.k, stages[-2],
                                              threads=1))
