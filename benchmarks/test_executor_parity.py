"""Vectorized-vs-loop executor parity and speed on the paper's shapes.

Covers the Figure 6 mpGEMV shapes (S0-S5, N=1 — the decode regime) and the
Figure 7 mpGEMM regime (N=256) on the paper's weight shapes:

* **Parity** — the vectorized executor must be *bit-identical* to the seed
  loop executor (same float path: both accumulate the same elementwise
  operations in the same order, only batched).
* **Speed** — on the fig6 mpGEMV shapes the vectorized executor must beat
  the loop path wall-clock (min over repetitions).
* **Process-pool parity** — the shared-memory process executor must be
  bit-identical to the serial vectorized executor on every shape at 1/2/4
  workers, and must leave no shared-memory segments behind once the plans
  are released (asserted in module teardown).

Weights use synthetic random codes (uniform over the bit range, Gaussian
scales): kernel parity is a property of the code path, not of how codes
were produced, and skipping real quantization keeps the full-size shapes
affordable.  The N=256 sweep runs full-size on S0 and at a reduced row
count on the remaining shapes — the executors are row-independent, so the
batched-activation path is exercised on every shape while keeping the
suite's runtime sane.
"""

from __future__ import annotations

import functools
import gc
import time

import numpy as np
import pytest

from repro.core import shm
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.plan import build_plan
from repro.quant.uniform import QuantizedWeight
from repro.workloads.shapes import KERNEL_SHAPES

PROCESS_WORKER_COUNTS = (1, 2, 4)

#: Bit width exercised per shape — covers every width the paper evaluates
#: while keeping one (shape, bits) build per shape.
SHAPE_BITS = {"S0": 4, "S1": 2, "S2": 3, "S3": 1, "S4": 2, "S5": 4}


def synthetic_qweight(m: int, k: int, bits: int, group_size: int = 128,
                      seed: int = 0) -> QuantizedWeight:
    """Random low-bit codes with Gaussian scales (no quantization pass)."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << bits, size=(m, k), dtype=np.uint8)
    num_groups = k // group_size
    scales = np.abs(rng.standard_normal((m, num_groups))).astype(np.float32)
    scales += np.float32(1e-3)
    zeros = np.full((m, num_groups), ((1 << bits) - 1) / 2.0, dtype=np.float32)
    return QuantizedWeight(codes=codes, scales=scales, zeros=zeros,
                           bits=bits, group_size=group_size)


@functools.lru_cache(maxsize=None)
def _plan(label: str, m: int, k: int, bits: int):
    # Deterministic seed (hash() is salted per process; the recorded
    # benchmark inputs must be reproducible across runs).
    qw = synthetic_qweight(m, k, bits, seed=int(label[1:]) + 1)
    return build_plan(qw, TMACConfig(bits=bits))


def _kernels(shape, bits):
    plan = _plan(shape.label, shape.m, shape.k, bits)
    # Pinned explicitly so the "vectorized" column stays the serial
    # executor even when REPRO_EXECUTOR changes the process default.
    vec = TMACKernel.from_plan(plan, TMACConfig(bits=bits,
                                                executor="vectorized"))
    loop = TMACKernel.from_plan(plan, TMACConfig(bits=bits, executor="loop"))
    return vec, loop


def _best_seconds(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module", autouse=True)
def no_shm_segment_growth():
    """Plans built by this module must not leak shared-memory segments.

    The process-parity tests publish each plan's artifacts into
    ``multiprocessing.shared_memory`` once; releasing the plans (the
    ``_plan`` LRU holds the only strong references) must unlink every
    segment they own.  Other modules' cached plans (the process-wide
    :data:`~repro.core.plan.PLAN_CACHE`) may legitimately hold segments on
    the ``REPRO_EXECUTOR=process`` CI leg, so the assertion is on the
    *delta*, not on zero.
    """
    baseline = shm.PLAN_SEGMENTS.stats()["segments"] if shm.shm_available() \
        else 0
    yield
    if shm.shm_available():
        _plan.cache_clear()
        gc.collect()
        after = shm.PLAN_SEGMENTS.stats()["segments"]
        assert after <= baseline, (
            f"executor-parity plans leaked {after - baseline} shared-memory "
            f"segment(s)"
        )


@pytest.fixture(scope="module")
def record_table_rows(record_table, record_bench):
    """Accumulate per-shape timing rows; persist them when the module ends."""
    rows = []
    yield rows
    if rows:
        record_table(
            "executor_parity",
            "Vectorized vs loop executor (fig6 mpGEMV shapes)",
            ["shape", "MxK", "bits", "vectorized (ms)", "loop (ms)",
             "speedup"],
            rows,
        )
        record_bench(
            "executor_parity",
            [
                {
                    "series": "fig6 mpGEMV", "shape": row[0],
                    "mxk": row[1], "bits": row[2],
                    "vectorized_ms": float(row[3]), "loop_ms": float(row[4]),
                    "speedup": float(row[5].rstrip("x")),
                }
                for row in rows
            ],
            params={"shape_bits": SHAPE_BITS,
                    "process_worker_counts": list(PROCESS_WORKER_COUNTS),
                    "shm_available": shm.shm_available()},
            metrics={
                "min_vectorized_speedup":
                    min(float(row[5].rstrip("x")) for row in rows),
                "max_vectorized_speedup":
                    max(float(row[5].rstrip("x")) for row in rows),
            },
        )


@pytest.mark.parametrize("shape", KERNEL_SHAPES, ids=lambda s: s.label)
def test_fig6_gemv_parity_and_speed(shape, record_table_rows):
    """N=1 (decode): bit-identical results, vectorized strictly faster."""
    bits = SHAPE_BITS[shape.label]
    vec, loop = _kernels(shape, bits)
    rng = np.random.default_rng(1)
    activation = rng.standard_normal((1, shape.k)).astype(np.float32)

    out_vec = vec.matmul(activation)
    out_loop = loop.matmul(activation)
    np.testing.assert_array_equal(out_vec, out_loop)

    t_vec = _best_seconds(lambda: vec.matmul(activation))
    t_loop = _best_seconds(lambda: loop.matmul(activation))
    record_table_rows.append(
        [shape.label, f"{shape.m}x{shape.k}", bits,
         f"{t_vec * 1e3:.1f}", f"{t_loop * 1e3:.1f}",
         f"{t_loop / t_vec:.2f}x"]
    )
    assert t_vec < t_loop, (
        f"vectorized executor ({t_vec * 1e3:.1f} ms) is not faster than the "
        f"loop path ({t_loop * 1e3:.1f} ms) on {shape.label}"
    )


@pytest.mark.parametrize("shape", KERNEL_SHAPES, ids=lambda s: s.label)
def test_fig7_gemm_parity(shape):
    """Batched activations (prefill regime): bit-identical results.

    S0 runs the full Figure 7 sequence length (N=256); the other shapes run
    the same chunked batched-gather code path at N=8 (the executors are
    row-independent, and the full-size sweep would dominate the suite's
    runtime).  Bit width 1 keeps the full-size S0 run affordable; the other
    widths are covered at N=1 by the fig6 sweep and at small scale by the
    unit tests.
    """
    n = 256 if shape.label == "S0" else 8
    vec, loop = _kernels(shape, 1)
    rng = np.random.default_rng(2)
    activation = rng.standard_normal((n, shape.k)).astype(np.float32)
    np.testing.assert_array_equal(vec.matmul(activation),
                                  loop.matmul(activation))


needs_shm = pytest.mark.skipif(
    not shm.shm_available(),
    reason="multiprocessing.shared_memory unavailable or disabled",
)


@needs_shm
@pytest.mark.parametrize("shape", KERNEL_SHAPES, ids=lambda s: s.label)
def test_fig6_process_pool_parity(shape):
    """N=1 (decode): the process pool is bit-identical at 1/2/4 workers.

    ``parallel_threshold=0`` forces dispatch even for shard sizes the
    amortization heuristic would normally run serially, and the explicit
    ``num_workers`` pins the process pool (no thread delegation) — this is
    a correctness sweep, not a performance one.
    """
    bits = SHAPE_BITS[shape.label]
    plan = _plan(shape.label, shape.m, shape.k, bits)
    vec = TMACKernel.from_plan(plan, TMACConfig(bits=bits,
                                                executor="vectorized"))
    rng = np.random.default_rng(3)
    activation = rng.standard_normal((1, shape.k)).astype(np.float32)
    expected = vec.matmul(activation)
    for workers in PROCESS_WORKER_COUNTS:
        proc = TMACKernel.from_plan(
            plan, TMACConfig(bits=bits, executor="process",
                             num_workers=workers, parallel_threshold=0))
        np.testing.assert_array_equal(expected, proc.matmul(activation))


@needs_shm
@pytest.mark.parametrize("shape", KERNEL_SHAPES, ids=lambda s: s.label)
def test_fig7_process_pool_parity(shape):
    """Batched activations (prefill regime): process pool bit-identity.

    Same row-count policy as the loop-vs-vectorized fig7 sweep: S0 at the
    full Figure 7 N=256, the remaining shapes at N=8.
    """
    n = 256 if shape.label == "S0" else 8
    plan = _plan(shape.label, shape.m, shape.k, 1)
    vec = TMACKernel.from_plan(plan, TMACConfig(bits=1,
                                                executor="vectorized"))
    rng = np.random.default_rng(4)
    activation = rng.standard_normal((n, shape.k)).astype(np.float32)
    expected = vec.matmul(activation)
    for workers in PROCESS_WORKER_COUNTS[1:]:
        proc = TMACKernel.from_plan(
            plan, TMACConfig(bits=1, executor="process",
                             num_workers=workers, parallel_threshold=0))
        np.testing.assert_array_equal(expected, proc.matmul(activation))
