"""Cross-PR benchmark trajectory: aggregate BENCH_*.json into one history.

Every benchmark run writes a ``benchmarks/results/BENCH_<name>.json``
document (see ``benchmarks/conftest.py``) with headline scalar ``metrics``
stamped with the git sha.  This tool folds those per-run documents into a
single committed ``BENCH_trajectory.json`` — one metric history per bench
— and checks fresh runs against the committed baseline so a PR that
quietly loses 10% of decode throughput gets flagged in CI.

Commands::

    python benchmarks/trajectory.py update    # fold current BENCH_*.json in
    python benchmarks/trajectory.py check     # warn on >10% regressions

``check`` always exits 0 and prints GitHub ``::warning::`` annotations —
the numbers come from shared CI runners, so a regression is a prompt for a
human look, not a red build.  Pass ``--strict`` to exit non-zero instead
(for local use on a quiet machine).

Metric direction is inferred from the name (``*_tokens_per_s`` up,
``*_latency_ms`` down, ...); metrics whose direction is ambiguous are
skipped rather than guessed.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Dict, List, Optional, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
TRAJECTORY_BASENAME = "BENCH_trajectory.json"
TRAJECTORY_SCHEMA_VERSION = 1

#: Default regression threshold: warn when a metric moves >10% in the bad
#: direction relative to the committed baseline.
DEFAULT_THRESHOLD = 0.10

#: Keep this many points per bench (oldest dropped first) so the committed
#: file stays reviewable.
DEFAULT_MAX_POINTS = 50

#: Name fragments deciding which direction is "better".  Higher-is-better
#: fragments are consulted first (``tokens_per_s`` must not fall into the
#: ``_s`` seconds suffix); the ``_s``/``_ms`` unit checks are suffix-only
#: so names like ``mpGEMM_S0_threads`` stay unclassified instead of being
#: misread as latencies.
_HIGHER_IS_BETTER = ("tokens_per_s", "tok_s", "throughput", "speedup",
                     "hit_rate", "_over_", "improvement", "bandwidth")
_LOWER_IS_BETTER = ("latency", "seconds", "nmse", "error", "overhead",
                    "bytes", "p50", "p90", "p99")
_LOWER_SUFFIXES = ("_s", "_ms", "_us")


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` is better, or ``None`` when ambiguous."""
    lowered = name.lower()
    if any(frag in lowered for frag in _HIGHER_IS_BETTER):
        return "higher"
    if (any(frag in lowered for frag in _LOWER_IS_BETTER)
            or lowered.endswith(_LOWER_SUFFIXES)):
        return "lower"
    return None


def _load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _bench_documents(results_dir: str) -> List[dict]:
    """Current per-run BENCH_*.json documents (trajectory file excluded)."""
    docs = []
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        if os.path.basename(path) == TRAJECTORY_BASENAME:
            continue
        doc = _load_json(path)
        if isinstance(doc, dict) and doc.get("bench"):
            docs.append(doc)
    return docs


def load_trajectory(path: str) -> dict:
    """The trajectory document, or a fresh empty one."""
    if os.path.exists(path):
        return _load_json(path)
    return {"schema_version": TRAJECTORY_SCHEMA_VERSION, "benches": {}}


def update(results_dir: str = RESULTS_DIR,
           trajectory_path: Optional[str] = None,
           max_points: int = DEFAULT_MAX_POINTS) -> dict:
    """Fold the current BENCH_*.json metrics into the trajectory file.

    A re-run at the same git sha replaces that sha's point instead of
    appending a duplicate, so iterating locally does not inflate the
    history.  Returns the updated document (also written to disk).
    """
    trajectory_path = trajectory_path or os.path.join(results_dir,
                                                      TRAJECTORY_BASENAME)
    trajectory = load_trajectory(trajectory_path)
    benches = trajectory.setdefault("benches", {})
    for doc in _bench_documents(results_dir):
        metrics = {k: v for k, v in (doc.get("metrics") or {}).items()
                   if isinstance(v, (int, float))}
        if not metrics:
            continue
        point = {"git_sha": doc.get("git_sha", "unknown"), "metrics": metrics}
        points = benches.setdefault(doc["bench"], {}).setdefault("points", [])
        if points and points[-1].get("git_sha") == point["git_sha"]:
            points[-1] = point
        else:
            points.append(point)
        del points[:-max_points]
    with open(trajectory_path, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return trajectory


def check(results_dir: str = RESULTS_DIR,
          trajectory_path: Optional[str] = None,
          threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Compare current BENCH_*.json metrics against the committed baseline.

    The baseline for each bench is its most recent trajectory point (the
    numbers the last landed PR committed).  Returns the list of regression
    messages; metrics without a committed baseline, with an ambiguous
    direction, or with a near-zero baseline are skipped.
    """
    trajectory_path = trajectory_path or os.path.join(results_dir,
                                                      TRAJECTORY_BASENAME)
    trajectory = load_trajectory(trajectory_path)
    benches = trajectory.get("benches", {})
    regressions: List[str] = []
    for doc in _bench_documents(results_dir):
        points = benches.get(doc["bench"], {}).get("points", [])
        if not points:
            continue
        baseline: Dict[str, float] = points[-1].get("metrics", {})
        for name, current in sorted((doc.get("metrics") or {}).items()):
            base = baseline.get(name)
            if (not isinstance(current, (int, float))
                    or not isinstance(base, (int, float))
                    or abs(base) < 1e-12):
                continue
            direction = metric_direction(name)
            if direction is None:
                continue
            change = (current - base) / abs(base)
            regressed = (change < -threshold if direction == "higher"
                         else change > threshold)
            if regressed:
                regressions.append(
                    f"{doc['bench']}: {name} regressed {abs(change):.1%} "
                    f"({base:.4g} -> {current:.4g}, "
                    f"{direction}-is-better, baseline "
                    f"{points[-1].get('git_sha', 'unknown')[:12]})"
                )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate and regression-check BENCH_*.json metrics")
    parser.add_argument("command", choices=("update", "check"))
    parser.add_argument("--results", default=RESULTS_DIR,
                        help="results directory (default: %(default)s)")
    parser.add_argument("--trajectory", default=None,
                        help="trajectory file (default: <results>/"
                             f"{TRAJECTORY_BASENAME})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative regression threshold "
                             "(default: %(default)s)")
    parser.add_argument("--max-points", type=int, default=DEFAULT_MAX_POINTS,
                        help="history length per bench (default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when check finds regressions")
    args = parser.parse_args(argv)

    if args.command == "update":
        trajectory = update(args.results, args.trajectory, args.max_points)
        total = sum(len(b.get("points", []))
                    for b in trajectory.get("benches", {}).values())
        print(f"trajectory updated: {len(trajectory.get('benches', {}))} "
              f"benches, {total} points")
        return 0

    regressions = check(args.results, args.trajectory, args.threshold)
    for message in regressions:
        print(f"::warning title=benchmark regression::{message}")
    if not regressions:
        print("no benchmark regressions above "
              f"{args.threshold:.0%} vs committed baseline")
    return 1 if (regressions and args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
