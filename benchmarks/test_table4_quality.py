"""Table 4: end-to-end throughput and model quality across engines.

Reproduces the structure of Table 4 — Un-quantized / llama.cpp / T-MAC /
T-MAC (+FA) rows with a throughput column and quality columns — with two
substitutions documented in DESIGN.md:

* throughput comes from the analytic M2-Ultra single-thread model over the
  real Llama-2-7B layer shapes, and
* quality comes from a *numerical* evaluation of a smaller transformer with
  identical structure under each engine, on synthetic WikiText-2 /
  lambada-style perplexity tasks and a WinoGrande-style binary-choice task
  (the trained checkpoint and datasets are not available offline).

Expected shape: T-MAC matches llama.cpp's quality exactly (to measurement
noise) while being faster; fast aggregation is faster still but measurably
degrades quality.
"""

from __future__ import annotations

import pytest

from repro.core.config import TMACConfig
from repro.eval.perplexity import evaluate_engines
from repro.eval.tasks import make_binary_choice_task, make_lm_task
from repro.hardware import M2_ULTRA
from repro.llm import LLAMA_2_7B, estimate_token_throughput, tiny_arch
from repro.backends import get_backend
from repro.llm.model import TransformerModel, generate_random_weights

HEADERS = ["framework", "tokens/s (M2-Ultra, 1 thread)",
           "synthetic WikiText-2 PPL", "synthetic lambada PPL",
           "synthetic WinoGrande acc."]

#: Paper Table 4 for side-by-side reference.
PAPER_TABLE4 = [
    ("Un-quantized", 3.79, 5.80, 12.65, 0.710),
    ("llama.cpp", 5.65, 5.96, 12.95, 0.708),
    ("T-MAC", 7.34, 5.96, 12.95, 0.708),
    ("T-MAC (+FA)", 8.97, 6.38, 13.99, 0.678),
]


@pytest.fixture(scope="module")
def quality_results():
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=127, max_seq_len=64)
    weights = generate_random_weights(arch, seed=17)
    teacher = TransformerModel(arch, weights=weights)
    wikitext = make_lm_task(teacher, name="synthetic-wikitext2",
                            num_sequences=6, seq_len=18, seed=1)
    lambada = make_lm_task(teacher, name="synthetic-lambada",
                           num_sequences=4, seq_len=14, seed=2,
                           temperature=0.5)
    winogrande = make_binary_choice_task(teacher, num_items=12, seed=3)
    engines = [
        get_backend("reference"),
        get_backend("dequant", bits=4, group_size=32),
        get_backend("tmac", bits=4, group_size=32),
        get_backend("tmac", bits=4, group_size=32, fast_aggregation=True),
    ]
    results = evaluate_engines(arch, engines, wikitext, winogrande,
                               weights=weights, extra_lm_tasks=[lambada])
    return results


def _throughputs():
    rows = {}
    rows["Un-quantized"] = estimate_token_throughput(
        M2_ULTRA, LLAMA_2_7B, 16, "fp16", threads=1).tokens_per_sec
    rows["llama.cpp"] = estimate_token_throughput(
        M2_ULTRA, LLAMA_2_7B, 4, "llama.cpp", threads=1).tokens_per_sec
    rows["T-MAC"] = estimate_token_throughput(
        M2_ULTRA, LLAMA_2_7B, 4, "tmac", threads=1).tokens_per_sec
    rows["T-MAC (+FA)"] = estimate_token_throughput(
        M2_ULTRA, LLAMA_2_7B, 4, "tmac", threads=1,
        config=TMACConfig(bits=4, fast_aggregation=True)).tokens_per_sec
    return rows


def test_table4_throughput_and_quality(benchmark, record_table,
                                       quality_results):
    throughputs = _throughputs()
    name_map = {"reference": "Un-quantized", "llama.cpp": "llama.cpp",
                "T-MAC": "T-MAC", "T-MAC (+FA)": "T-MAC (+FA)"}

    rows = []
    by_name = {}
    for result in quality_results:
        label = name_map[result.engine]
        by_name[label] = result
        rows.append([
            label, f"{throughputs[label]:.2f}", f"{result.perplexity:.3f}",
            f"{result.extra_perplexities['synthetic-lambada']:.3f}",
            f"{result.accuracy:.3f}",
        ])
    for paper_row in PAPER_TABLE4:
        rows.append([f"  (paper) {paper_row[0]}", paper_row[1], paper_row[2],
                     paper_row[3], paper_row[4]])

    record_table("table4_throughput_quality",
                 "Table 4 — throughput and model quality per engine "
                 "(throughput: model; quality: numerical on synthetic tasks)",
                 HEADERS, rows)

    # Throughput ordering: quantized engines beat fp16; T-MAC beats llama.cpp.
    assert throughputs["llama.cpp"] > throughputs["Un-quantized"]
    assert throughputs["T-MAC"] > throughputs["llama.cpp"]
    assert throughputs["T-MAC (+FA)"] >= throughputs["T-MAC"]

    # Quality: T-MAC tracks llama.cpp closely; all engines stay in the same
    # band as the full-precision reference.
    ref = by_name["Un-quantized"]
    gap = abs(by_name["T-MAC"].perplexity - by_name["llama.cpp"].perplexity)
    assert gap < 0.05 * ref.perplexity
    for label in ("llama.cpp", "T-MAC", "T-MAC (+FA)"):
        assert abs(by_name[label].perplexity - ref.perplexity) < \
            0.3 * ref.perplexity

    benchmark(lambda: _throughputs())
