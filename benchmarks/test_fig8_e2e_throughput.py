"""Figure 8: end-to-end token-generation throughput (tokens/s).

Regenerates the two panels of Figure 8 — single-threaded (a) and
multi-threaded (b) decode throughput for the three models (M1 =
Llama-2-7B-4bit, M2 = Llama-2-7B-2bit, M3 = BitNet-3B as 2-bit) on the four
Table 2 devices — by summing roofline GEMV latencies over every linear
layer plus the non-matmul overhead model.

Expected shape: T-MAC is faster everywhere; the gain is larger
single-threaded (paper: 2.8x/6.7x/5.8x on Raspberry Pi 5) than
multi-threaded (paper: 1.1x/2.3x/1.7x on M2-Ultra) because multi-threaded
decode hits the memory-bandwidth wall.
"""

from __future__ import annotations

from repro.hardware import EVALUATION_DEVICES, M2_ULTRA, RASPBERRY_PI_5
from repro.llm import BITNET_3B, LLAMA_2_7B, estimate_token_throughput

MODELS = [
    ("M1 Llama-2-7B-4bit", LLAMA_2_7B, 4),
    ("M2 Llama-2-7B-2bit", LLAMA_2_7B, 2),
    ("M3 BitNet-3B (2-bit)", BITNET_3B, 2),
]
HEADERS = ["device", "model", "threads", "llama.cpp (tok/s)",
           "T-MAC (tok/s)", "speedup"]


def _rows(single_thread: bool):
    rows = []
    for device in EVALUATION_DEVICES:
        threads = 1 if single_thread else device.default_threads
        for label, arch, bits in MODELS:
            llama = estimate_token_throughput(device, arch, bits, "llama.cpp",
                                              threads=threads)
            tmac = estimate_token_throughput(device, arch, bits, "tmac",
                                             threads=threads)
            rows.append([
                device.name, label, threads,
                f"{llama.tokens_per_sec:.2f}", f"{tmac.tokens_per_sec:.2f}",
                f"{tmac.speedup_over(llama):.2f}x",
            ])
    return rows


def test_fig8a_single_thread(benchmark, record_table):
    rows = _rows(single_thread=True)
    record_table("fig8a_e2e_single_thread",
                 "Figure 8a — single-threaded token generation throughput (model)",
                 HEADERS, rows)
    # T-MAC never slower; 2-bit speedups exceed 4-bit speedups per device.
    for row in rows:
        assert float(row[4]) >= float(row[3]) * 0.99
    benchmark(lambda: estimate_token_throughput(
        RASPBERRY_PI_5, LLAMA_2_7B, 2, "tmac", threads=1))


def test_fig8b_multi_thread(benchmark, record_table):
    rows = _rows(single_thread=False)
    record_table("fig8b_e2e_multi_thread",
                 "Figure 8b — multi-threaded token generation throughput (model)",
                 HEADERS, rows)
    # Peak throughput claim: M2-Ultra runs BitNet-3B at tens of tokens/s.
    m3 = [r for r in rows if r[0] == M2_ULTRA.name and r[1].startswith("M3")]
    assert float(m3[0][4]) > 40
    benchmark(lambda: estimate_token_throughput(M2_ULTRA, BITNET_3B, 2, "tmac"))
