"""Figure 9: power (W) and energy (J/token) on M2-Ultra.

Combines the throughput estimates with the energy model for the three
models of Figure 8 under multi-threaded inference on M2-Ultra.

Expected shape: T-MAC draws ~10-20% less power than llama.cpp and cuts
energy per token by roughly 20-60% depending on the model (paper: 20.6%,
61.2%, 51.3% for M1/M2/M3).
"""

from __future__ import annotations

from repro.energy import PowerModel
from repro.hardware import M2_ULTRA
from repro.llm import BITNET_3B, LLAMA_2_7B, estimate_token_throughput

MODELS = [
    ("M1 Llama-2-7B-4bit", LLAMA_2_7B, 4),
    ("M2 Llama-2-7B-2bit", LLAMA_2_7B, 2),
    ("M3 BitNet-3B (2-bit)", BITNET_3B, 2),
]
HEADERS = ["model", "engine", "power (W)", "energy (J/token)",
           "energy reduction"]


def _energy(engine: str, arch, bits):
    power_model = PowerModel(M2_ULTRA)
    est = estimate_token_throughput(M2_ULTRA, arch, bits, engine)
    return power_model.cpu_token_energy(
        est.seconds_per_token, est.instructions_per_token,
        est.dram_gb_per_token, est.threads, engine=engine)


def test_fig9_power_and_energy(benchmark, record_table):
    rows = []
    reductions = {}
    for label, arch, bits in MODELS:
        llama = _energy("llama.cpp", arch, bits)
        tmac = _energy("tmac", arch, bits)
        reduction = 1.0 - tmac.joules_per_token / llama.joules_per_token
        reductions[label] = reduction
        rows.append([label, "llama.cpp", f"{llama.watts:.1f}",
                     f"{llama.joules_per_token:.3f}", "-"])
        rows.append([label, "T-MAC", f"{tmac.watts:.1f}",
                     f"{tmac.joules_per_token:.3f}", f"{reduction:.1%}"])
        # T-MAC draws less power and less energy for every model.
        assert tmac.watts < llama.watts
        assert reduction > 0.1

    record_table("fig9_power_energy_m2ultra",
                 "Figure 9 — power and energy per token on M2-Ultra (model)",
                 HEADERS, rows)

    # The 2-bit Llama model shows the largest energy reduction, as in the
    # paper (61.2% for M2 vs 20.6% for M1).
    assert reductions["M2 Llama-2-7B-2bit"] > reductions["M1 Llama-2-7B-4bit"]

    benchmark(lambda: _energy("tmac", LLAMA_2_7B, 2))
