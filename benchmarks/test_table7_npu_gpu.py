"""Table 7: token-generation throughput of T-MAC vs llama.cpp CPU, llama.cpp
GPU and NPU on Surface Laptop 7, OnePlus 12 and Jetson Orin NX.

Expected shape (paper): T-MAC beats the NPU on both Qualcomm devices (3x on
Surface Laptop 7 at 2 bits using only 4 CPU cores, 1.5x on OnePlus 12),
dwarfs the poorly-optimized Adreno OpenCL backend, and beats the Orin NX's
Ampere GPU at 2 bits while losing to it at 4 bits.
"""

from __future__ import annotations

from repro.baselines.npu import npu_tokens_per_sec
from repro.hardware import EXTENDED_DEVICES, JETSON_ORIN_NX, ONEPLUS_12, SURFACE_LAPTOP_7
from repro.llm import LLAMA_2_7B, estimate_token_throughput

HEADERS = ["device", "model", "T-MAC CPU", "llama.cpp CPU", "llama.cpp GPU",
           "NPU"]

#: Paper Table 7 values for the output artifact.
PAPER_TABLE7 = [
    ("Surface Laptop 7", "Llama-2-7B-4bit", 21.63, 10.64, None, 10.40),
    ("Surface Laptop 7", "Llama-2-7B-2bit", 31.83, 9.39, None, 10.40),
    ("OnePlus 12", "Llama-2-7B-4bit", 10.19, 8.24, 1.60, 11.30),
    ("OnePlus 12", "Llama-2-7B-2bit", 16.62, 6.95, 1.72, 11.30),
    ("Jetson Orin NX", "Llama-2-7B-4bit", 7.53, 3.97, 14.76, None),
    ("Jetson Orin NX", "Llama-2-7B-2bit", 11.41, 3.20, 7.94, None),
]


def _fmt(value):
    return "-" if value is None else f"{value:.2f}"


def test_table7_cpu_gpu_npu(benchmark, record_table):
    rows = []
    estimates = {}
    for device in EXTENDED_DEVICES:
        for bits in (4, 2):
            model_name = f"Llama-2-7B-{bits}bit"
            tmac = estimate_token_throughput(device, LLAMA_2_7B, bits, "tmac")
            llama = estimate_token_throughput(device, LLAMA_2_7B, bits,
                                              "llama.cpp")
            gpu = None
            if device.gpu is not None and device is not SURFACE_LAPTOP_7:
                gpu = estimate_token_throughput(device, LLAMA_2_7B, bits,
                                                "gpu").tokens_per_sec
            npu = npu_tokens_per_sec(device, model_name, bits=bits)
            estimates[(device.name, bits)] = (tmac.tokens_per_sec,
                                              llama.tokens_per_sec, gpu, npu)
            rows.append([device.name, model_name,
                         f"{tmac.tokens_per_sec:.2f}",
                         f"{llama.tokens_per_sec:.2f}", _fmt(gpu), _fmt(npu)])
    for device, model_name, tmac, llama, gpu, npu in PAPER_TABLE7:
        rows.append([f"  (paper) {device}", model_name, _fmt(tmac),
                     _fmt(llama), _fmt(gpu), _fmt(npu)])

    record_table("table7_cpu_gpu_npu",
                 "Table 7 — tokens/s: T-MAC vs llama.cpp CPU/GPU vs NPU "
                 "(model; NPU numbers are the published values)",
                 HEADERS, rows)

    # T-MAC 2-bit beats the NPU on both Qualcomm devices.
    for device in (SURFACE_LAPTOP_7, ONEPLUS_12):
        tmac2, _, _, npu = estimates[(device.name, 2)]
        assert tmac2 > npu
    # T-MAC beats the Adreno OpenCL backend by a wide margin.
    tmac4, _, gpu4, _ = estimates[(ONEPLUS_12.name, 4)]
    assert tmac4 > 3 * gpu4
    # Orin NX: the CUDA GPU wins at 4 bits, T-MAC is competitive at 2 bits.
    tmac4, _, gpu4, _ = estimates[(JETSON_ORIN_NX.name, 4)]
    tmac2, _, gpu2, _ = estimates[(JETSON_ORIN_NX.name, 2)]
    assert gpu4 > tmac4
    assert tmac2 > 0.9 * gpu2
    # T-MAC always beats llama.cpp on the CPU.
    for (device_name, bits), (tmac, llama, _, _) in estimates.items():
        assert tmac > llama

    benchmark(lambda: estimate_token_throughput(SURFACE_LAPTOP_7, LLAMA_2_7B,
                                                2, "tmac"))
