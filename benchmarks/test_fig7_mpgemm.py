"""Figure 7: multi-threaded mpGEMM (sequence length 256), llama.cpp (BLAS)
vs T-MAC.

The llama.cpp baseline for matrix-matrix workloads is its BLAS path
(Accelerate with the AMX coprocessor on M2-Ultra, OpenBLAS elsewhere).
Expected shape: T-MAC wins clearly on the weaker devices at low bits
(up to ~4-5x at 2 bits), while on M2-Ultra the AMX-backed BLAS remains
faster except at 1 bit where T-MAC roughly matches it (the paper reports a
2.0x maximum there against the non-AMX path).
"""

from __future__ import annotations

from repro.baselines.blas_gemm import blas_gemm_latency
from repro.core.config import TMACConfig
from repro.hardware import CostModel, EVALUATION_DEVICES, M2_ULTRA, RASPBERRY_PI_5
from repro.workloads.shapes import GEMM_SEQUENCE_LENGTH, KERNEL_SHAPES

BITS = (1, 2, 3, 4)
HEADERS = ["device", "shape", "MxKxN", "bits",
           "llama.cpp BLAS (ms)", "T-MAC (ms)", "speedup"]


def _rows():
    rows = []
    n = GEMM_SEQUENCE_LENGTH
    for device in EVALUATION_DEVICES:
        model = CostModel(device)
        for shape in KERNEL_SHAPES:
            for bits in BITS:
                blas = blas_gemm_latency(device, n, shape.m, shape.k, bits)
                tmac = model.tmac_gemm_latency(n, shape.m, shape.k,
                                               TMACConfig(bits=bits))
                rows.append([
                    device.name, shape.label, str(shape.with_n(n)), bits,
                    f"{blas.milliseconds:.2f}", f"{tmac.milliseconds:.2f}",
                    f"{blas.seconds / tmac.seconds:.2f}x",
                ])
    return rows


def test_fig7_mpgemm(benchmark, record_table):
    rows = _rows()
    record_table("fig7_mpgemm_seq256",
                 "Figure 7 — multi-threaded mpGEMM latency, seq len 256 (model)",
                 HEADERS, rows)

    # Weak devices: T-MAC wins the 2-bit mpGEMM.
    rpi_2bit = [r for r in rows if r[0] == RASPBERRY_PI_5.name and r[3] == 2]
    assert all(float(r[4]) > float(r[5]) for r in rpi_2bit)

    # M2-Ultra: the AMX-backed BLAS stays ahead at 4 bits (the paper's noted
    # exception).
    m2_4bit = [r for r in rows if r[0] == M2_ULTRA.name and r[3] == 4]
    assert all(float(r[4]) < float(r[5]) for r in m2_4bit)

    model = CostModel(RASPBERRY_PI_5)
    benchmark(lambda: model.tmac_gemm_latency(
        GEMM_SEQUENCE_LENGTH, 4096, 4096, TMACConfig(bits=2)))
