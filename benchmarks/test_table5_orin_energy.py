"""Table 5: Llama-2-7B-2bit end-to-end throughput, power and energy on
Jetson AGX Orin — llama.cpp (CPU), llama.cpp (GPU) and T-MAC (CPU).

Expected shape: without T-MAC the CPU is slower *and* less energy-efficient
than the GPU; with T-MAC the CPU's throughput more than doubles while its
power drops, making it the most energy-efficient engine (paper: 0.66 J/token
for T-MAC vs 1.54 J/token for the GPU and 2.12 J/token for llama.cpp CPU).
"""

from __future__ import annotations

from repro.energy import PowerModel
from repro.hardware import JETSON_AGX_ORIN
from repro.llm import LLAMA_2_7B, estimate_token_throughput

HEADERS = ["framework", "tokens/s", "power (W)", "energy (J/token)"]

#: Paper Table 5 values for the output artifact.
PAPER_TABLE5 = [
    ("llama.cpp (CPU)", 7.08, 15.0, 2.12),
    ("llama.cpp (GPU)", 20.03, 30.8, 1.54),
    ("T-MAC (CPU)", 15.62, 10.4, 0.66),
]


def _estimates():
    power_model = PowerModel(JETSON_AGX_ORIN)
    results = {}

    cpu_llama = estimate_token_throughput(JETSON_AGX_ORIN, LLAMA_2_7B, 2,
                                          "llama.cpp")
    results["llama.cpp (CPU)"] = (cpu_llama, power_model.cpu_token_energy(
        cpu_llama.seconds_per_token, cpu_llama.instructions_per_token,
        cpu_llama.dram_gb_per_token, cpu_llama.threads))

    gpu = estimate_token_throughput(JETSON_AGX_ORIN, LLAMA_2_7B, 2, "gpu")
    results["llama.cpp (GPU)"] = (gpu, power_model.gpu_token_energy(
        gpu.seconds_per_token))

    tmac = estimate_token_throughput(JETSON_AGX_ORIN, LLAMA_2_7B, 2, "tmac")
    results["T-MAC (CPU)"] = (tmac, power_model.cpu_token_energy(
        tmac.seconds_per_token, tmac.instructions_per_token,
        tmac.dram_gb_per_token, tmac.threads))
    return results


def test_table5_orin_throughput_power_energy(benchmark, record_table):
    results = _estimates()
    rows = []
    for label, (est, energy) in results.items():
        rows.append([label, f"{est.tokens_per_sec:.2f}",
                     f"{energy.watts:.1f}",
                     f"{energy.joules_per_token:.2f}"])
    for label, tput, watts, joules in PAPER_TABLE5:
        rows.append([f"  (paper) {label}", tput, watts, joules])

    record_table("table5_orin_energy",
                 "Table 5 — Llama-2-7B-2bit on Jetson AGX Orin (model)",
                 HEADERS, rows)

    cpu_llama = results["llama.cpp (CPU)"]
    gpu = results["llama.cpp (GPU)"]
    tmac = results["T-MAC (CPU)"]

    # Throughput: T-MAC more than doubles the CPU baseline but stays below
    # the CUDA GPU (the paper's observation — non-GEMV operators cap it).
    assert tmac[0].tokens_per_sec > 2 * cpu_llama[0].tokens_per_sec
    assert gpu[0].tokens_per_sec > cpu_llama[0].tokens_per_sec

    # Power: T-MAC CPU < llama.cpp CPU < GPU.
    assert tmac[1].watts < cpu_llama[1].watts < gpu[1].watts

    # Energy: T-MAC is the most efficient engine.
    assert tmac[1].joules_per_token < gpu[1].joules_per_token
    assert tmac[1].joules_per_token < cpu_llama[1].joules_per_token

    benchmark(lambda: _estimates())
