"""Figure 6: mpGEMV latency at 1/2/3/4 bits, llama.cpp vs T-MAC.

Regenerates both panels of the paper's Figure 6 — single-threaded (a) and
multi-threaded (b) mpGEMV latency for the six Llama-2-7B/13B weight shapes
on the four Table 2 devices — from the roofline cost model.  The llama.cpp
1-bit entries are deduced from the 2-bit kernel, exactly as the paper does.

Expected shape of the result (recorded in EXPERIMENTS.md): T-MAC latency
scales ~linearly with the bit width on every device; llama.cpp is flat from
4 to 2 bits and slower at 3 bits; single-thread speedups are largest at
1 bit.
"""

from __future__ import annotations

import pytest

from repro.core.config import TMACConfig
from repro.hardware import CostModel, EVALUATION_DEVICES
from repro.workloads.shapes import KERNEL_SHAPES

BITS = (1, 2, 3, 4)


def _mpgemv_rows(threads_of):
    """Latency rows (ms) for every device / shape / bit width."""
    rows = []
    for device in EVALUATION_DEVICES:
        model = CostModel(device)
        threads = threads_of(device)
        for shape in KERNEL_SHAPES:
            for bits in BITS:
                tmac = model.tmac_gemv_latency(
                    shape.m, shape.k, TMACConfig(bits=bits), threads=threads)
                baseline_bits = 2 if bits == 1 else bits
                dequant = model.dequant_gemv_latency(
                    shape.m, shape.k, baseline_bits, threads=threads)
                rows.append([
                    device.name, shape.label, str(shape), bits, threads,
                    f"{dequant.milliseconds:.3f}",
                    f"{tmac.milliseconds:.3f}",
                    f"{dequant.seconds / tmac.seconds:.2f}x",
                    tmac.bound,
                ])
    return rows


HEADERS = ["device", "shape", "MxKxN", "bits", "threads",
           "llama.cpp (ms)", "T-MAC (ms)", "speedup", "T-MAC bound"]


def test_fig6a_single_thread(benchmark, record_table):
    """Figure 6a: single-threaded mpGEMV latency."""
    rows = _mpgemv_rows(lambda device: 1)
    record_table("fig6a_mpgemv_single_thread",
                 "Figure 6a — single-threaded mpGEMV latency (model)",
                 HEADERS, rows)

    # Sanity: T-MAC scales linearly with bits on each device/shape.
    for device_rows in _group_by(rows, key=lambda r: (r[0], r[1])):
        latencies = [float(r[6]) for r in device_rows]
        assert latencies == sorted(latencies)

    model = CostModel(EVALUATION_DEVICES[0])
    benchmark(lambda: model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2),
                                              threads=1))


def test_fig6b_multi_thread(benchmark, record_table):
    """Figure 6b: multi-threaded mpGEMV latency."""
    rows = _mpgemv_rows(lambda device: device.default_threads)
    record_table("fig6b_mpgemv_multi_thread",
                 "Figure 6b — multi-threaded mpGEMV latency (model)",
                 HEADERS, rows)

    # Sanity: T-MAC is never slower than llama.cpp.
    for row in rows:
        assert float(row[6]) <= float(row[5]) * 1.01

    model = CostModel(EVALUATION_DEVICES[0])
    benchmark(lambda: model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2)))


def _group_by(rows, key):
    groups = {}
    for row in rows:
        groups.setdefault(key(row), []).append(row)
    return groups.values()


@pytest.mark.parametrize("bits", BITS)
def test_fig6_speedup_band(bits, benchmark):
    """Max single-thread speedup per bit width lands in the paper's band
    (paper maxima: 11.2x / 5.8x / 4.7x / 3.1x for 1/2/3/4 bits)."""
    speedups = []
    for device in EVALUATION_DEVICES:
        model = CostModel(device)
        for shape in KERNEL_SHAPES[:3]:
            tmac = model.tmac_gemv_latency(shape.m, shape.k,
                                           TMACConfig(bits=bits), threads=1)
            dequant = model.dequant_gemv_latency(
                shape.m, shape.k, 2 if bits == 1 else bits, threads=1)
            speedups.append(dequant.seconds / tmac.seconds)
    best = max(speedups)
    expected_floor = {1: 5.0, 2: 3.0, 3: 2.5, 4: 1.5}[bits]
    assert best > expected_floor
    benchmark(lambda: max(speedups))
