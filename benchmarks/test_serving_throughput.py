"""Serving microbenchmark: continuous batching vs sequential decode.

Runs N concurrent generation requests through the :class:`ServingEngine`
(one batched mpGEMM per layer per decode step) and through the sequential
:class:`~repro.llm.inference.Generator` (one session at a time), comparing
decode throughput (generated tokens per second) and recording the plan-cache
hit rate and per-step LUT reuse.

The batched path must (a) produce exactly the tokens the sequential path
produces for every session and (b) sustain >= 8 concurrent sessions.  The
throughput edge comes from amortizing per-layer Python/kernel overheads
over the batch — the numpy stand-in for the paper's weight-traversal
amortization on real hardware.
"""

from __future__ import annotations

import time

import pytest

from repro.backends import get_backend
from repro.core.executor import (
    reset_parallel_executor_stats,
    reset_process_executor_stats,
)
from repro.core.plan import clear_plan_cache, plan_cache_stats
from repro.llm import Generator, TransformerModel, tiny_arch
from repro.llm.model import generate_random_weights
from repro.serving import ServingEngine

NUM_SESSIONS = 8
MAX_NEW_TOKENS = 12


@pytest.fixture(scope="module")
def setup():
    clear_plan_cache()
    # The executor counters are process-wide; earlier benchmark modules
    # (e.g. thread_scaling) would otherwise bleed into the stats this
    # module records through serving_stats().
    reset_parallel_executor_stats()
    reset_process_executor_stats()
    arch = tiny_arch(hidden_size=96, intermediate_size=192, num_layers=2,
                     num_heads=4, vocab_size=211, max_seq_len=96)
    weights = generate_random_weights(arch, seed=7)
    prompts = [[(3 * i + 1) % arch.vocab_size, 5, (7 * i + 2) % arch.vocab_size]
               for i in range(NUM_SESSIONS)]
    return arch, weights, prompts


def _build_model(arch, weights):
    return TransformerModel(
        arch, engine=get_backend("tmac", bits=4, group_size=32),
        weights=weights)


def test_batched_serving_throughput(setup, record_table, record_bench):
    arch, weights, prompts = setup
    reps = 2  # best-of-N so a scheduler hiccup cannot invert the comparison

    # Sequential baseline: one session at a time through the generator.
    sequential_model = _build_model(arch, weights)
    generator = Generator(sequential_model)
    sequential_seconds = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        sequential = [generator.generate(p, max_new_tokens=MAX_NEW_TOKENS)
                      for p in prompts]
        sequential_seconds = min(sequential_seconds,
                                 time.perf_counter() - start)
    sequential_tokens = sum(len(r.generated_tokens) for r in sequential)

    # Batched serving: same checkpoint, rebound (exercising the plan cache),
    # all sessions decoded through continuous batching.
    serving_model = _build_model(arch, weights)
    batched_seconds = float("inf")
    for _ in range(reps):
        engine = ServingEngine(serving_model, max_batch_size=NUM_SESSIONS)
        ids = [engine.submit(p, max_new_tokens=MAX_NEW_TOKENS)
               for p in prompts]
        start = time.perf_counter()
        results = engine.run()
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
    batched_tokens = sum(len(results[sid].generated_tokens) for sid in ids)

    # Correctness: batching must not change any session's output.
    for prompt_result, sid in zip(sequential, ids):
        assert results[sid].generated_tokens == prompt_result.generated_tokens

    stats = engine.serving_stats()
    cache = plan_cache_stats()
    assert stats["mean_batch_size"] > 1.0, "decode steps were not batched"
    # Rebinding the checkpoint for the serving model hits the plan cache for
    # every linear layer.
    assert cache["hits"] > 0, "plan cache recorded no hits"
    assert stats["lut_reuses"] > 0, "no per-step LUT sharing occurred"

    seq_tps = sequential_tokens / sequential_seconds
    bat_tps = batched_tokens / batched_seconds
    hit_rate = cache["hits"] / max(1, cache["hits"] + cache["misses"])
    record_table(
        "serving_throughput",
        f"Continuous batching vs sequential decode "
        f"({NUM_SESSIONS} sessions, {MAX_NEW_TOKENS} tokens each)",
        ["mode", "tokens", "seconds", "tokens/s", "mean batch",
         "plan-cache hit rate", "LUT precomputes saved"],
        [
            ["sequential", sequential_tokens, f"{sequential_seconds:.2f}",
             f"{seq_tps:.1f}", "1.0", "-", "-"],
            ["batched", batched_tokens, f"{batched_seconds:.2f}",
             f"{bat_tps:.1f}", f"{stats['mean_batch_size']:.1f}",
             f"{hit_rate:.0%}", stats["lut_reuses"]],
        ],
    )
    record_bench(
        "serving_throughput",
        [
            {"series": "sequential", "tokens": sequential_tokens,
             "seconds": sequential_seconds, "tokens_per_s": seq_tps},
            {"series": "batched", "tokens": batched_tokens,
             "seconds": batched_seconds, "tokens_per_s": bat_tps,
             "mean_batch_size": stats["mean_batch_size"],
             "lut_reuses": stats["lut_reuses"]},
        ],
        params={"num_sessions": NUM_SESSIONS,
                "max_new_tokens": MAX_NEW_TOKENS},
        metrics={"batched_over_sequential": bat_tps / seq_tps,
                 "plan_cache_hit_rate": hit_rate},
    )
    # Throughput: batching amortizes per-layer overhead; require a real win
    # (leave slack for machine noise rather than asserting the full ratio).
    assert bat_tps > seq_tps, (
        f"batched decode ({bat_tps:.1f} tok/s) not faster than sequential "
        f"({seq_tps:.1f} tok/s)"
    )


def test_benchmark_hook_batched_step(benchmark, setup):
    """pytest-benchmark integration: one batched decode step of 8 sessions."""
    arch, weights, prompts = setup
    model = _build_model(arch, weights)

    def fresh_engine():
        engine = ServingEngine(model, max_batch_size=NUM_SESSIONS)
        for prompt in prompts:
            engine.submit(prompt, max_new_tokens=50)
        engine.step()  # admit + prefill + first batched step
        return (engine,), {}

    def step(engine):
        return engine.step()

    # One measured step per fresh engine so no session exhausts its token
    # budget mid-measurement.
    summary = benchmark.pedantic(step, setup=fresh_engine, rounds=5,
                                 iterations=1)
    assert summary["batch_size"] == NUM_SESSIONS
