"""Power and energy models for edge inference (paper Figure 9 and Table 5)."""

from repro.energy.power_model import EnergyReport, PowerModel

__all__ = ["PowerModel", "EnergyReport"]
