"""Power and energy model (paper Figure 9 and Table 5).

The paper measures package power with ``powermetrics`` on the M2-Ultra and
with the board sensors on Jetson AGX Orin, and reports two consistent
observations:

* T-MAC draws ~10-17% less *power* than llama.cpp at the same thread count,
  because its kernels retire several times fewer vector instructions per
  byte of weights streamed (the lookup replaces dequantize+multiply).
* Combined with its latency advantage, this compounds into 20-70% lower
  *energy per token*.

The model reproduces that structure with an explicit energy decomposition::

    E_token = (P_idle + threads * P_core) * t_token            (static / leakage)
            + e_instr * instructions_per_token                 (dynamic compute)
            + e_byte  * dram_bytes_per_token                   (dynamic memory)

    P_avg   = E_token / t_token

The per-instruction and per-gigabyte energies are device calibration
constants stored on :class:`~repro.hardware.device.CPUSpec`.  GPU power uses
the device's GPU power rating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import Device

__all__ = ["EnergyReport", "PowerModel"]


@dataclass(frozen=True)
class EnergyReport:
    """Power/energy estimate for a steady-state token-generation workload."""

    watts: float
    joules_per_token: float
    seconds_per_token: float
    engine: str = ""
    static_joules: float = 0.0
    compute_joules: float = 0.0
    memory_joules: float = 0.0

    @property
    def tokens_per_joule(self) -> float:
        """Inverse energy metric."""
        return 1.0 / self.joules_per_token if self.joules_per_token > 0 else 0.0


class PowerModel:
    """Platform power/energy model for one device."""

    def __init__(self, device: Device):
        self.device = device

    def cpu_token_energy(
        self,
        seconds_per_token: float,
        instructions_per_token: float,
        dram_gb_per_token: float,
        threads: int,
        engine: str = "cpu",
    ) -> EnergyReport:
        """Energy/power for a CPU engine generating tokens back to back.

        Parameters
        ----------
        seconds_per_token:
            End-to-end decode latency per token.
        instructions_per_token:
            Vector instructions retired per token (from the kernel
            profiles).
        dram_gb_per_token:
            DRAM traffic per token in gigabytes (≈ packed model size for the
            decode phase).
        threads:
            Number of active CPU threads.
        """
        if seconds_per_token <= 0:
            raise ValueError("seconds_per_token must be positive")
        if instructions_per_token < 0 or dram_gb_per_token < 0:
            raise ValueError("instruction and traffic counts must be >= 0")
        cpu = self.device.cpu
        static = (cpu.idle_power_w + threads * cpu.core_power_w) * seconds_per_token
        compute = cpu.energy_per_instruction_nj * 1e-9 * instructions_per_token
        memory = cpu.energy_per_gb_j * dram_gb_per_token
        joules = static + compute + memory
        return EnergyReport(
            watts=joules / seconds_per_token,
            joules_per_token=joules,
            seconds_per_token=seconds_per_token,
            engine=engine,
            static_joules=static,
            compute_joules=compute,
            memory_joules=memory,
        )

    def gpu_token_energy(
        self,
        seconds_per_token: float,
        utilization: float = 1.0,
        engine: str = "gpu",
    ) -> EnergyReport:
        """Energy/power for the llama.cpp GPU backend."""
        if self.device.gpu is None:
            raise ValueError(f"device {self.device.name} has no GPU spec")
        if seconds_per_token <= 0:
            raise ValueError("seconds_per_token must be positive")
        watts = self.device.cpu.idle_power_w + self.device.gpu.power_w * utilization
        joules = watts * seconds_per_token
        return EnergyReport(
            watts=watts,
            joules_per_token=joules,
            seconds_per_token=seconds_per_token,
            engine=engine,
            static_joules=joules,
        )
