"""Workload definitions: the kernel shapes and synthetic data generators used
throughout the paper's evaluation."""

from repro.workloads.generator import (
    gaussian_activation,
    gaussian_weights,
    make_gemv_case,
)
from repro.workloads.shapes import (
    GEMM_SEQUENCE_LENGTH,
    KERNEL_SHAPES,
    MatmulShape,
    kernel_shape,
    shapes_for_model,
)

__all__ = [
    "MatmulShape",
    "KERNEL_SHAPES",
    "GEMM_SEQUENCE_LENGTH",
    "kernel_shape",
    "shapes_for_model",
    "gaussian_weights",
    "gaussian_activation",
    "make_gemv_case",
]
