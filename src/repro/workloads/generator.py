"""Synthetic matrix generators for kernel benchmarks and error analysis.

Section 5.6 of the paper generates Gaussian fp16 weights and activations for
the kernel-level NMSE analysis; the same generators are used here for every
numerical kernel benchmark (the performance benchmarks work from shapes
alone and never materialize the paper-scale matrices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.uniform import QuantizedWeight, quantize_weights

__all__ = ["gaussian_weights", "gaussian_activation", "GEMVCase", "make_gemv_case"]


def gaussian_weights(
    m: int, k: int, seed: int = 0, scale: float = 1.0, dtype=np.float32
) -> np.ndarray:
    """Gaussian ``[M, K]`` weight matrix (as in the paper's error analysis)."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((m, k)) * scale).astype(dtype)


def gaussian_activation(
    n: int, k: int, seed: int = 1, scale: float = 1.0, dtype=np.float32
) -> np.ndarray:
    """Gaussian ``[N, K]`` activation matrix."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, k)) * scale).astype(dtype)


@dataclass
class GEMVCase:
    """A complete numerical test case: activations, fp weights and quantized weights."""

    activation: np.ndarray
    weights: np.ndarray
    qweight: QuantizedWeight
    bits: int
    group_size: int

    @property
    def reference(self) -> np.ndarray:
        """Unquantized fp ground truth ``A @ W^T``."""
        return (self.activation.astype(np.float64)
                @ self.weights.astype(np.float64).T).astype(np.float32)


def make_gemv_case(
    m: int,
    k: int,
    n: int = 1,
    bits: int = 4,
    group_size: int = 128,
    seed: int = 0,
) -> GEMVCase:
    """Build a Gaussian GEMV/GEMM case with quantized weights.

    The group size is shrunk (by halving) if it does not divide ``K`` so
    that arbitrary shapes can be exercised.
    """
    while group_size > 4 and k % group_size != 0:
        group_size //= 2
    weights = gaussian_weights(m, k, seed=seed)
    activation = gaussian_activation(n, k, seed=seed + 1)
    qweight = quantize_weights(weights, bits=bits, group_size=group_size)
    return GEMVCase(
        activation=activation,
        weights=weights,
        qweight=qweight,
        bits=bits,
        group_size=group_size,
    )
