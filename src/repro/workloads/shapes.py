"""Kernel benchmark shapes (Figures 6, 7, 10, 11 and Table 3).

The paper benchmarks its kernels on the weight-matrix shapes of Llama-2-7B
and Llama-2-13B.  Six shapes appear in Figures 6/7 (labelled S0-S5 in the
ablation figure); the GPU comparison of Figure 11 and the NMSE analysis of
Table 3 use the first three (7B) shapes.

Shapes are given as ``M x K x N``: ``M`` output features, ``K`` reduction
dimension, ``N`` activation rows (1 for GEMV, 256 for the mpGEMM benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "MatmulShape",
    "KERNEL_SHAPES",
    "GEMM_SEQUENCE_LENGTH",
    "kernel_shape",
    "shapes_for_model",
]

#: Sequence length used by the mpGEMM (prefill) benchmark of Figure 7.
GEMM_SEQUENCE_LENGTH = 256


@dataclass(frozen=True)
class MatmulShape:
    """One benchmark matmul shape ``[N, K] x [M, K]^T``."""

    label: str
    m: int
    k: int
    n: int = 1
    source_model: str = ""

    @property
    def weights(self) -> int:
        """Number of weight elements (M*K)."""
        return self.m * self.k

    def with_n(self, n: int) -> "MatmulShape":
        """The same weight shape with a different activation row count."""
        return MatmulShape(label=self.label, m=self.m, k=self.k, n=n,
                           source_model=self.source_model)

    def __str__(self) -> str:
        return f"{self.m}x{self.k}x{self.n}"


#: The six kernel shapes of Figures 6/7/10 (S0-S5).  The first three come
#: from Llama-2-7B (hidden 4096, intermediate 11008), the last three from
#: Llama-2-13B (hidden 5120, intermediate 13824).
KERNEL_SHAPES: List[MatmulShape] = [
    MatmulShape("S0", 4096, 4096, 1, "Llama-2-7B"),
    MatmulShape("S1", 11008, 4096, 1, "Llama-2-7B"),
    MatmulShape("S2", 4096, 11008, 1, "Llama-2-7B"),
    MatmulShape("S3", 5120, 5120, 1, "Llama-2-13B"),
    MatmulShape("S4", 13824, 5120, 1, "Llama-2-13B"),
    MatmulShape("S5", 5120, 13824, 1, "Llama-2-13B"),
]


def kernel_shape(label: str) -> MatmulShape:
    """Look up one of the S0-S5 benchmark shapes by label."""
    for shape in KERNEL_SHAPES:
        if shape.label == label.upper():
            return shape
    raise KeyError(f"unknown kernel shape {label!r}; expected S0..S5")


def shapes_for_model(model_name: str) -> List[MatmulShape]:
    """All benchmark shapes originating from one model family."""
    matches = [s for s in KERNEL_SHAPES if s.source_model == model_name]
    if not matches:
        known = sorted({s.source_model for s in KERNEL_SHAPES})
        raise KeyError(f"unknown model {model_name!r}; known: {known}")
    return matches
