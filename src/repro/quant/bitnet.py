"""BitNet b1.58 ternary weight quantization.

BitNet b1.58 [Wang et al. 2023] trains LLMs whose weights take only the
values ``{-1, 0, +1}``, scaled per tensor (or per output row).  The paper
deploys BitNet-b1.58-3B with T-MAC by *interpreting ternary weights as 2-bit
codes and decomposing them into two 1-bit matrices* (Section 5.1, "Ternary
weights in 1.58bit BitNet are interpreted as 2-bit").

This module provides that interpretation: ternary weights are quantized with
the absmean rule from the BitNet paper and emitted as a standard
:class:`~repro.quant.uniform.QuantizedWeight` with ``bits=2`` so that every
kernel in the repository (T-MAC, dequantization baseline, reference) can
consume them unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.quant.uniform import QuantizedWeight

__all__ = ["ternary_codes", "quantize_bitnet"]


def ternary_codes(weights: np.ndarray, eps: float = 1e-8) -> tuple:
    """Quantize weights to ternary values using the BitNet absmean rule.

    Each weight is scaled by the mean absolute value of its row and rounded
    to the nearest value in ``{-1, 0, +1}``.

    Returns
    -------
    (ternary, row_scales):
        ``ternary`` is an ``int8`` array of the same shape with values in
        ``{-1, 0, 1}``; ``row_scales`` is a ``float32`` vector of length M
        such that ``weights ~= row_scales[:, None] * ternary``.
    """
    w = np.asarray(weights, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D [M, K], got shape {w.shape}")
    row_scales = np.abs(w).mean(axis=1)
    row_scales = np.maximum(row_scales, eps).astype(np.float32)
    ternary = np.rint(w / row_scales[:, None])
    ternary = np.clip(ternary, -1, 1).astype(np.int8)
    return ternary, row_scales


def quantize_bitnet(weights: np.ndarray, group_size: int = 128) -> QuantizedWeight:
    """Quantize a weight matrix as BitNet-style ternary, packaged as 2-bit codes.

    The ternary value ``t in {-1, 0, +1}`` is stored as the unsigned code
    ``t + 1 in {0, 1, 2}`` with a per-group scale equal to the row's absmean
    scale and a zero point of 1, so the generic reconstruction
    ``scale * (code - zero)`` recovers ``scale * t`` exactly.

    Parameters
    ----------
    weights:
        Real-valued ``[M, K]`` weight matrix (e.g. from a trained BitNet
        checkpoint or a synthetic stand-in).
    group_size:
        Group size used only to shape the scale/zero arrays; every group in
        a row shares the same (row-level) scale, matching BitNet's
        per-tensor/per-row scaling.
    """
    w = np.asarray(weights, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D [M, K], got shape {w.shape}")
    m, k = w.shape
    if k % group_size != 0:
        raise ValueError(f"K={k} must be a multiple of group_size={group_size}")

    ternary, row_scales = ternary_codes(w)
    codes = (ternary.astype(np.int16) + 1).astype(np.uint8)

    num_groups = k // group_size
    scales = np.repeat(row_scales[:, None], num_groups, axis=1).astype(np.float32)
    zeros = np.ones((m, num_groups), dtype=np.float32)

    qw = QuantizedWeight(
        codes=codes,
        scales=scales,
        zeros=zeros,
        bits=2,
        group_size=group_size,
        symmetric=True,
        metadata={"format": "bitnet-b1.58", "ternary": True},
    )
    qw.validate()
    qw.freeze()
    return qw
