"""Dynamic int8 activation quantization.

The dequantization baseline (llama.cpp) quantizes activations on the fly to
int8 blocks (the ``Q8_0`` format) so that the weight/activation dot product
can run on int8 SIMD lanes.  T-MAC keeps activations in fp16/int8 as well,
but consumes them through the lookup table rather than a dot product.

Quantization here is *dynamic* (scales derived from the tensor being
quantized, per row and per block) and symmetric, exactly like ``Q8_0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedActivation", "quantize_activation", "dequantize_activation"]

_INT8_MAX = 127.0


@dataclass
class QuantizedActivation:
    """An activation matrix quantized to int8 with per-block scales.

    Attributes
    ----------
    codes:
        ``int8`` array of shape ``[N, K]``.
    scales:
        ``float32`` array of shape ``[N, K // block_size]``.
    block_size:
        Number of consecutive K elements sharing a scale.
    """

    codes: np.ndarray
    scales: np.ndarray
    block_size: int

    @property
    def shape(self) -> tuple:
        """Shape ``(N, K)`` of the underlying activation matrix."""
        return tuple(self.codes.shape)

    def memory_bytes(self) -> int:
        """Storage footprint in bytes (int8 codes + fp16 scales)."""
        return self.codes.size + self.scales.size * 2


def quantize_activation(
    activation: np.ndarray, block_size: int = 32
) -> QuantizedActivation:
    """Quantize activations to int8 with a symmetric per-block scale.

    Parameters
    ----------
    activation:
        Real-valued ``[N, K]`` activation matrix.
    block_size:
        Block size along K; llama.cpp's ``Q8_0`` uses 32.
    """
    a = np.asarray(activation, dtype=np.float32)
    if a.ndim != 2:
        raise ValueError(f"activation must be 2-D [N, K], got shape {a.shape}")
    n, k = a.shape
    if k % block_size != 0:
        raise ValueError(f"K={k} must be a multiple of block_size={block_size}")

    num_blocks = k // block_size
    blocked = a.reshape(n, num_blocks, block_size)
    amax = np.abs(blocked).max(axis=2)
    scales = np.where(amax > 0, amax / _INT8_MAX, 1.0).astype(np.float32)
    codes = np.rint(blocked / scales[:, :, None])
    codes = np.clip(codes, -127, 127).astype(np.int8)
    return QuantizedActivation(
        codes=codes.reshape(n, k), scales=scales, block_size=block_size
    )


def dequantize_activation(qa: QuantizedActivation) -> np.ndarray:
    """Reconstruct the real-valued activation matrix."""
    n, k = qa.codes.shape
    num_blocks = k // qa.block_size
    codes = qa.codes.reshape(n, num_blocks, qa.block_size).astype(np.float32)
    a = codes * qa.scales[:, :, None]
    return a.reshape(n, k)
