"""Quantization substrate for low-bit LLM weights and activations.

The paper evaluates weight-only quantized ("low-bit") LLMs: 4-bit GPTQ,
3/2-bit BitDistiller, 1-bit OneBit Llama models and ternary (1.58-bit)
BitNet models.  This subpackage provides the quantization formats those
models use, at the numerical level that the mpGEMM kernels consume:

* :mod:`repro.quant.uniform` — per-group uniform (round-to-nearest) weight
  quantization to 1..8 bits, the format of GPTQ/BitDistiller/OneBit exports.
* :mod:`repro.quant.bitnet` — ternary {-1, 0, +1} BitNet b1.58 weights,
  interpreted as 2-bit codes exactly as the paper does.
* :mod:`repro.quant.activation` — dynamic per-row int8 activation
  quantization (the llama.cpp ``Q8_0`` analogue used by the dequantization
  baseline).
"""

from repro.quant.activation import QuantizedActivation, quantize_activation
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import QuantizedWeight, dequantize_weights, quantize_weights

__all__ = [
    "QuantizedWeight",
    "quantize_weights",
    "dequantize_weights",
    "quantize_bitnet",
    "QuantizedActivation",
    "quantize_activation",
]
