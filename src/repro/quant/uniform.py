"""Per-group uniform weight quantization.

This module implements the weight format consumed by every mpGEMM kernel in
the repository: unsigned integer codes of ``bits`` bits, with a floating
point *scale* and *zero point* per group of ``group_size`` consecutive
elements along the reduction (K) axis.

The format mirrors what GPTQ [Frantar et al. 2022], BitDistiller and OneBit
exports look like after packing, and what llama.cpp's ``Q4_0`` / ``Q2_K``
block formats store: the real-valued weight is reconstructed as::

    w = scale * (code - zero_point)

Symmetric quantization (the default) uses ``zero_point = (2**bits - 1) / 2``
so that codes are centred around zero; asymmetric quantization picks the
zero point per group from the data range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "QuantizedWeight",
    "quantize_weights",
    "dequantize_weights",
    "max_code",
]


def max_code(bits: int) -> int:
    """Largest representable unsigned code for a ``bits``-bit weight."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return (1 << bits) - 1


@dataclass
class QuantizedWeight:
    """A weight matrix quantized to low-bit unsigned codes.

    Attributes
    ----------
    codes:
        ``uint8`` array of shape ``[M, K]`` holding the quantized codes,
        each in ``[0, 2**bits - 1]``.  Codes are stored unpacked (one code
        per byte); the T-MAC offline pipeline re-packs them into bit-plane
        index matrices.
    scales:
        ``float32`` array of shape ``[M, K // group_size]``.
    zeros:
        ``float32`` array of shape ``[M, K // group_size]`` holding the
        (possibly fractional) zero points.
    bits:
        Bit width of the codes (1..8).
    group_size:
        Number of consecutive K elements sharing a scale/zero pair.
    symmetric:
        Whether the quantization grid was symmetric around zero.
    """

    codes: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    bits: int
    group_size: int
    symmetric: bool = True
    metadata: dict = field(default_factory=dict)

    @property
    def out_features(self) -> int:
        """Number of output features (rows of the weight matrix), M."""
        return int(self.codes.shape[0])

    @property
    def in_features(self) -> int:
        """Number of input features (reduction dimension), K."""
        return int(self.codes.shape[1])

    @property
    def shape(self) -> tuple:
        """Shape ``(M, K)`` of the underlying weight matrix."""
        return tuple(self.codes.shape)

    @property
    def num_groups(self) -> int:
        """Number of quantization groups along K."""
        return int(self.scales.shape[1])

    def memory_bytes(self) -> int:
        """Packed storage footprint in bytes (codes at ``bits`` each + fp16 scales)."""
        code_bits = self.codes.size * self.bits
        scale_bytes = self.scales.size * 2
        zero_bytes = 0 if self.symmetric else self.zeros.size * 2
        return code_bits // 8 + scale_bytes + zero_bytes

    def freeze(self) -> "QuantizedWeight":
        """Mark the underlying arrays read-only.

        Weights never change during inference, and the kernel-plan cache
        (:mod:`repro.core.plan`) memoizes preprocessing under that
        assumption — freezing turns an accidental in-place mutation (which
        would silently desynchronize the caches) into an immediate
        ``ValueError: assignment destination is read-only``.
        """
        for array in (self.codes, self.scales, self.zeros):
            array.setflags(write=False)
        return self

    def validate(self) -> None:
        """Raise ``ValueError`` if the internal arrays are inconsistent."""
        m, k = self.codes.shape
        if k % self.group_size != 0:
            raise ValueError(
                f"K={k} is not a multiple of group_size={self.group_size}"
            )
        expected_groups = k // self.group_size
        if self.scales.shape != (m, expected_groups):
            raise ValueError(
                f"scales shape {self.scales.shape} != {(m, expected_groups)}"
            )
        if self.zeros.shape != (m, expected_groups):
            raise ValueError(
                f"zeros shape {self.zeros.shape} != {(m, expected_groups)}"
            )
        if self.codes.max(initial=0) > max_code(self.bits):
            raise ValueError(
                f"codes exceed the {self.bits}-bit range [0, {max_code(self.bits)}]"
            )


def _validate_inputs(weights: np.ndarray, bits: int, group_size: int) -> None:
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D [M, K], got shape {weights.shape}")
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if weights.shape[1] % group_size != 0:
        raise ValueError(
            f"K={weights.shape[1]} must be a multiple of group_size={group_size}"
        )


def _search_mse_scales(
    grouped: np.ndarray, qmax: int, base_scales: np.ndarray,
    zeros: np.ndarray, num_candidates: int = 17,
) -> np.ndarray:
    """Per-group scale search minimizing the round-trip MSE.

    Shrinking the scale below the absmax-derived value clips outliers but
    represents the bulk of the distribution more finely — the trick that
    makes 1- and 2-bit round-to-nearest quantization usable, standing in for
    the smarter quantizers (OneBit, BitDistiller) whose checkpoints the
    paper deploys.
    """
    best_scales = base_scales.copy()
    best_error = np.full(base_scales.shape, np.inf, dtype=np.float64)
    for factor in np.linspace(0.25, 1.0, num_candidates):
        scales = base_scales * factor
        divisor = np.where(scales > 0, scales, 1.0)
        codes = np.clip(np.rint(grouped / divisor[:, :, None]
                                + zeros[:, :, None]), 0, qmax)
        recon = scales[:, :, None] * (codes - zeros[:, :, None])
        error = ((recon - grouped) ** 2).sum(axis=2)
        improved = error < best_error
        best_error = np.where(improved, error, best_error)
        best_scales = np.where(improved, scales, best_scales)
    return best_scales.astype(np.float32)


def quantize_weights(
    weights: np.ndarray,
    bits: int = 4,
    group_size: int = 128,
    symmetric: bool = True,
    method: str = "absmax",
) -> QuantizedWeight:
    """Quantize an fp weight matrix to ``bits``-bit codes with per-group scales.

    Parameters
    ----------
    weights:
        Real-valued weight matrix of shape ``[M, K]``.
    bits:
        Target bit width (1..8).  4, 3, 2 and 1 are the widths evaluated in
        the paper.
    group_size:
        Quantization group size along K.  Must divide K.
    symmetric:
        If ``True`` (default) use a symmetric grid centred at zero with zero
        point ``(2**bits - 1) / 2``; otherwise fit an asymmetric grid to the
        per-group min/max.
    method:
        ``"absmax"`` (default) sizes each group's scale from its maximum
        absolute value (no clipping, error bounded by half a step);
        ``"mse"`` additionally searches a per-group clipping scale that
        minimizes the reconstruction MSE, which is what makes 1- and 2-bit
        round-to-nearest quantization behave like the specialised low-bit
        quantizers used in the paper.

    Returns
    -------
    QuantizedWeight
        Codes, scales and zero points reconstructing ``weights`` via
        ``scale * (code - zero)``.
    """
    _validate_inputs(weights, bits, group_size)
    if method not in ("absmax", "mse"):
        raise ValueError(f"method must be 'absmax' or 'mse', got {method!r}")
    w = np.asarray(weights, dtype=np.float32)
    m, k = w.shape
    num_groups = k // group_size
    grouped = w.reshape(m, num_groups, group_size)
    qmax = max_code(bits)

    if symmetric:
        # Symmetric grid: zero point fixed at mid-grid so that the
        # representable range is [-amax, +amax].
        amax = np.abs(grouped).max(axis=2)
        zeros = np.full((m, num_groups), qmax / 2.0, dtype=np.float32)
        scales = np.where(amax > 0, amax / (qmax / 2.0), 0.0).astype(np.float32)
    else:
        gmin = grouped.min(axis=2)
        gmax = grouped.max(axis=2)
        span = gmax - gmin
        scales = np.where(span > 0, span / qmax, 0.0).astype(np.float32)
        zeros = np.where(scales > 0, -gmin / np.where(scales > 0, scales, 1.0),
                         qmax / 2.0).astype(np.float32)

    if method == "mse":
        scales = _search_mse_scales(grouped, qmax, scales, zeros)

    # All-zero (constant) groups get scale 0 so they reconstruct exactly; a
    # unit divisor avoids the division by zero when computing their codes.
    divisor = np.where(scales > 0, scales, 1.0)
    codes = np.rint(grouped / divisor[:, :, None] + zeros[:, :, None])
    codes = np.clip(codes, 0, qmax).astype(np.uint8)

    qw = QuantizedWeight(
        codes=codes.reshape(m, k),
        scales=scales,
        zeros=zeros,
        bits=bits,
        group_size=group_size,
        symmetric=symmetric,
    )
    qw.validate()
    qw.freeze()
    return qw


def dequantize_weights(qw: QuantizedWeight) -> np.ndarray:
    """Reconstruct the real-valued weight matrix from a :class:`QuantizedWeight`.

    This is the reference the dequantization-based baseline (llama.cpp-style
    kernels) uses, and the ground truth for kernel correctness tests:
    ``w = scale * (code - zero)``, applied per quantization group.
    """
    qw.validate()
    m, k = qw.codes.shape
    num_groups = k // qw.group_size
    codes = qw.codes.reshape(m, num_groups, qw.group_size).astype(np.float32)
    w = qw.scales[:, :, None] * (codes - qw.zeros[:, :, None])
    return w.reshape(m, k)
