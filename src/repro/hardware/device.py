"""Device specification dataclasses.

A :class:`Device` bundles the CPU (always present), and optionally a GPU and
an NPU, of one edge platform.  The fields are the quantities the roofline
cost model and the power model consume:

* CPU: core count, frequency, SIMD ISA and issue capability, peak and
  *sustained* memory bandwidth (total and per core), cache sizes, and power
  coefficients.
* GPU: achievable fp16 throughput, memory bandwidth, kernel-launch overhead
  and an efficiency factor capturing how well the llama.cpp GPU backend
  (CUDA or OpenCL) uses the hardware.
* NPU: advertised TOPS and, where available, the vendor-published
  tokens-per-second numbers the paper quotes (Qualcomm AI Hub).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.simd.isa import InstructionSet, isa_for_name

__all__ = ["CPUSpec", "GPUSpec", "NPUSpec", "Device"]


@dataclass(frozen=True)
class CPUSpec:
    """CPU complex of an edge device.

    Attributes
    ----------
    microarchitecture:
        Marketing/core name, e.g. "Apple M2-Ultra", "ARM Cortex-A76".
    cores:
        Total number of (performance) cores available.
    frequency_ghz:
        Sustained clock of the cores used for inference.
    isa_name:
        "neon" or "avx2" — selects the :class:`InstructionSet`.
    simd_throughput_scale:
        Multiplier on the ISA's nominal per-category issue rates; Apple and
        Oryon cores issue roughly twice as many 128-bit vector ops per cycle
        as a Cortex-A76.
    peak_bandwidth_gbs:
        Datasheet DRAM bandwidth (paper Table 2's "Max. Memory Bandwidth").
    sustained_bandwidth_gbs:
        Bandwidth the CPU cluster actually sustains on the GEMV streaming
        pattern with all threads (calibrated from the paper's measured
        latencies; typically 25-50% of peak).
    per_core_bandwidth_gbs:
        Bandwidth a single thread can draw.
    idle_power_w / core_power_w:
        Power model coefficients: platform idle power and incremental power
        of keeping one core active (whether computing or stalled on memory).
    energy_per_instruction_nj / energy_per_gb_j:
        Dynamic energy per retired vector instruction (nanojoules) and per
        gigabyte of DRAM traffic (joules).  These two terms are what make
        T-MAC draw less power than llama.cpp at equal latency: it retires
        several times fewer instructions per byte streamed.
    blas_gflops:
        Sustained GEMM throughput (all cores) of the BLAS library llama.cpp
        links on this platform — Accelerate (with the AMX coprocessor) on
        Apple silicon, OpenBLAS elsewhere.  Used by the BLAS baseline for
        the prefill/mpGEMM comparison (Figure 7).
    """

    microarchitecture: str
    cores: int
    frequency_ghz: float
    isa_name: str
    simd_throughput_scale: float
    peak_bandwidth_gbs: float
    sustained_bandwidth_gbs: float
    per_core_bandwidth_gbs: float
    l2_cache_mb: float = 4.0
    idle_power_w: float = 3.0
    core_power_w: float = 1.5
    energy_per_instruction_nj: float = 0.10
    energy_per_gb_j: float = 0.05
    blas_gflops: float = 100.0

    @property
    def isa(self) -> InstructionSet:
        """The SIMD instruction set of the cores."""
        return isa_for_name(self.isa_name)

    def bandwidth_at(self, threads: int) -> float:
        """Sustained DRAM bandwidth (GB/s) achievable with ``threads`` threads."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        return min(self.sustained_bandwidth_gbs,
                   self.per_core_bandwidth_gbs * threads)


@dataclass(frozen=True)
class GPUSpec:
    """GPU of an edge device, as exercised by the llama.cpp GPU backends."""

    name: str
    fp16_tflops: float
    memory_bandwidth_gbs: float
    kernel_launch_overhead_us: float = 20.0
    backend: str = "cuda"
    efficiency: float = 0.7
    power_w: float = 20.0

    def effective_bandwidth_gbs(self) -> float:
        """Bandwidth the GPU backend sustains on GEMV-style kernels."""
        return self.memory_bandwidth_gbs * self.efficiency

    def effective_tflops(self) -> float:
        """Achievable fp16 throughput after backend efficiency."""
        return self.fp16_tflops * self.efficiency


@dataclass(frozen=True)
class NPUSpec:
    """NPU of an edge device; throughput comes from vendor-published data."""

    name: str
    tops: float
    published_tokens_per_sec: Dict[str, float] = field(default_factory=dict)

    def tokens_per_sec(self, model_name: str) -> Optional[float]:
        """Vendor-published tokens/s for a model, or ``None`` if unknown."""
        return self.published_tokens_per_sec.get(model_name)


@dataclass(frozen=True)
class Device:
    """One edge platform: CPU plus optional GPU / NPU companions."""

    name: str
    cpu: CPUSpec
    default_threads: int
    gpu: Optional[GPUSpec] = None
    npu: Optional[NPUSpec] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.default_threads < 1 or self.default_threads > self.cpu.cores:
            raise ValueError(
                f"default_threads={self.default_threads} must be in "
                f"[1, {self.cpu.cores}] for {self.name}"
            )

    @property
    def isa(self) -> InstructionSet:
        """SIMD instruction set of the device's CPU."""
        return self.cpu.isa
