"""Simple cache/memory-hierarchy model.

The cost model mostly cares about DRAM streaming bandwidth (GEMV weights are
far larger than any cache), but two second-order effects matter for the
smaller operands:

* activations and lookup tables that fit in the shared L2 are effectively
  "free" to re-read, and
* strided (un-permuted) weight layouts waste part of every DRAM transaction.

:class:`MemoryModel` encapsulates those two effects so the cost model can
stay a clean roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import CPUSpec

__all__ = ["MemoryModel", "DRAM_TRANSACTION_BYTES"]

#: Typical DRAM/LPDDR transaction granularity; partial use of a transaction
#: (strided access) wastes the rest of it.
DRAM_TRANSACTION_BYTES = 64


@dataclass
class MemoryModel:
    """Effective-bandwidth model for one CPU complex.

    Parameters
    ----------
    cpu:
        The CPU spec providing sustained/per-core bandwidth and cache size.
    strided_efficiency:
        Fraction of each DRAM transaction that is useful when weight tiles
        are *not* stored sequentially (no offline permutation).  The paper's
        permutation optimization exists precisely to push this back to ~1.
    """

    cpu: CPUSpec
    strided_efficiency: float = 0.6

    def cache_resident(self, working_set_bytes: float) -> bool:
        """Whether a working set fits in the last-level cache."""
        return working_set_bytes <= self.cpu.l2_cache_mb * 1024 * 1024

    def effective_bandwidth_gbs(
        self, threads: int, sequential: bool = True
    ) -> float:
        """Achievable DRAM bandwidth for a streaming kernel.

        ``threads`` scales bandwidth up to the cluster's sustained limit;
        non-sequential access derates the result by ``strided_efficiency``.
        """
        bandwidth = self.cpu.bandwidth_at(threads)
        if not sequential:
            bandwidth *= self.strided_efficiency
        return bandwidth

    def dram_time_seconds(
        self,
        bytes_moved: float,
        threads: int,
        sequential: bool = True,
        reusable_bytes: float = 0.0,
    ) -> float:
        """Time to move ``bytes_moved`` bytes from/to DRAM.

        ``reusable_bytes`` identifies the part of the traffic (activations,
        lookup tables) that stays cache-resident after first touch and is
        therefore only charged once even if the kernel logically re-reads it.
        """
        if bytes_moved < 0:
            raise ValueError("bytes_moved must be non-negative")
        chargeable = bytes_moved
        if reusable_bytes > 0 and self.cache_resident(reusable_bytes):
            chargeable = max(bytes_moved - reusable_bytes, 0.0) + reusable_bytes
        bandwidth = self.effective_bandwidth_gbs(threads, sequential)
        return chargeable / (bandwidth * 1e9)
