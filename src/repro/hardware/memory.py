"""Simple cache/memory-hierarchy model.

The cost model mostly cares about DRAM streaming bandwidth (GEMV weights are
far larger than any cache), but two second-order effects matter for the
smaller operands:

* activations and lookup tables that fit in the shared L2 are effectively
  "free" to re-read, and
* strided (un-permuted) weight layouts waste part of every DRAM transaction.

:class:`MemoryModel` encapsulates those two effects so the cost model can
stay a clean roofline.

The module also owns the KV-cache page accounting used by the paged KV
manager (:mod:`repro.kvcache`): a *page* (block) holds ``block_size`` token
positions of keys *and* values for every layer, so sizing a byte budget in
pages is a pure function of the architecture dimensions
(:func:`kv_block_bytes`, :func:`kv_blocks_for_budget`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import CPUSpec

__all__ = [
    "MemoryModel",
    "DRAM_TRANSACTION_BYTES",
    "kv_block_bytes",
    "kv_blocks_for_budget",
]

#: Typical DRAM/LPDDR transaction granularity; partial use of a transaction
#: (strided access) wastes the rest of it.
DRAM_TRANSACTION_BYTES = 64


def kv_block_bytes(num_layers: int, kv_heads: int, head_dim: int,
                   block_size: int, bytes_per_value: int = 4) -> int:
    """Bytes of one KV page: ``block_size`` positions, K and V, all layers.

    The paged KV manager allocates whole pages, so this is the granularity
    at which a byte budget is carved up.  ``bytes_per_value`` defaults to 4
    (the numerical path stores caches in fp32); the analytic models can pass
    2 for fp16 deployments.
    """
    if min(num_layers, kv_heads, head_dim, block_size, bytes_per_value) < 1:
        raise ValueError("all KV page dimensions must be >= 1")
    return 2 * num_layers * block_size * kv_heads * head_dim * bytes_per_value


def kv_blocks_for_budget(budget_bytes: int, block_bytes: int) -> int:
    """Number of whole KV pages a byte budget can hold (>= 1 required).

    Raises ``ValueError`` when the budget cannot hold even a single page —
    a misconfiguration better caught at pool construction than as a
    zero-capacity allocator that rejects every request.
    """
    if block_bytes < 1:
        raise ValueError("block_bytes must be >= 1")
    blocks = int(budget_bytes) // int(block_bytes)
    if blocks < 1:
        raise ValueError(
            f"KV budget of {budget_bytes} bytes holds no page of "
            f"{block_bytes} bytes; raise the budget or shrink the page"
        )
    return blocks


@dataclass
class MemoryModel:
    """Effective-bandwidth model for one CPU complex.

    Parameters
    ----------
    cpu:
        The CPU spec providing sustained/per-core bandwidth and cache size.
    strided_efficiency:
        Fraction of each DRAM transaction that is useful when weight tiles
        are *not* stored sequentially (no offline permutation).  The paper's
        permutation optimization exists precisely to push this back to ~1.
    """

    cpu: CPUSpec
    strided_efficiency: float = 0.6

    def cache_resident(self, working_set_bytes: float) -> bool:
        """Whether a working set fits in the last-level cache."""
        return working_set_bytes <= self.cpu.l2_cache_mb * 1024 * 1024

    def effective_bandwidth_gbs(
        self, threads: int, sequential: bool = True
    ) -> float:
        """Achievable DRAM bandwidth for a streaming kernel.

        ``threads`` scales bandwidth up to the cluster's sustained limit;
        non-sequential access derates the result by ``strided_efficiency``.
        """
        bandwidth = self.cpu.bandwidth_at(threads)
        if not sequential:
            bandwidth *= self.strided_efficiency
        return bandwidth

    def dram_time_seconds(
        self,
        bytes_moved: float,
        threads: int,
        sequential: bool = True,
        reusable_bytes: float = 0.0,
    ) -> float:
        """Time to move ``bytes_moved`` bytes from/to DRAM.

        ``reusable_bytes`` identifies the part of the traffic (activations,
        lookup tables) that stays cache-resident after first touch and is
        therefore only charged once even if the kernel logically re-reads it.
        """
        if bytes_moved < 0:
            raise ValueError("bytes_moved must be non-negative")
        chargeable = bytes_moved
        if reusable_bytes > 0 and self.cache_resident(reusable_bytes):
            chargeable = max(bytes_moved - reusable_bytes, 0.0) + reusable_bytes
        bandwidth = self.effective_bandwidth_gbs(threads, sequential)
        return chargeable / (bandwidth * 1e9)
