"""Catalogue of the edge devices used in the paper's evaluation.

The four devices of Table 2 (kernel and end-to-end benchmarks) and the three
additional devices of Table 6 (GPU/NPU comparison) are described here.

Datasheet quantities (core counts, frequencies, peak bandwidths, TOPS) come
from the paper's tables; *sustained* bandwidths and SIMD issue scales are
calibration constants chosen so that the roofline model lands in the same
regime as the paper's measured latencies (see EXPERIMENTS.md for the
paper-vs-model comparison).  NPU throughputs are the Qualcomm-AI-Hub numbers
the paper quotes in Table 7.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.device import CPUSpec, Device, GPUSpec, NPUSpec

__all__ = [
    "M2_ULTRA",
    "RASPBERRY_PI_5",
    "JETSON_AGX_ORIN",
    "SURFACE_BOOK_3",
    "SURFACE_LAPTOP_7",
    "ONEPLUS_12",
    "JETSON_ORIN_NX",
    "EVALUATION_DEVICES",
    "EXTENDED_DEVICES",
    "ALL_DEVICES",
    "device_by_name",
]


M2_ULTRA = Device(
    name="M2-Ultra",
    cpu=CPUSpec(
        microarchitecture="Apple M2-Ultra",
        cores=16,
        frequency_ghz=3.5,
        isa_name="neon",
        simd_throughput_scale=4.0,
        peak_bandwidth_gbs=819.2,
        sustained_bandwidth_gbs=200.0,
        per_core_bandwidth_gbs=30.0,
        l2_cache_mb=32.0,
        blas_gflops=4000.0,
        idle_power_w=12.0,
        core_power_w=2.0,
        energy_per_instruction_nj=0.08,
        energy_per_gb_j=0.05,
    ),
    default_threads=8,
    notes="Mac Studio; the paper uses 8 threads for end-to-end inference.",
)

RASPBERRY_PI_5 = Device(
    name="Raspberry Pi 5",
    cpu=CPUSpec(
        microarchitecture="ARM Cortex-A76",
        cores=4,
        frequency_ghz=2.4,
        isa_name="neon",
        simd_throughput_scale=0.7,
        peak_bandwidth_gbs=17.1,
        sustained_bandwidth_gbs=10.0,
        per_core_bandwidth_gbs=5.0,
        l2_cache_mb=2.0,
        blas_gflops=55.0,
        idle_power_w=2.5,
        core_power_w=0.8,
        energy_per_instruction_nj=0.15,
        energy_per_gb_j=0.10,
    ),
    default_threads=4,
)

JETSON_AGX_ORIN = Device(
    name="Jetson AGX Orin",
    cpu=CPUSpec(
        microarchitecture="ARM Cortex-A78AE",
        cores=12,
        frequency_ghz=2.2,
        isa_name="neon",
        simd_throughput_scale=0.8,
        peak_bandwidth_gbs=204.8,
        sustained_bandwidth_gbs=45.0,
        per_core_bandwidth_gbs=5.0,
        l2_cache_mb=6.0,
        blas_gflops=220.0,
        idle_power_w=5.0,
        core_power_w=0.30,
        energy_per_instruction_nj=0.10,
        energy_per_gb_j=0.05,
    ),
    default_threads=12,
    gpu=GPUSpec(
        name="NVIDIA Ampere iGPU (AGX Orin)",
        fp16_tflops=5.3,
        memory_bandwidth_gbs=204.8,
        kernel_launch_overhead_us=25.0,
        backend="cuda",
        efficiency=0.55,
        power_w=26.0,
    ),
)

SURFACE_BOOK_3 = Device(
    name="Surface Book 3",
    cpu=CPUSpec(
        microarchitecture="Intel Core i5-1035G7",
        cores=4,
        frequency_ghz=3.3,
        isa_name="avx2",
        simd_throughput_scale=1.0,
        peak_bandwidth_gbs=58.2,
        sustained_bandwidth_gbs=22.0,
        per_core_bandwidth_gbs=7.0,
        l2_cache_mb=6.0,
        blas_gflops=160.0,
        idle_power_w=4.0,
        core_power_w=2.5,
        energy_per_instruction_nj=0.15,
        energy_per_gb_j=0.08,
    ),
    default_threads=4,
)

SURFACE_LAPTOP_7 = Device(
    name="Surface Laptop 7",
    cpu=CPUSpec(
        microarchitecture="Qualcomm Oryon (Snapdragon X Elite)",
        cores=12,
        frequency_ghz=3.8,
        isa_name="neon",
        simd_throughput_scale=2.0,
        peak_bandwidth_gbs=135.0,
        sustained_bandwidth_gbs=90.0,
        per_core_bandwidth_gbs=25.0,
        l2_cache_mb=36.0,
        blas_gflops=900.0,
        idle_power_w=5.0,
        core_power_w=2.0,
        energy_per_instruction_nj=0.09,
        energy_per_gb_j=0.05,
    ),
    default_threads=4,
    gpu=GPUSpec(
        name="Adreno X1-85",
        fp16_tflops=4.6,
        memory_bandwidth_gbs=135.0,
        kernel_launch_overhead_us=60.0,
        backend="opencl",
        efficiency=0.15,
        power_w=15.0,
    ),
    npu=NPUSpec(
        name="Hexagon NPU (45 TOPS)",
        tops=45.0,
        published_tokens_per_sec={"Llama-2-7B-4bit": 10.40},
    ),
    notes="Paper Table 6: only 4 of the 12 CPU cores are needed to saturate "
          "memory bandwidth.",
)

ONEPLUS_12 = Device(
    name="OnePlus 12",
    cpu=CPUSpec(
        microarchitecture="Qualcomm Snapdragon 8 Gen 3 (Cortex-X4/A720)",
        cores=8,
        frequency_ghz=3.0,
        isa_name="neon",
        simd_throughput_scale=1.2,
        peak_bandwidth_gbs=77.0,
        sustained_bandwidth_gbs=42.0,
        per_core_bandwidth_gbs=12.0,
        l2_cache_mb=12.0,
        blas_gflops=180.0,
        idle_power_w=1.5,
        core_power_w=1.0,
        energy_per_instruction_nj=0.10,
        energy_per_gb_j=0.06,
    ),
    default_threads=4,
    gpu=GPUSpec(
        name="Adreno 750",
        fp16_tflops=4.6,
        memory_bandwidth_gbs=77.0,
        kernel_launch_overhead_us=80.0,
        backend="opencl",
        efficiency=0.08,
        power_w=8.0,
    ),
    npu=NPUSpec(
        name="Hexagon NPU (15 TOPS)",
        tops=15.0,
        published_tokens_per_sec={"Llama-2-7B-4bit": 11.30},
    ),
    notes="llama.cpp's OpenCL backend is poorly optimized for Adreno, which "
          "is why the paper's measured GPU throughput is only ~1.6 tok/s.",
)

JETSON_ORIN_NX = Device(
    name="Jetson Orin NX",
    cpu=CPUSpec(
        microarchitecture="ARM Cortex-A78AE",
        cores=8,
        frequency_ghz=2.0,
        isa_name="neon",
        simd_throughput_scale=1.0,
        peak_bandwidth_gbs=102.4,
        sustained_bandwidth_gbs=30.0,
        per_core_bandwidth_gbs=5.0,
        l2_cache_mb=4.0,
        blas_gflops=140.0,
        idle_power_w=4.0,
        core_power_w=0.35,
        energy_per_instruction_nj=0.10,
        energy_per_gb_j=0.05,
    ),
    default_threads=6,
    gpu=GPUSpec(
        name="NVIDIA Ampere GA10B (Orin NX)",
        fp16_tflops=3.8,
        memory_bandwidth_gbs=102.4,
        kernel_launch_overhead_us=25.0,
        backend="cuda",
        efficiency=0.55,
        power_w=18.0,
    ),
)


#: Table 2 devices (kernel + end-to-end benchmarks).
EVALUATION_DEVICES: List[Device] = [
    M2_ULTRA,
    RASPBERRY_PI_5,
    JETSON_AGX_ORIN,
    SURFACE_BOOK_3,
]

#: Table 6 devices (GPU/NPU comparison).
EXTENDED_DEVICES: List[Device] = [
    SURFACE_LAPTOP_7,
    ONEPLUS_12,
    JETSON_ORIN_NX,
]

ALL_DEVICES: List[Device] = EVALUATION_DEVICES + EXTENDED_DEVICES

_DEVICE_INDEX: Dict[str, Device] = {device.name.lower(): device
                                    for device in ALL_DEVICES}


def device_by_name(name: str) -> Device:
    """Look up a device by (case-insensitive) name."""
    key = name.lower()
    if key not in _DEVICE_INDEX:
        known = ", ".join(sorted(d.name for d in ALL_DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
    return _DEVICE_INDEX[key]
