"""Roofline cost model: instruction profiles -> kernel latencies.

The model is a classic two-term roofline,

``latency = max(compute_time, memory_time)``,

with

* ``compute_time`` — the profile's instruction counts divided by the
  per-category issue rates of the device's ISA, scaled by the core's SIMD
  issue width, frequency and the number of threads.  When the lookup tables
  do not fit in registers (no LUT-centric tiling) lookup instructions are
  slowed down by :data:`TABLE_SPILL_PENALTY` because each lookup round-trips
  through L1/L2.
* ``memory_time`` — the profile's DRAM traffic divided by the effective
  bandwidth from :class:`repro.hardware.memory.MemoryModel` (thread count
  and access-sequentiality aware).

Convenience wrappers build the profiles for T-MAC and the dequantization
baseline directly from problem shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TMACConfig
from repro.hardware.device import Device
from repro.hardware.memory import MemoryModel
from repro.simd.isa import InstructionCategory as IC
from repro.simd.profile import (
    InstructionProfile,
    profile_dequant_gemm,
    profile_tmac_gemm,
)

__all__ = [
    "KernelLatency",
    "CostModel",
    "TABLE_SPILL_PENALTY",
    "PROCESS_DISPATCH_OVERHEAD_S",
    "PROCESS_SHARD_OVERHEAD_S",
    "SHM_COPY_BANDWIDTH",
    "THREAD_POOL_GIL_FRACTION",
    "pool_dispatch_choice",
    "process_ipc_overhead_seconds",
]

#: Slow-down applied to lookup instructions when the tables live in L1/L2
#: instead of vector registers (TM-base, before the LUT-centric tiling).
TABLE_SPILL_PENALTY = 3.0

#: Fixed cost of one process-pool mpGEMM dispatch: taking the pool lock,
#: laying out the scratch arena and waking the result-queue reader.
PROCESS_DISPATCH_OVERHEAD_S = 120e-6

#: Per-shard cost of a process-pool call: one control tuple through a
#: multiprocessing queue each way (pickle + pipe + wakeup).
PROCESS_SHARD_OVERHEAD_S = 60e-6

#: Effective bandwidth of the per-call shared-memory copies (LUT values in,
#: output shards back out) — a plain memcpy through the page cache.
SHM_COPY_BANDWIDTH = 8e9  # bytes/s

#: Fraction of each extra *thread* that converts into real speedup under
#: the GIL.  The thread pool only overlaps inside numpy's nogil kernels;
#: the Python glue between gathers serializes, and the measured
#: thread-scaling run reaches 1.18x on 2 threads — i.e. ~18% of the second
#: thread was usable.  Worker processes do not pay this tax.
THREAD_POOL_GIL_FRACTION = 0.18


def process_ipc_overhead_seconds(
    n: int,
    m: int,
    k: int,
    config: TMACConfig,
    workers: int,
    group_size: int = 128,
) -> float:
    """Per-call overhead of the process executor over the thread one.

    The plan's weight artifacts live in shared memory and cost nothing
    per call; what remains is the fixed dispatch cost, one queue
    round-trip per shard, and the copies through the scratch arena —
    the activation lookup table (plus its dynamic scales), the
    per-quantization-group activation sums, and the output read back.
    Device-independent (pure shape arithmetic over the pool constants),
    so the autotuner shares it with :class:`CostModel`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    groups = k // config.g
    lut_bytes = n * groups * config.table_length * config.table_entry_bytes
    if config.table_quantization:
        blocks = groups // (group_size // config.g
                            if config.lut_scale_granularity == "group"
                            else 1)
        lut_bytes += n * max(1, blocks) * 4  # float32 dynamic scales
    sums_bytes = n * (k // group_size) * 4  # float32 group sums
    out_bytes = n * m * 4  # float32 result, copied back out
    moved = lut_bytes + sums_bytes + out_bytes
    return (PROCESS_DISPATCH_OVERHEAD_S
            + workers * PROCESS_SHARD_OVERHEAD_S
            + moved / SHM_COPY_BANDWIDTH)


@dataclass(frozen=True)
class KernelLatency:
    """Latency estimate for one kernel call."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    threads: int
    bound: str
    description: str = ""

    @property
    def milliseconds(self) -> float:
        """Latency in milliseconds."""
        return self.seconds * 1e3

    @property
    def microseconds(self) -> float:
        """Latency in microseconds."""
        return self.seconds * 1e6


class CostModel:
    """Roofline latency model for one device.

    Parameters
    ----------
    device:
        The :class:`~repro.hardware.device.Device` to model.
    calibration:
        Optional measured host profile
        (:class:`~repro.hardware.calibrate.CalibrationProfile`).  When
        given, :meth:`pool_dispatch_choice` anchors its serial-latency
        term to the measured fit instead of the roofline estimate, so
        thread-vs-process decisions reflect the machine actually running
        the kernels rather than the modelled device.

    Examples
    --------
    >>> from repro.hardware import M2_ULTRA, CostModel
    >>> from repro.core.config import TMACConfig
    >>> model = CostModel(M2_ULTRA)
    >>> lat = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2), threads=1)
    >>> lat.bound in ("compute", "memory")
    True
    """

    def __init__(self, device: Device, calibration=None):
        self.device = device
        self.memory = MemoryModel(device.cpu)
        self.calibration = calibration

    # ------------------------------------------------------------------ #
    # Core roofline
    # ------------------------------------------------------------------ #

    def compute_seconds(self, profile: InstructionProfile, threads: int) -> float:
        """Time spent issuing the profile's vector instructions."""
        isa = self.device.isa
        cycles = 0.0
        for category, count in profile.counts.items():
            per_cycle = isa.throughput_of(category)
            penalty = 1.0
            if category == IC.LOOKUP and not profile.tables_in_registers:
                penalty = TABLE_SPILL_PENALTY
            cycles += count * penalty / per_cycle
        cycles /= self.device.cpu.simd_throughput_scale
        hz = self.device.cpu.frequency_ghz * 1e9
        return cycles / (hz * threads)

    def memory_seconds(self, profile: InstructionProfile, threads: int) -> float:
        """Time spent moving the profile's DRAM traffic."""
        total_bytes = profile.dram_read_bytes + profile.dram_write_bytes
        return self.memory.dram_time_seconds(
            total_bytes, threads, sequential=profile.sequential_weight_access
        )

    def kernel_latency(
        self,
        profile: InstructionProfile,
        threads: Optional[int] = None,
    ) -> KernelLatency:
        """Roofline latency of a kernel described by ``profile``."""
        threads = threads or self.device.default_threads
        if threads < 1 or threads > self.device.cpu.cores:
            raise ValueError(
                f"threads={threads} out of range [1, {self.device.cpu.cores}] "
                f"for {self.device.name}"
            )
        compute = self.compute_seconds(profile, threads)
        memory = self.memory_seconds(profile, threads)
        seconds = max(compute, memory)
        bound = "compute" if compute >= memory else "memory"
        return KernelLatency(
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            threads=threads,
            bound=bound,
            description=profile.description,
        )

    # ------------------------------------------------------------------ #
    # Convenience wrappers for the two CPU kernels
    # ------------------------------------------------------------------ #

    def tmac_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        threads: Optional[int] = None,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMM ``[N,K] x [M,K]^T`` on this device."""
        profile = profile_tmac_gemm(
            n, m, k, config, isa=self.device.isa, group_size=group_size,
            tile_config=tile_config,
        )
        return self.kernel_latency(profile, threads)

    def tmac_gemv_latency(
        self,
        m: int,
        k: int,
        config: TMACConfig,
        threads: Optional[int] = None,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMV (N=1)."""
        return self.tmac_gemm_latency(1, m, k, config, threads, group_size,
                                      tile_config)

    # ------------------------------------------------------------------ #
    # Parallel-executor (output-column sharding) estimates
    # ------------------------------------------------------------------ #

    @staticmethod
    def shard_efficiency(m: int, threads: int, m_tile: int) -> float:
        """Parallel efficiency of tile-aligned output-column sharding.

        The parallel executor shards M into spans of whole ``m_tile``
        layout tiles (:meth:`repro.core.plan.KernelPlan.output_tiles`), so
        the compute term scales not with the raw thread count but with the
        *balance* of the tile distribution: with ``T`` tiles over ``t``
        threads the slowest worker owns ``ceil(T/t)`` tiles, giving an
        effective speedup of ``T / ceil(T/t)`` (= ``t`` whenever ``t``
        divides ``T``).  Returned as speedup / threads in ``(0, 1]``.
        """
        if min(m, threads, m_tile) < 1:
            raise ValueError("m, threads and m_tile must all be >= 1")
        tiles = -(-m // m_tile)
        usable = min(threads, tiles)
        speedup = tiles / -(-tiles // usable)
        return speedup / threads

    def tmac_parallel_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        threads: int,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMM under the parallel executor.

        Unlike :meth:`tmac_gemm_latency` (which assumes ideally divisible
        work), the compute term honours the executor's actual sharding
        geometry via :meth:`shard_efficiency`; the memory term uses the
        bandwidth the thread count can sustain, as before.  The two
        coincide whenever the thread count divides the tile count — the
        thread-scaling benchmark records both.
        """
        if threads < 1 or threads > self.device.cpu.cores:
            raise ValueError(
                f"threads={threads} out of range [1, {self.device.cpu.cores}] "
                f"for {self.device.name}"
            )
        from repro.core.weights import resolve_tile_config

        profile = profile_tmac_gemm(
            n, m, k, config, isa=self.device.isa, group_size=group_size,
            tile_config=tile_config,
        )
        tile = resolve_tile_config(config, tile_config)
        efficiency = self.shard_efficiency(m, threads, tile.m_tm)
        compute = self.compute_seconds(profile, 1) / (threads * efficiency)
        memory = self.memory_seconds(profile, threads)
        seconds = max(compute, memory)
        return KernelLatency(
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            threads=threads,
            bound="compute" if compute >= memory else "memory",
            description=f"{profile.description} [parallel x{threads}]",
        )

    def thread_scaling(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        thread_counts,
        group_size: int = 128,
        tile_config=None,
    ) -> "dict[int, KernelLatency]":
        """Parallel-executor latency at each requested thread count."""
        return {
            int(t): self.tmac_parallel_gemm_latency(
                n, m, k, config, int(t), group_size, tile_config)
            for t in thread_counts
        }

    # ------------------------------------------------------------------ #
    # Process-executor (worker-pool) estimates
    # ------------------------------------------------------------------ #

    def ipc_overhead_seconds(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        workers: int,
        group_size: int = 128,
    ) -> float:
        """Per-call overhead of the process executor over the thread one.

        Delegates to :func:`process_ipc_overhead_seconds` (the term is
        pure shape arithmetic, shared with the autotuner).
        """
        return process_ipc_overhead_seconds(n, m, k, config, workers,
                                            group_size)

    def tmac_process_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        workers: int,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMM under the process executor.

        The compute/memory terms are the thread-pool roofline (worker
        processes shard identically and scale without the GIL tax), plus
        the :meth:`ipc_overhead_seconds` term for the per-call arena
        traffic — which is what makes small shapes favour the thread pool
        and large shapes the process pool.
        """
        base = self.tmac_parallel_gemm_latency(
            n, m, k, config, workers, group_size, tile_config)
        overhead = self.ipc_overhead_seconds(n, m, k, config, workers,
                                             group_size)
        compute = base.compute_seconds + overhead
        seconds = max(compute, base.memory_seconds)
        return KernelLatency(
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=base.memory_seconds,
            threads=workers,
            bound="compute" if compute >= base.memory_seconds else "memory",
            description=base.description.replace(
                f"[parallel x{workers}]", f"[process x{workers}]"),
        )

    def process_scaling(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        worker_counts,
        group_size: int = 128,
        tile_config=None,
    ) -> "dict[int, KernelLatency]":
        """Process-executor latency at each requested worker count."""
        return {
            int(w): self.tmac_process_gemm_latency(
                n, m, k, config, int(w), group_size, tile_config)
            for w in worker_counts
        }

    def pool_dispatch_choice(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        workers: int,
        group_size: int = 128,
        tile_config=None,
    ) -> str:
        """``"thread"`` or ``"process"`` — which pool should run this shape.

        Threads are modelled as the ideal sharded roofline degraded by
        :data:`THREAD_POOL_GIL_FRACTION` (only numpy's nogil interior
        overlaps); processes pay the full IPC term instead.  The process
        executor consults this per shape when ``num_workers`` is left to
        auto-detection, so decode-regime kernels that amortize nothing
        keep using the cheaper thread pool.
        """
        workers = max(1, min(workers, self.device.cpu.cores))
        if workers == 1:
            return "thread"
        serial = self.tmac_gemm_latency(n, m, k, config, threads=1,
                                        group_size=group_size,
                                        tile_config=tile_config).seconds
        ideal = self.tmac_parallel_gemm_latency(
            n, m, k, config, workers, group_size, tile_config).seconds
        if self.calibration is not None and serial > 0:
            # Keep the roofline's *relative* parallel-efficiency structure
            # but anchor the absolute scale to the measured host fit: the
            # IPC term below is absolute seconds, so comparing it against
            # modelled seconds of a different machine would skew the
            # break-even shape.
            measured = self.calibration.predict_gemm_seconds(
                n, m, k, config, group_size)
            ideal *= measured / serial
            serial = measured
        ideal_speedup = serial / ideal if ideal > 0 else 1.0
        gil_speedup = 1.0 + (ideal_speedup - 1.0) * THREAD_POOL_GIL_FRACTION
        thread_s = serial / max(1.0, gil_speedup)
        process_s = ideal + self.ipc_overhead_seconds(
            n, m, k, config, workers, group_size)
        return "process" if process_s < thread_s else "thread"

    def dequant_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        bits: int,
        threads: Optional[int] = None,
        group_size: int = 32,
    ) -> KernelLatency:
        """Latency of the llama.cpp-style dequantization mpGEMM."""
        profile = profile_dequant_gemm(
            n, m, k, bits, isa=self.device.isa, group_size=group_size
        )
        return self.kernel_latency(profile, threads)

    def dequant_gemv_latency(
        self,
        m: int,
        k: int,
        bits: int,
        threads: Optional[int] = None,
        group_size: int = 32,
    ) -> KernelLatency:
        """Latency of the llama.cpp-style dequantization mpGEMV (N=1)."""
        return self.dequant_gemm_latency(1, m, k, bits, threads, group_size)


_DISPATCH_MODEL: Optional[CostModel] = None


def pool_dispatch_choice(
    n: int,
    m: int,
    k: int,
    config: TMACConfig,
    workers: int,
    group_size: int = 128,
    tile_config=None,
) -> str:
    """Thread-vs-process pool choice over a reference multi-core device.

    Module-level convenience for the process executor's runtime heuristic:
    the *relative* ranking of the two pools depends on the shape and the
    IPC term far more than on the exact device, so one reference model
    (the paper's M2 Ultra, the deepest-cored device in the catalogue)
    serves every host.  See :meth:`CostModel.pool_dispatch_choice`.
    """
    global _DISPATCH_MODEL
    if _DISPATCH_MODEL is None:
        from repro.hardware.devices import M2_ULTRA

        _DISPATCH_MODEL = CostModel(M2_ULTRA)
    return _DISPATCH_MODEL.pool_dispatch_choice(
        n, m, k, config, workers, group_size, tile_config)
