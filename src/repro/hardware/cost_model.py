"""Roofline cost model: instruction profiles -> kernel latencies.

The model is a classic two-term roofline,

``latency = max(compute_time, memory_time)``,

with

* ``compute_time`` — the profile's instruction counts divided by the
  per-category issue rates of the device's ISA, scaled by the core's SIMD
  issue width, frequency and the number of threads.  When the lookup tables
  do not fit in registers (no LUT-centric tiling) lookup instructions are
  slowed down by :data:`TABLE_SPILL_PENALTY` because each lookup round-trips
  through L1/L2.
* ``memory_time`` — the profile's DRAM traffic divided by the effective
  bandwidth from :class:`repro.hardware.memory.MemoryModel` (thread count
  and access-sequentiality aware).

Convenience wrappers build the profiles for T-MAC and the dequantization
baseline directly from problem shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TMACConfig
from repro.hardware.device import Device
from repro.hardware.memory import MemoryModel
from repro.simd.isa import InstructionCategory as IC
from repro.simd.profile import (
    InstructionProfile,
    profile_dequant_gemm,
    profile_tmac_gemm,
)

__all__ = ["KernelLatency", "CostModel", "TABLE_SPILL_PENALTY"]

#: Slow-down applied to lookup instructions when the tables live in L1/L2
#: instead of vector registers (TM-base, before the LUT-centric tiling).
TABLE_SPILL_PENALTY = 3.0


@dataclass(frozen=True)
class KernelLatency:
    """Latency estimate for one kernel call."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    threads: int
    bound: str
    description: str = ""

    @property
    def milliseconds(self) -> float:
        """Latency in milliseconds."""
        return self.seconds * 1e3

    @property
    def microseconds(self) -> float:
        """Latency in microseconds."""
        return self.seconds * 1e6


class CostModel:
    """Roofline latency model for one device.

    Parameters
    ----------
    device:
        The :class:`~repro.hardware.device.Device` to model.

    Examples
    --------
    >>> from repro.hardware import M2_ULTRA, CostModel
    >>> from repro.core.config import TMACConfig
    >>> model = CostModel(M2_ULTRA)
    >>> lat = model.tmac_gemv_latency(4096, 4096, TMACConfig(bits=2), threads=1)
    >>> lat.bound in ("compute", "memory")
    True
    """

    def __init__(self, device: Device):
        self.device = device
        self.memory = MemoryModel(device.cpu)

    # ------------------------------------------------------------------ #
    # Core roofline
    # ------------------------------------------------------------------ #

    def compute_seconds(self, profile: InstructionProfile, threads: int) -> float:
        """Time spent issuing the profile's vector instructions."""
        isa = self.device.isa
        cycles = 0.0
        for category, count in profile.counts.items():
            per_cycle = isa.throughput_of(category)
            penalty = 1.0
            if category == IC.LOOKUP and not profile.tables_in_registers:
                penalty = TABLE_SPILL_PENALTY
            cycles += count * penalty / per_cycle
        cycles /= self.device.cpu.simd_throughput_scale
        hz = self.device.cpu.frequency_ghz * 1e9
        return cycles / (hz * threads)

    def memory_seconds(self, profile: InstructionProfile, threads: int) -> float:
        """Time spent moving the profile's DRAM traffic."""
        total_bytes = profile.dram_read_bytes + profile.dram_write_bytes
        return self.memory.dram_time_seconds(
            total_bytes, threads, sequential=profile.sequential_weight_access
        )

    def kernel_latency(
        self,
        profile: InstructionProfile,
        threads: Optional[int] = None,
    ) -> KernelLatency:
        """Roofline latency of a kernel described by ``profile``."""
        threads = threads or self.device.default_threads
        if threads < 1 or threads > self.device.cpu.cores:
            raise ValueError(
                f"threads={threads} out of range [1, {self.device.cpu.cores}] "
                f"for {self.device.name}"
            )
        compute = self.compute_seconds(profile, threads)
        memory = self.memory_seconds(profile, threads)
        seconds = max(compute, memory)
        bound = "compute" if compute >= memory else "memory"
        return KernelLatency(
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            threads=threads,
            bound=bound,
            description=profile.description,
        )

    # ------------------------------------------------------------------ #
    # Convenience wrappers for the two CPU kernels
    # ------------------------------------------------------------------ #

    def tmac_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        threads: Optional[int] = None,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMM ``[N,K] x [M,K]^T`` on this device."""
        profile = profile_tmac_gemm(
            n, m, k, config, isa=self.device.isa, group_size=group_size,
            tile_config=tile_config,
        )
        return self.kernel_latency(profile, threads)

    def tmac_gemv_latency(
        self,
        m: int,
        k: int,
        config: TMACConfig,
        threads: Optional[int] = None,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMV (N=1)."""
        return self.tmac_gemm_latency(1, m, k, config, threads, group_size,
                                      tile_config)

    # ------------------------------------------------------------------ #
    # Parallel-executor (output-column sharding) estimates
    # ------------------------------------------------------------------ #

    @staticmethod
    def shard_efficiency(m: int, threads: int, m_tile: int) -> float:
        """Parallel efficiency of tile-aligned output-column sharding.

        The parallel executor shards M into spans of whole ``m_tile``
        layout tiles (:meth:`repro.core.plan.KernelPlan.output_tiles`), so
        the compute term scales not with the raw thread count but with the
        *balance* of the tile distribution: with ``T`` tiles over ``t``
        threads the slowest worker owns ``ceil(T/t)`` tiles, giving an
        effective speedup of ``T / ceil(T/t)`` (= ``t`` whenever ``t``
        divides ``T``).  Returned as speedup / threads in ``(0, 1]``.
        """
        if min(m, threads, m_tile) < 1:
            raise ValueError("m, threads and m_tile must all be >= 1")
        tiles = -(-m // m_tile)
        usable = min(threads, tiles)
        speedup = tiles / -(-tiles // usable)
        return speedup / threads

    def tmac_parallel_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        threads: int,
        group_size: int = 128,
        tile_config=None,
    ) -> KernelLatency:
        """Latency of a T-MAC mpGEMM under the parallel executor.

        Unlike :meth:`tmac_gemm_latency` (which assumes ideally divisible
        work), the compute term honours the executor's actual sharding
        geometry via :meth:`shard_efficiency`; the memory term uses the
        bandwidth the thread count can sustain, as before.  The two
        coincide whenever the thread count divides the tile count — the
        thread-scaling benchmark records both.
        """
        if threads < 1 or threads > self.device.cpu.cores:
            raise ValueError(
                f"threads={threads} out of range [1, {self.device.cpu.cores}] "
                f"for {self.device.name}"
            )
        from repro.core.weights import resolve_tile_config

        profile = profile_tmac_gemm(
            n, m, k, config, isa=self.device.isa, group_size=group_size,
            tile_config=tile_config,
        )
        tile = resolve_tile_config(config, tile_config)
        efficiency = self.shard_efficiency(m, threads, tile.m_tm)
        compute = self.compute_seconds(profile, 1) / (threads * efficiency)
        memory = self.memory_seconds(profile, threads)
        seconds = max(compute, memory)
        return KernelLatency(
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
            threads=threads,
            bound="compute" if compute >= memory else "memory",
            description=f"{profile.description} [parallel x{threads}]",
        )

    def thread_scaling(
        self,
        n: int,
        m: int,
        k: int,
        config: TMACConfig,
        thread_counts,
        group_size: int = 128,
        tile_config=None,
    ) -> "dict[int, KernelLatency]":
        """Parallel-executor latency at each requested thread count."""
        return {
            int(t): self.tmac_parallel_gemm_latency(
                n, m, k, config, int(t), group_size, tile_config)
            for t in thread_counts
        }

    def dequant_gemm_latency(
        self,
        n: int,
        m: int,
        k: int,
        bits: int,
        threads: Optional[int] = None,
        group_size: int = 32,
    ) -> KernelLatency:
        """Latency of the llama.cpp-style dequantization mpGEMM."""
        profile = profile_dequant_gemm(
            n, m, k, bits, isa=self.device.isa, group_size=group_size
        )
        return self.kernel_latency(profile, threads)

    def dequant_gemv_latency(
        self,
        m: int,
        k: int,
        bits: int,
        threads: Optional[int] = None,
        group_size: int = 32,
    ) -> KernelLatency:
        """Latency of the llama.cpp-style dequantization mpGEMV (N=1)."""
        return self.dequant_gemm_latency(1, m, k, bits, threads, group_size)
