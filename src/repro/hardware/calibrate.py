"""Host calibration: measured per-term overheads for the cost model.

The roofline model (:mod:`repro.hardware.cost_model`) predicts latencies
for the *paper's* devices from first principles.  This module grounds the
repo on the machine it actually runs on: it executes a handful of small
mpGEMV/mpGEMM probes with the real kernels, times the pipeline phases, and
fits one linear coefficient per cost term —

* **LUT build** — ``precompute`` seconds vs. table elements built,
* **gather** — codes-dot seconds vs. elements gathered
  (``N * M * K/g * bits``),
* **aggregate** — vs. per-quantization-group partials produced
  (``N * M * QG * bits``),
* **recombine** — vs. scale/zero recombination iterations
  (``N * M * QG``),

plus a constant per phase (the per-call dispatch overhead the
specialization work attacks).  The same run races the two gather drivers
(advanced indexing vs. :func:`np.take`) and a small chunk-budget sweep, so
the profile also records which driver and which chunk size this host's
caches actually prefer.

The fitted :class:`CalibrationProfile` round-trips through JSON, feeds the
autotuner (:mod:`repro.tuning.tuner`) under ``REPRO_AUTOTUNE=1``, and can
be handed to :class:`~repro.hardware.cost_model.CostModel` so dispatch
decisions use measured serial latencies instead of modelled ones.

Command line::

    python -m repro.hardware.calibrate --out calibration.json [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ProbeShape",
    "ProbeResult",
    "CalibrationProfile",
    "calibrate",
    "load_profile",
    "PROBE_SHAPES",
    "QUICK_PROBE_SHAPES",
    "CHUNK_BUDGET_CANDIDATES",
]

#: Default probe set: ``(n, m, k, bits, group_size)``.  Shapes vary every
#: feature axis independently — N (decode vs. small prefill), M/K (work
#: volume), bits (gather/aggregate vs. recombine ratio) and group size
#: (aggregate vs. gather ratio) — so the least-squares fit can tell the
#: four cost terms apart.
PROBE_SHAPES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 256, 1024, 4, 128),
    (1, 512, 2048, 4, 128),
    (1, 1024, 4096, 4, 128),
    (1, 1024, 4096, 2, 128),
    (1, 512, 2048, 2, 64),
    (1, 1024, 2048, 4, 64),
    (4, 512, 2048, 4, 128),
    (8, 256, 1024, 4, 128),
    (2, 1024, 2048, 3, 128),
)

#: Reduced probe set for the lazy in-process calibration the autotuner
#: falls back to when no saved profile is configured.
QUICK_PROBE_SHAPES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (1, 256, 1024, 4, 128),
    (1, 512, 2048, 4, 128),
    (1, 512, 2048, 2, 128),
    (1, 512, 1024, 4, 64),
    (4, 256, 1024, 4, 128),
)

#: Chunk budgets raced by the locality sweep (raw gather elements per
#: codes-dot chunk).  The executor default is ``1 << 24``; smaller budgets
#: trade numpy batch width for cache residency.
CHUNK_BUDGET_CANDIDATES: Tuple[int, ...] = (1 << 20, 1 << 22, 1 << 24)

#: Shape used for the gather-driver race and the chunk sweep — large
#: enough that the driver difference dominates timer noise, small enough
#: to keep calibration under a few seconds.
_VARIANT_PROBE = (1, 1024, 4096, 4, 128)


@dataclass(frozen=True)
class ProbeShape:
    """One calibration probe: a concrete mpGEMV/mpGEMM problem."""

    n: int
    m: int
    k: int
    bits: int
    group_size: int


@dataclass
class ProbeResult:
    """Measured and (post-fit) predicted timings for one probe."""

    shape: ProbeShape
    lut_elems: int
    gather_elems: int
    aggregate_elems: int
    recombine_iters: int
    lut_build_s: float
    span_s: float  # codes-dot + recombine (matmul given a prebuilt table)
    total_s: float  # lut_build_s + span_s
    predicted_s: float = 0.0

    @property
    def relative_error(self) -> float:
        """``|predicted - measured| / measured`` of the total latency."""
        if self.total_s <= 0:
            return 0.0
        return abs(self.predicted_s - self.total_s) / self.total_s


@dataclass
class CalibrationProfile:
    """Fitted per-term overheads of this host, with the evidence attached.

    ``coefficients`` maps term names to seconds-per-unit:

    ``lut_base_s`` / ``lut_per_elem_s``
        LUT-build phase: constant + per-table-element cost.
    ``span_base_s`` / ``gather_per_elem_s`` / ``aggregate_per_elem_s`` /
    ``recombine_per_iter_s``
        Codes-dot + recombination phase: constant, per gathered element,
        per aggregated partial, per recombination iteration.

    The probes used for the fit are kept (measured *and* predicted), so
    the profile is self-validating: :meth:`max_relative_error` reports the
    in-sample fit quality the acceptance gate checks.
    """

    host: str
    cores: int
    numpy_version: str
    repeats: int
    gather_variant: str
    gather_timings_s: Dict[str, float]
    chunk_elements: Optional[int]
    chunk_timings_s: Dict[str, float]
    coefficients: Dict[str, float]
    probes: List[ProbeResult] = field(default_factory=list)
    version: int = 1

    # -- prediction ----------------------------------------------------- #

    def predict_lut_seconds(self, lut_elems: int) -> float:
        """Predicted LUT-build (precompute) latency."""
        c = self.coefficients
        return c["lut_base_s"] + c["lut_per_elem_s"] * lut_elems

    def predict_span_seconds(self, gather_elems: int, aggregate_elems: int,
                             recombine_iters: int) -> float:
        """Predicted codes-dot + recombination latency."""
        c = self.coefficients
        return (c["span_base_s"]
                + c["gather_per_elem_s"] * gather_elems
                + c["aggregate_per_elem_s"] * aggregate_elems
                + c["recombine_per_iter_s"] * recombine_iters)

    def predict_gemm_seconds(self, n: int, m: int, k: int, config,
                             group_size: int = 128) -> float:
        """Predicted end-to-end mpGEMM latency (LUT build + matmul)."""
        feats = _features(ProbeShape(n, m, k, config.bits, group_size), config)
        lut_elems, gather_elems, aggregate_elems, recombine_iters = feats
        return (self.predict_lut_seconds(lut_elems)
                + self.predict_span_seconds(gather_elems, aggregate_elems,
                                            recombine_iters))

    def predict_gemv_seconds(self, m: int, k: int, config,
                             group_size: int = 128) -> float:
        """Predicted mpGEMV latency (N=1)."""
        return self.predict_gemm_seconds(1, m, k, config, group_size)

    def max_relative_error(self, gemv_only: bool = False) -> float:
        """Worst in-sample prediction error across the fitted probes.

        ``gemv_only`` restricts to the N=1 probes — the decode-regime
        latencies the acceptance gate (and the autotuner's dispatch
        decisions) actually depend on.  Batched (N>1) probes aggregate
        more efficiently per element than a linear model can express, so
        their error runs a little higher.
        """
        probes = [p for p in self.probes if p.shape.n == 1 or not gemv_only]
        if not probes:
            return 0.0
        return max(p.relative_error for p in probes)

    # -- persistence ---------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationProfile":
        """Inverse of :meth:`to_dict`."""
        probes = [
            ProbeResult(shape=ProbeShape(**p.pop("shape")), **p)
            for p in [dict(p) for p in payload.get("probes", ())]
        ]
        fields = {k: v for k, v in payload.items() if k != "probes"}
        return cls(probes=probes, **fields)

    def save(self, path: str) -> None:
        """Write the profile as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibrationProfile":
        """Read a profile previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- side effects ---------------------------------------------------- #

    def apply(self) -> None:
        """Push the measured preferences into the kernel defaults.

        Today that is the gather driver: ``gather_variant="auto"`` configs
        resolve to whichever driver this profile measured faster.
        """
        from repro.core.specialize import set_default_gather_variant

        set_default_gather_variant(self.gather_variant)


# --------------------------------------------------------------------- #
# Probe execution
# --------------------------------------------------------------------- #


def _features(shape: ProbeShape, config) -> Tuple[int, int, int, int]:
    """(lut_elems, gather_elems, aggregate_elems, recombine_iters)."""
    groups = shape.k // config.g
    qgroups = shape.k // shape.group_size
    lut_elems = shape.n * groups * config.table_length
    gather_elems = shape.n * shape.m * groups * shape.bits
    aggregate_elems = shape.n * shape.m * qgroups * shape.bits
    recombine_iters = shape.n * shape.m * qgroups
    return lut_elems, gather_elems, aggregate_elems, recombine_iters


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Minimum of ``repeats`` timed calls, after one untimed warmup.

    The warmup absorbs one-time costs (specialization compile, numpy
    buffer allocation); the minimum estimates the noise-free cost — every
    perturbation (scheduler preemption, frequency transitions) only ever
    adds time, so the fastest observation is the cleanest one.
    """
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_kernel(shape: ProbeShape, config):
    """Deterministic kernel + activation for one probe shape."""
    from repro.core.kernel import TMACKernel
    from repro.quant.uniform import quantize_weights

    seed = hash((shape.n, shape.m, shape.k, shape.bits,
                 shape.group_size)) & 0x7FFFFFFF
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
    qw = quantize_weights(w, bits=shape.bits, group_size=shape.group_size)
    kernel = TMACKernel(qw, config)
    a = rng.standard_normal((shape.n, shape.k)).astype(np.float32)
    return kernel, a


def _probe_config(bits: int, gather_variant: str = "auto",
                  chunk_elements: Optional[int] = None):
    """The probe kernel configuration: the serial specialized hot path."""
    from repro.core.config import TMACConfig

    return TMACConfig(bits=bits, executor="vectorized", specialize=True,
                      gather_variant=gather_variant,
                      chunk_elements=chunk_elements)


def _run_probe(shape: ProbeShape, repeats: int,
               gather_variant: str) -> ProbeResult:
    """Time the LUT-build and matmul phases of one probe shape."""
    config = _probe_config(shape.bits, gather_variant)
    kernel, a = _probe_kernel(shape, config)
    table = kernel.precompute(a)
    lut_s = _best_seconds(lambda: kernel.precompute(a), repeats)
    span_s = _best_seconds(lambda: kernel.matmul_with_table(a, table),
                             repeats)
    feats = _features(shape, config)
    return ProbeResult(
        shape=shape,
        lut_elems=feats[0],
        gather_elems=feats[1],
        aggregate_elems=feats[2],
        recombine_iters=feats[3],
        lut_build_s=lut_s,
        span_s=span_s,
        total_s=lut_s + span_s,
    )


def _race_gather_variants(repeats: int) -> Tuple[str, Dict[str, float]]:
    """Measure both gather drivers on the representative shape."""
    shape = ProbeShape(*_VARIANT_PROBE)
    timings: Dict[str, float] = {}
    for variant in ("fancy", "take"):
        config = _probe_config(shape.bits, gather_variant=variant)
        kernel, a = _probe_kernel(shape, config)
        table = kernel.precompute(a)
        timings[variant] = _best_seconds(
            lambda: kernel.matmul_with_table(a, table), repeats)
    best = min(timings, key=timings.get)
    return best, timings


def _sweep_chunk_budgets(
    repeats: int, gather_variant: str,
    candidates: Sequence[int] = CHUNK_BUDGET_CANDIDATES,
) -> Tuple[Optional[int], Dict[str, float]]:
    """Race chunk budgets on the representative shape.

    Returns ``(best_budget, timings)`` where ``best_budget`` is ``None``
    when the executor default (the largest candidate) wins — in that case
    the tuner leaves ``chunk_elements`` alone.
    """
    from repro.core.executor import VectorizedExecutor

    shape = ProbeShape(*_VARIANT_PROBE)
    default_budget = VectorizedExecutor.max_gather_elements
    timings: Dict[str, float] = {}
    best_budget, best_s = None, float("inf")
    for budget in candidates:
        config = _probe_config(shape.bits, gather_variant,
                               chunk_elements=budget)
        kernel, a = _probe_kernel(shape, config)
        table = kernel.precompute(a)
        seconds = _best_seconds(
            lambda: kernel.matmul_with_table(a, table), repeats)
        timings[str(budget)] = seconds
        if seconds < best_s:
            best_budget, best_s = budget, seconds
    if best_budget is not None and best_budget >= default_budget:
        best_budget = None
    return best_budget, timings


# --------------------------------------------------------------------- #
# Fitting
# --------------------------------------------------------------------- #


def _nonnegative_lstsq(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Least squares with coefficients clamped to ``>= 0``.

    Cost coefficients are physical (seconds per unit of work); a plain
    ``lstsq`` can go slightly negative on noisy, nearly-collinear columns
    (gather vs. aggregate differ only by the ``group_size/g`` ratio).
    Iteratively zeroing the most negative coefficient and refitting the
    rest keeps predictions monotone in every feature.
    """
    active = list(range(design.shape[1]))
    coef = np.zeros(design.shape[1])
    while active:
        sub, *_ = np.linalg.lstsq(design[:, active], target, rcond=None)
        if (sub >= 0).all():
            coef[active] = sub
            break
        worst = active[int(np.argmin(sub))]
        active.remove(worst)
    return coef


def _relative_lstsq(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Non-negative least squares on *relative* residuals.

    Each equation is scaled by ``1 / measured`` before solving, so the fit
    minimizes ``sum(((pred - meas) / meas)^2)`` instead of absolute error.
    Without this the multi-millisecond probes dominate and the fit happily
    mispredicts sub-millisecond decode shapes by 30%+ — exactly the shapes
    the autotuner cares most about.
    """
    weights = 1.0 / np.maximum(target, 1e-9)
    return _nonnegative_lstsq(design * weights[:, None], target * weights)


def _fit(probes: Sequence[ProbeResult]) -> Dict[str, float]:
    """Fit the per-term coefficients from the probe timings."""
    lut_design = np.array([[1.0, p.lut_elems] for p in probes])
    lut_target = np.array([p.lut_build_s for p in probes])
    lut_coef = _relative_lstsq(lut_design, lut_target)

    span_design = np.array([
        [1.0, p.gather_elems, p.aggregate_elems, p.recombine_iters]
        for p in probes
    ])
    span_target = np.array([p.span_s for p in probes])
    span_coef = _relative_lstsq(span_design, span_target)

    return {
        "lut_base_s": float(lut_coef[0]),
        "lut_per_elem_s": float(lut_coef[1]),
        "span_base_s": float(span_coef[0]),
        "gather_per_elem_s": float(span_coef[1]),
        "aggregate_per_elem_s": float(span_coef[2]),
        "recombine_per_iter_s": float(span_coef[3]),
    }


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #


def calibrate(
    shapes: Optional[Sequence[Tuple[int, int, int, int, int]]] = None,
    repeats: int = 5,
    quick: bool = False,
    sweep_chunks: bool = True,
) -> CalibrationProfile:
    """Run the probes, fit the cost terms, return the host profile.

    ``quick=True`` uses the reduced probe set and fewer repeats — the mode
    the autotuner uses when calibrating lazily inside a serving process.
    The returned profile has already been :meth:`~CalibrationProfile.apply`-d
    (the measured gather preference is active).
    """
    import platform

    if quick:
        shapes = shapes or QUICK_PROBE_SHAPES
        repeats = min(repeats, 3)
    else:
        shapes = shapes or PROBE_SHAPES

    gather_variant, gather_timings = _race_gather_variants(repeats)
    if sweep_chunks:
        chunk_best, chunk_timings = _sweep_chunk_budgets(repeats,
                                                         gather_variant)
    else:
        chunk_best, chunk_timings = None, {}

    probes = [_run_probe(ProbeShape(*spec), repeats, gather_variant)
              for spec in shapes]
    coefficients = _fit(probes)

    profile = CalibrationProfile(
        host=platform.node() or "unknown",
        cores=os.cpu_count() or 1,
        numpy_version=np.__version__,
        repeats=repeats,
        gather_variant=gather_variant,
        gather_timings_s=gather_timings,
        chunk_elements=chunk_best,
        chunk_timings_s=chunk_timings,
        coefficients=coefficients,
        probes=probes,
    )
    for probe in profile.probes:
        probe.predicted_s = profile.predict_gemm_seconds(
            probe.shape.n, probe.shape.m, probe.shape.k,
            _probe_config(probe.shape.bits), probe.shape.group_size)
    profile.apply()
    return profile


def load_profile(path: Optional[str] = None) -> Optional[CalibrationProfile]:
    """Load the profile named by ``path`` or ``REPRO_CALIBRATION``.

    Returns ``None`` when neither names an existing file — callers fall
    back to lazy quick calibration or the analytic model.
    """
    path = path or os.environ.get("REPRO_CALIBRATION")
    if not path or not os.path.exists(path):
        return None
    profile = CalibrationProfile.load(path)
    profile.apply()
    return profile


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: calibrate this host and write the profile JSON."""
    parser = argparse.ArgumentParser(
        description="Measure per-term kernel overheads on this host")
    parser.add_argument("--out", default="calibration.json",
                        help="output profile path (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per probe (median taken)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced probe set (faster, less precise)")
    args = parser.parse_args(argv)

    profile = calibrate(repeats=args.repeats, quick=args.quick)
    profile.save(args.out)
    worst = profile.max_relative_error()
    print(f"calibrated {profile.host}: gather={profile.gather_variant} "
          f"chunk={profile.chunk_elements or 'default'} "
          f"worst fit error {worst:.1%}")
    for name, value in sorted(profile.coefficients.items()):
        print(f"  {name:>22s} = {value:.3e}")
    print(f"profile written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
