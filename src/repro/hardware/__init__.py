"""Hardware substrate: edge-device catalogue and roofline cost model.

The paper evaluates T-MAC on real devices (Tables 2 and 6).  This package
replaces the physical hardware with

* :mod:`repro.hardware.device` / :mod:`repro.hardware.devices` — structured
  specifications (cores, frequencies, SIMD ISA, peak and sustained memory
  bandwidth, GPU/NPU companions) for every device in the paper,
* :mod:`repro.hardware.memory` — a small cache-hierarchy model used to pick
  effective bandwidths for a given working set,
* :mod:`repro.hardware.cost_model` — a roofline latency model that converts
  the instruction/traffic profiles of :mod:`repro.simd.profile` into kernel
  latencies (compute-bound vs. memory-bound), for any thread count.

Latencies produced here are estimates intended to reproduce the *shape* of
the paper's results (scaling with bit width, thread count, and device), not
wall-clock measurements of the original kernels.
"""

from repro.hardware.cost_model import CostModel, KernelLatency
from repro.hardware.device import CPUSpec, Device, GPUSpec, NPUSpec
from repro.hardware.devices import (
    ALL_DEVICES,
    EVALUATION_DEVICES,
    EXTENDED_DEVICES,
    JETSON_AGX_ORIN,
    JETSON_ORIN_NX,
    M2_ULTRA,
    ONEPLUS_12,
    RASPBERRY_PI_5,
    SURFACE_BOOK_3,
    SURFACE_LAPTOP_7,
    device_by_name,
)

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "NPUSpec",
    "Device",
    "CostModel",
    "KernelLatency",
    "M2_ULTRA",
    "RASPBERRY_PI_5",
    "JETSON_AGX_ORIN",
    "SURFACE_BOOK_3",
    "SURFACE_LAPTOP_7",
    "ONEPLUS_12",
    "JETSON_ORIN_NX",
    "EVALUATION_DEVICES",
    "EXTENDED_DEVICES",
    "ALL_DEVICES",
    "device_by_name",
]
