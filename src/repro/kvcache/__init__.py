"""Paged KV-cache management: block allocator, prefix sharing, paged caches.

The paper's LUT-based mpGEMM makes decode compute cheap, which moves the
serving bottleneck to KV memory.  This subsystem applies the same
memory-hierarchy discipline to the KV working set that the kernel applies
to weight tiles:

* :mod:`repro.kvcache.allocator` — :class:`BlockAllocator`: a fixed pool of
  page ids with refcounting, copy-on-write-friendly sharing, and LRU
  eviction of cached-but-unreferenced pages.
* :mod:`repro.kvcache.prefix` — :class:`PrefixCache`: a chained token-keyed
  trie over *full* pages, so requests sharing a prompt prefix map the same
  physical pages (SGLang-style radix reuse).
* :mod:`repro.kvcache.paged` — :class:`PagedSessionCache` (one block table
  per request) and :class:`PagedKVCache`, the per-layer drop-in for
  :class:`repro.llm.layers.KVCache`.
* :mod:`repro.kvcache.pool` — :class:`PagePool`: the preallocated
  byte-budgeted storage tying the three together.

The serving engine (:mod:`repro.serving.engine`) schedules against this
pool: admission by free-page count, preemption-and-requeue when a decode
step cannot get a page, and chunked prefill so long prompts do not stall
the running batch.
"""

from repro.kvcache.allocator import BlockAllocator, OutOfBlocks
from repro.kvcache.paged import PagedKVCache, PagedSessionCache
from repro.kvcache.pool import DEFAULT_BLOCK_SIZE, PagePool
from repro.kvcache.prefix import PrefixCache

__all__ = [
    "BlockAllocator",
    "OutOfBlocks",
    "PrefixCache",
    "PagedKVCache",
    "PagedSessionCache",
    "PagePool",
    "DEFAULT_BLOCK_SIZE",
]
