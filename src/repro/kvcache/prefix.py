"""Token-keyed prefix cache over full KV pages.

Sessions whose prompts share a prefix should share *physical* KV pages
(SGLang-style radix-tree reuse).  The cache maps a **chained block key** —
``(parent_key, tokens_of_this_block)`` — to the physical block holding
those positions' keys/values.  Chaining makes the key equivalent to the
whole token prefix up to the block's end while keeping each dict key O(one
block) in size, exactly the hash-of-prefix trick vLLM's prefix caching
uses; matching walks the chain block by block, so lookups are a radix
descent over full pages.

Only *full* blocks are ever registered: a partially filled page is still
being written by its owning session and cannot be shared safely (the paged
cache copy-on-writes it on fork instead).

Eviction is driven by the allocator: when an unreferenced cached block is
reclaimed (LRU), the allocator's ``on_evict`` hook calls
:meth:`PrefixCache.forget_block` so the mapping disappears atomically with
the page's reuse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PrefixCache"]

#: Key of the trie root (the empty prefix).
_ROOT = None


class PrefixCache:
    """Chained-key map from full-block token runs to physical block ids."""

    def __init__(self, block_size: int):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self._blocks: Dict[Tuple, int] = {}
        self._key_of_block: Dict[int, Tuple] = {}
        self.lookups = 0
        self.hit_tokens = 0
        self.requested_tokens = 0

    @staticmethod
    def chain_key(parent_key: Optional[Tuple],
                  block_tokens: Sequence[int]) -> Tuple:
        """Key of the block holding ``block_tokens`` after ``parent_key``."""
        return (parent_key, tuple(int(t) for t in block_tokens))

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------ #
    # Lookup / registration
    # ------------------------------------------------------------------ #

    def match(self, tokens: Sequence[int],
              max_tokens: Optional[int] = None,
              record: bool = True) -> Tuple[List[int], Optional[Tuple]]:
        """Longest full-block prefix of ``tokens`` present in the cache.

        Returns the matched physical block ids (possibly empty) and the
        chain key of the last matched block (``None`` when nothing
        matched), from which the caller continues the chain when it later
        commits its own full blocks.  ``max_tokens`` caps the match — the
        serving engine passes ``len(prompt) - 1`` so at least one prompt
        token is always recomputed and yields the logits the first sampled
        token needs.  ``record=False`` leaves the hit-rate counters alone
        (used by admission-control probes that precede the real match).
        """
        limit = len(tokens) if max_tokens is None else min(len(tokens),
                                                           max_tokens)
        if record:
            self.lookups += 1
            self.requested_tokens += limit
        block_ids: List[int] = []
        key: Optional[Tuple] = _ROOT
        start = 0
        while start + self.block_size <= limit:
            candidate = self.chain_key(key,
                                       tokens[start:start + self.block_size])
            block_id = self._blocks.get(candidate)
            if block_id is None:
                break
            key = candidate
            block_ids.append(block_id)
            start += self.block_size
        if record:
            self.hit_tokens += start
        return block_ids, key

    def insert(self, key: Tuple, block_id: int) -> bool:
        """Register a full block under its chain key.

        Returns ``False`` (and keeps the existing mapping) when the key is
        already present — two sessions that decoded identical content
        independently keep the first physical block as the shared one.
        """
        if key in self._blocks:
            return False
        self._blocks[key] = block_id
        self._key_of_block[block_id] = key
        return True

    def lookup(self, key: Tuple) -> Optional[int]:
        """Physical block registered under ``key``, if any."""
        return self._blocks.get(key)

    def forget_block(self, block_id: int) -> None:
        """Drop the mapping of an evicted block (allocator ``on_evict``)."""
        key = self._key_of_block.pop(block_id, None)
        if key is not None and self._blocks.get(key) == block_id:
            del self._blocks[key]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def hit_rate(self) -> float:
        """Fraction of looked-up tokens served from cached pages."""
        if self.requested_tokens == 0:
            return 0.0
        return self.hit_tokens / self.requested_tokens
