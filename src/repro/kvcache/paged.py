"""Block-table-backed KV caches over a shared page pool.

A session's KV state is a **block table**: an ordered list of physical page
ids in the :class:`~repro.kvcache.pool.PagePool`.  One table serves every
layer (page ``b`` holds positions ``b*block_size .. (b+1)*block_size-1``
for *all* layers), so prefix sharing and copy-on-write operate on whole
token ranges, never per layer.

:class:`PagedKVCache` is the per-layer view handed to the model — a drop-in
for :class:`repro.llm.layers.KVCache`: it implements the same
``append`` / ``stacked`` / ``length`` / ``memory_bytes`` contract, so
``TransformerModel.forward`` and the batched decode path run unmodified on
paged storage.  ``stacked`` gathers the pages into the contiguous
``[total, kv_heads, head_dim]`` arrays :func:`repro.llm.layers.attend`
consumes; the gathered values are bit-identical to what an unpaged cache
holds, so attention outputs are too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kvcache.allocator import OutOfBlocks

__all__ = ["PagedKVCache", "PagedSessionCache"]


class PagedSessionCache:
    """One session's block table plus per-layer fill state.

    Created by :meth:`repro.kvcache.pool.PagePool.create_session_cache`
    (which seeds the table with prefix-cache hits).  The serving engine
    calls :meth:`reserve` *before* each forward so an out-of-memory
    condition surfaces as schedulable :class:`OutOfBlocks` instead of a
    half-written step; :meth:`append` also auto-grows for standalone use.
    """

    def __init__(self, pool, block_ids: Sequence[int], prefix_tokens: int,
                 chain_key):
        self.pool = pool
        self.block_table: List[int] = list(block_ids)
        #: tokens per layer already present (prefix hits fill all layers).
        self._lengths: List[int] = [prefix_tokens] * pool.num_layers
        self.prefix_length = prefix_tokens
        self._committed_blocks = len(self.block_table)
        self._chain_key = chain_key
        self._released = False

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #

    @property
    def block_size(self) -> int:
        return self.pool.block_size

    @property
    def capacity(self) -> int:
        """Token positions the current block table can hold."""
        return len(self.block_table) * self.block_size

    @property
    def num_tokens(self) -> int:
        """Positions written in every layer (a full forward keeps layers equal)."""
        return min(self._lengths) if self._lengths else 0

    def blocks_needed(self, num_tokens: int) -> int:
        """Additional pages required to hold ``num_tokens`` positions."""
        total = -(-num_tokens // self.block_size)  # ceil division
        return max(0, total - len(self.block_table))

    def reserve(self, num_tokens: int) -> int:
        """Grow the block table to cover ``num_tokens`` positions.

        All-or-nothing: on :class:`OutOfBlocks` any pages grabbed by this
        call are returned before the exception propagates, so a failed
        reservation leaves the table unchanged (the engine requeues or
        preempts without leaking pages).
        """
        self._check_live()
        needed = self.blocks_needed(num_tokens)
        grabbed: List[int] = []
        try:
            for _ in range(needed):
                grabbed.append(self.pool.allocator.allocate())
        except OutOfBlocks:
            for block_id in grabbed:
                self.pool.allocator.release(block_id)
            raise
        self.block_table.extend(grabbed)
        return needed

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #

    def write(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``[seq, kv_heads, head_dim]`` keys/values for one layer."""
        self._check_live()
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        start = self._lengths[layer]
        end = start + k.shape[0]
        if end > self.capacity:
            self.reserve(end)
        bs = self.block_size
        row = 0
        position = start
        while position < end:
            block_index = position // bs
            slot = position % bs
            take = min(bs - slot, end - position)
            block_id = self._writable_block(block_index)
            self.pool.keys[block_id, layer, slot:slot + take] = \
                k[row:row + take]
            self.pool.values[block_id, layer, slot:slot + take] = \
                v[row:row + take]
            row += take
            position += take
        self._lengths[layer] = end

    def _writable_block(self, block_index: int) -> int:
        """Copy-on-write: writing a shared page first forks a private copy."""
        block_id = self.block_table[block_index]
        if self.pool.allocator.refcount(block_id) <= 1:
            return block_id
        fresh = self.pool.allocator.allocate()
        self.pool.keys[fresh] = self.pool.keys[block_id]
        self.pool.values[fresh] = self.pool.values[block_id]
        self.pool.allocator.release(block_id)
        self.block_table[block_index] = fresh
        # The fork diverges from the committed chain at this page; stop
        # extending the shared chain from here.
        self._committed_blocks = min(self._committed_blocks, block_index)
        self._chain_key = None if block_index == 0 else self._chain_key
        self.pool.cow_forks += 1
        return fresh

    def gather(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        """Contiguous ``[total, kv_heads, head_dim]`` keys and values."""
        self._check_live()
        n = self._lengths[layer]
        if n == 0:
            raise ValueError("KV cache is empty")
        bs = self.block_size
        num_blocks = -(-n // bs)
        ids = self.block_table[:num_blocks]
        k = self.pool.keys[ids, layer].reshape(num_blocks * bs, *self.pool.kv_shape)[:n]
        v = self.pool.values[ids, layer].reshape(num_blocks * bs, *self.pool.kv_shape)[:n]
        return k, v

    # ------------------------------------------------------------------ #
    # Sharing
    # ------------------------------------------------------------------ #

    def fork(self) -> "PagedSessionCache":
        """A new cache sharing every page (copy-on-write on first append).

        Mirrors vLLM's sequence fork (beam search / n-best sampling): the
        child costs zero pages until one side writes into the shared tail
        page, at which point :meth:`_writable_block` gives the writer a
        private copy.
        """
        self._check_live()
        for block_id in self.block_table:
            self.pool.allocator.retain(block_id)
        child = PagedSessionCache(self.pool, self.block_table,
                                  prefix_tokens=0, chain_key=self._chain_key)
        child._lengths = list(self._lengths)
        child.prefix_length = self.prefix_length
        child._committed_blocks = self._committed_blocks
        return child

    def commit_prefix(self, tokens: Sequence[int]) -> int:
        """Register newly filled full pages in the prefix cache.

        ``tokens`` is the session's token history; positions up to
        :attr:`num_tokens` have their K/V written in every layer, so each
        complete page among them is immutable from here on and safe to
        share.  Returns the number of pages newly registered.
        """
        self._check_live()
        prefix = self.pool.prefix_cache
        if prefix is None:
            return 0
        full_blocks = self.num_tokens // self.block_size
        registered = 0
        for index in range(self._committed_blocks, full_blocks):
            start = index * self.block_size
            key = prefix.chain_key(self._chain_key,
                                   tokens[start:start + self.block_size])
            if prefix.insert(key, self.block_table[index]):
                self.pool.allocator.mark_cached(self.block_table[index])
                registered += 1
            self._chain_key = key
            self._committed_blocks = index + 1
        return registered

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def release(self) -> None:
        """Drop every page reference; cached pages become LRU-evictable.

        References are dropped leaf-first (reverse table order) so the LRU
        evictor reclaims the *tail* of a cached prefix chain before its
        root — evicting the root first would orphan every descendant page,
        since :meth:`~repro.kvcache.prefix.PrefixCache.match` can only
        reach them by walking the chain from the root.
        """
        if self._released:
            return
        for block_id in reversed(self.block_table):
            self.pool.allocator.release(block_id)
        self.block_table = []
        self._lengths = [0] * self.pool.num_layers
        self._released = True

    def _check_live(self) -> None:
        if self._released:
            raise RuntimeError("paged cache used after release()")

    def layer_views(self) -> List["PagedKVCache"]:
        """One :class:`PagedKVCache` per layer, for ``model.forward``."""
        return [PagedKVCache(self, layer)
                for layer in range(self.pool.num_layers)]

    def memory_bytes(self) -> int:
        """Pool bytes held by this session's page references."""
        return len(self.block_table) * self.pool.block_bytes


class PagedKVCache:
    """Per-layer view of a :class:`PagedSessionCache`.

    Drop-in for :class:`repro.llm.layers.KVCache`: same ``append`` /
    ``stacked`` / ``length`` / ``memory_bytes`` surface, backed by the
    shared page pool instead of per-session arrays.
    """

    def __init__(self, session_cache: PagedSessionCache, layer: int):
        self.session_cache = session_cache
        self.layer = layer

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values of shape ``[seq, kv_heads, head_dim]``."""
        self.session_cache.write(self.layer, k, v)

    def stacked(self) -> Tuple[np.ndarray, np.ndarray]:
        """All cached keys and values as two ``[total, heads, dim]`` arrays."""
        return self.session_cache.gather(self.layer)

    @property
    def length(self) -> int:
        """Number of cached positions in this layer."""
        return self.session_cache._lengths[self.layer]

    def memory_bytes(self) -> int:
        """fp32 bytes of the positions this view holds (token-based, like
        the unpaged cache; page-rounded pool usage is the session cache's
        :meth:`PagedSessionCache.memory_bytes`)."""
        heads, dim = self.session_cache.pool.kv_shape
        return int(self.length * heads * dim * 4 * 2)
