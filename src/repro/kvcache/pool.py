"""The shared KV page pool: storage + allocator + prefix cache.

:class:`PagePool` carves a byte budget into fixed-size pages (16 tokens by
default) held in two preallocated arrays::

    keys   [num_blocks, num_layers, block_size, kv_heads, head_dim]  fp32
    values [num_blocks, num_layers, block_size, kv_heads, head_dim]  fp32

so the total KV footprint is fixed at construction — the serving engine's
admission control and preemption decisions are made against
:attr:`free_blocks`, not against unbounded per-session growth.  Page
bookkeeping (refcounts, LRU eviction) lives in
:class:`~repro.kvcache.allocator.BlockAllocator`; token-content reuse in
:class:`~repro.kvcache.prefix.PrefixCache`; per-session views in
:mod:`repro.kvcache.paged`.

Knobs
-----
``budget_bytes``
    Total bytes for all sessions' KV state.  The pool holds
    ``budget_bytes // block_bytes`` pages
    (:func:`repro.hardware.memory.kv_blocks_for_budget`).
``block_size``
    Tokens per page (default 16).  Smaller pages waste less memory on
    partially filled tails but shorten the full-block prefix runs that can
    be shared; larger pages amortize bookkeeping.
``prefix_caching``
    When on (default), full pages are registered in the prefix cache and
    requests whose prompts share a full-page prefix map the same physical
    pages.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.memory import kv_block_bytes, kv_blocks_for_budget
from repro.kvcache.allocator import BlockAllocator
from repro.kvcache.paged import PagedSessionCache
from repro.kvcache.prefix import PrefixCache

__all__ = ["PagePool", "DEFAULT_BLOCK_SIZE"]

#: Default tokens-per-page, matching vLLM's default block size.
DEFAULT_BLOCK_SIZE = 16


class PagePool:
    """Fixed-budget paged KV storage shared by all sessions of an engine."""

    def __init__(self, num_layers: int, kv_heads: int, head_dim: int,
                 budget_bytes: int, block_size: int = DEFAULT_BLOCK_SIZE,
                 prefix_caching: bool = True):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.num_layers = num_layers
        self.block_size = block_size
        self.kv_shape: Tuple[int, int] = (kv_heads, head_dim)
        self.block_bytes = kv_block_bytes(num_layers, kv_heads, head_dim,
                                          block_size, bytes_per_value=4)
        self.num_blocks = kv_blocks_for_budget(budget_bytes, self.block_bytes)
        shape = (self.num_blocks, num_layers, block_size, kv_heads, head_dim)
        self.keys = np.zeros(shape, dtype=np.float32)
        self.values = np.zeros(shape, dtype=np.float32)
        self.prefix_cache: Optional[PrefixCache] = (
            PrefixCache(block_size) if prefix_caching else None
        )
        on_evict = (self.prefix_cache.forget_block
                    if self.prefix_cache is not None else None)
        self.allocator = BlockAllocator(self.num_blocks, on_evict=on_evict)
        self.cow_forks = 0

    @classmethod
    def for_model(cls, arch, budget_bytes: int,
                  block_size: int = DEFAULT_BLOCK_SIZE,
                  prefix_caching: bool = True) -> "PagePool":
        """Build a pool sized for a :class:`repro.llm.architecture.TransformerArch`."""
        return cls(arch.num_layers, arch.num_kv_heads, arch.head_dim,
                   budget_bytes, block_size=block_size,
                   prefix_caching=prefix_caching)

    # ------------------------------------------------------------------ #
    # Session caches
    # ------------------------------------------------------------------ #

    def create_session_cache(self, tokens: Sequence[int]
                             ) -> PagedSessionCache:
        """A session cache seeded with prefix-cache hits for ``tokens``.

        At most ``len(tokens) - 1`` positions are taken from the cache (in
        whole pages): the last token is always left to be recomputed so the
        prefill still produces the logits the first sampled token is drawn
        from.  Matched pages are retained before the cache is returned, so
        they cannot be evicted while the session runs.
        """
        if self.prefix_cache is None:
            return PagedSessionCache(self, [], prefix_tokens=0,
                                     chain_key=None)
        tokens = [int(t) for t in tokens]
        block_ids, chain_key = self.prefix_cache.match(
            tokens, max_tokens=len(tokens) - 1)
        for block_id in block_ids:
            self.allocator.retain(block_id)
        return PagedSessionCache(self, block_ids,
                                 prefix_tokens=len(block_ids) * self.block_size,
                                 chain_key=chain_key)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def free_blocks(self) -> int:
        """Pages allocatable right now (free + LRU-evictable)."""
        return self.allocator.num_free

    @property
    def used_kv_bytes(self) -> int:
        """Bytes of pages currently referenced by live sessions."""
        return self.allocator.used_blocks * self.block_bytes

    @property
    def peak_kv_bytes(self) -> int:
        """High-water mark of referenced page bytes."""
        return self.allocator.peak_used_blocks * self.block_bytes

    @property
    def shared_blocks(self) -> int:
        """Pages referenced by more than one session right now."""
        return self.allocator.num_shared

    def stats(self) -> Dict[str, float]:
        """Counters for the serving stats / the KV memory benchmark."""
        out: Dict[str, float] = {
            "kv_num_blocks": self.num_blocks,
            "kv_block_size": self.block_size,
            "kv_block_bytes": self.block_bytes,
            "kv_used_blocks": self.allocator.used_blocks,
            "kv_free_blocks": self.free_blocks,
            "kv_peak_used_blocks": self.allocator.peak_used_blocks,
            "kv_peak_bytes": self.peak_kv_bytes,
            "kv_shared_blocks": self.shared_blocks,
            "kv_evictions": self.allocator.evictions,
            "kv_cow_forks": self.cow_forks,
        }
        if self.prefix_cache is not None:
            out.update({
                "prefix_cached_blocks": len(self.prefix_cache),
                "prefix_lookups": self.prefix_cache.lookups,
                "prefix_hit_tokens": self.prefix_cache.hit_tokens,
                "prefix_requested_tokens":
                    self.prefix_cache.requested_tokens,
                "prefix_hit_rate": self.prefix_cache.hit_rate,
            })
        return out
