"""Refcounted block allocator over a fixed pool of KV pages.

The allocator hands out integer block ids from a fixed-size pool and tracks
three disjoint populations:

* **free** — never allocated, or released while uncached; reusable
  immediately.
* **referenced** — held by at least one session (``refcount >= 1``).
* **evictable** — refcount dropped to zero but the block was registered in
  the prefix cache (:mod:`repro.kvcache.prefix`), so its contents may still
  be reused by a future request.  Evictable blocks are kept in LRU order
  and reclaimed only when the free list runs dry; reclaiming one fires the
  ``on_evict`` hook so the prefix cache unlinks it.

Copy-on-write forks (:meth:`repro.kvcache.paged.PagedSessionCache.fork`)
and prefix hits express sharing purely through :meth:`BlockAllocator.retain`
— the allocator never inspects page contents.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Dict, Optional

__all__ = ["OutOfBlocks", "BlockAllocator"]


class OutOfBlocks(RuntimeError):
    """No free or evictable block is available.

    The serving engine turns this into scheduling policy (queue the request,
    or preempt the youngest running session); callers using the pool
    directly see it as a hard capacity error.
    """


class BlockAllocator:
    """Fixed-pool block allocator with refcounting and LRU reuse.

    Parameters
    ----------
    num_blocks:
        Total number of pages in the pool (the byte budget divided by the
        page size; see :func:`repro.hardware.memory.kv_blocks_for_budget`).
    on_evict:
        Called with a block id whenever a cached-but-unreferenced block is
        reclaimed to satisfy an allocation, so the owner of the block's
        content key (the prefix cache) can forget it.
    """

    def __init__(self, num_blocks: int,
                 on_evict: Optional[Callable[[int], None]] = None):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        self.num_blocks = num_blocks
        self.on_evict = on_evict
        self._free = deque(range(num_blocks))
        self._refcounts: Dict[int, int] = {}
        #: blocks with refcount 0 whose contents are still prefix-cached,
        #: in LRU order (oldest release first = first to be reclaimed).
        self._evictable: "OrderedDict[int, None]" = OrderedDict()
        self._cached: set = set()
        self.evictions = 0
        self.peak_used_blocks = 0
        #: blocks currently referenced by more than one holder, maintained
        #: incrementally so per-step stats stay O(1) in pool size.
        self.num_shared = 0

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #

    @property
    def num_free(self) -> int:
        """Blocks allocatable right now (truly free + evictable)."""
        return len(self._free) + len(self._evictable)

    @property
    def used_blocks(self) -> int:
        """Blocks currently referenced by at least one session."""
        return len(self._refcounts)

    def refcount(self, block_id: int) -> int:
        """Current reference count (0 for free/evictable blocks)."""
        return self._refcounts.get(block_id, 0)

    def is_cached(self, block_id: int) -> bool:
        """Whether the block's contents are registered in the prefix cache."""
        return block_id in self._cached

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def allocate(self) -> int:
        """Return a block with refcount 1, evicting an LRU block if needed."""
        if self._free:
            block_id = self._free.popleft()
        elif self._evictable:
            block_id, _ = self._evictable.popitem(last=False)
            self._cached.discard(block_id)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(block_id)
        else:
            raise OutOfBlocks(
                f"all {self.num_blocks} KV blocks are referenced"
            )
        self._refcounts[block_id] = 1
        self.peak_used_blocks = max(self.peak_used_blocks, self.used_blocks)
        return block_id

    def retain(self, block_id: int) -> None:
        """Add a reference; revives an evictable (prefix-hit) block."""
        if block_id in self._refcounts:
            self._refcounts[block_id] += 1
            if self._refcounts[block_id] == 2:
                self.num_shared += 1
        elif block_id in self._evictable:
            del self._evictable[block_id]
            self._refcounts[block_id] = 1
            self.peak_used_blocks = max(self.peak_used_blocks,
                                        self.used_blocks)
        else:
            raise KeyError(f"block {block_id} is not allocated")

    def release(self, block_id: int) -> None:
        """Drop one reference.

        At refcount zero a prefix-cached block parks on the LRU evictable
        list (its contents may serve a future prefix hit); an uncached block
        returns straight to the free list.
        """
        count = self._refcounts.get(block_id)
        if count is None:
            raise KeyError(f"block {block_id} is not allocated")
        if count > 1:
            self._refcounts[block_id] = count - 1
            if count == 2:
                self.num_shared -= 1
            return
        del self._refcounts[block_id]
        if block_id in self._cached:
            self._evictable[block_id] = None  # most-recently released = last
        else:
            self._free.append(block_id)

    def mark_cached(self, block_id: int) -> None:
        """Flag a referenced block as prefix-cached (evictable-on-release)."""
        if block_id not in self._refcounts:
            raise KeyError(f"block {block_id} is not allocated")
        self._cached.add(block_id)
