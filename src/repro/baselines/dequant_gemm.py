"""llama.cpp-style dequantization-based mpGEMM (numerical kernel).

This is the "general practice" of the paper's Figure 1/3: low-bit weights
are decoded block-by-block to a hardware data type and multiplied against
block-quantized int8 activations with an integer dot product, then rescaled.

The kernel is numerically faithful to llama.cpp's ``Q*_0 x Q8_0`` path:

* activations are dynamically quantized to int8 with one scale per
  32-element block (``Q8_0``),
* weight codes are recentred by their zero point inside each quantization
  group and multiplied in the integer domain,
* the block dot product is rescaled by ``weight_scale * activation_scale``.

Its error relative to the unquantized reference is therefore the weight
quantization error plus a small activation-quantization term — the
"llama.cpp" column of Table 3.  Performance of this baseline is *not*
measured from this Python loop; it comes from
:func:`repro.simd.profile.profile_dequant_gemm` via the roofline model.
"""

from __future__ import annotations

import numpy as np

from repro.quant.activation import quantize_activation
from repro.quant.uniform import QuantizedWeight, quantize_weights

__all__ = ["DequantGEMM", "dequant_gemm", "dequant_gemv"]


class DequantGEMM:
    """Dequantization-based mpGEMM kernel bound to one quantized weight matrix.

    Parameters
    ----------
    qweight:
        The quantized weights (same object the T-MAC kernel consumes, so the
        two kernels can be compared on identical models).
    act_block_size:
        Activation quantization block size (llama.cpp's ``Q8_0`` uses 32).
    quantize_activations:
        When ``False``, activations are kept in floating point and only the
        weights are dequantized (the W*A16 fp path); when ``True`` (default)
        the int8 dot-product path is modeled.
    """

    def __init__(
        self,
        qweight: QuantizedWeight,
        act_block_size: int = 32,
        quantize_activations: bool = True,
    ):
        qweight.validate()
        if qweight.group_size % act_block_size != 0 and \
                act_block_size % qweight.group_size != 0:
            raise ValueError(
                "activation block size and weight group size must nest "
                f"(got {act_block_size} and {qweight.group_size})"
            )
        self.qweight = qweight
        self.act_block_size = act_block_size
        self.quantize_activations = quantize_activations

    @property
    def out_features(self) -> int:
        """M — output width."""
        return self.qweight.out_features

    @property
    def in_features(self) -> int:
        """K — reduction dimension."""
        return self.qweight.in_features

    def matmul(self, activation: np.ndarray) -> np.ndarray:
        """Compute ``activation @ dequantize(W)^T`` the llama.cpp way."""
        a = np.asarray(activation, dtype=np.float32)
        squeeze = a.ndim == 1
        if squeeze:
            a = a[None, :]
        if a.shape[1] != self.in_features:
            raise ValueError(
                f"activation K={a.shape[1]} does not match weight K="
                f"{self.in_features}"
            )

        qw = self.qweight
        m, k = qw.shape
        n = a.shape[0]
        num_groups = k // qw.group_size

        # Decode weights group-wise into centred integer codes.
        codes = qw.codes.reshape(m, num_groups, qw.group_size).astype(np.float64)
        centred = codes - qw.zeros[:, :, None].astype(np.float64)

        if self.quantize_activations:
            qa = quantize_activation(a, block_size=self.act_block_size)
            act_codes = qa.codes.reshape(n, k // self.act_block_size,
                                         self.act_block_size).astype(np.float64)
            act_scales = qa.scales.astype(np.float64)
            # Align activation blocks with weight groups (whichever nests).
            blocks_per_group = max(1, qw.group_size // self.act_block_size)
            out = np.zeros((n, m), dtype=np.float64)
            for g in range(num_groups):
                w_block = centred[:, g, :]  # [M, group]
                w_scale = qw.scales[:, g].astype(np.float64)  # [M]
                for b in range(blocks_per_group):
                    lo = b * self.act_block_size
                    hi = lo + self.act_block_size
                    a_block = act_codes[:, g * blocks_per_group + b, :]  # [N, bs]
                    a_scale = act_scales[:, g * blocks_per_group + b]  # [N]
                    dot = a_block @ w_block[:, lo:hi].T  # [N, M] integer dot
                    out += dot * a_scale[:, None] * w_scale[None, :]
        else:
            w_deq = (centred * qw.scales[:, :, None]).reshape(m, k)
            out = a.astype(np.float64) @ w_deq.T

        out = out.astype(np.float32)
        return out[0] if squeeze else out

    __call__ = matmul


def dequant_gemm(
    activation: np.ndarray,
    weights,
    bits: int = 4,
    group_size: int = 128,
    act_block_size: int = 32,
) -> np.ndarray:
    """One-shot dequantization-based mpGEMM.

    ``weights`` may be a :class:`QuantizedWeight` or a raw fp matrix (which
    is quantized first, like :func:`repro.core.gemm.tmac_gemm` does).
    """
    if not isinstance(weights, QuantizedWeight):
        weights = quantize_weights(np.asarray(weights), bits=bits,
                                   group_size=group_size)
    kernel = DequantGEMM(weights, act_block_size=act_block_size)
    return kernel.matmul(activation)


def dequant_gemv(
    activation: np.ndarray,
    weights,
    bits: int = 4,
    group_size: int = 128,
    act_block_size: int = 32,
) -> np.ndarray:
    """One-shot dequantization-based mpGEMV (single activation row)."""
    a = np.asarray(activation)
    if a.ndim not in (1, 2) or (a.ndim == 2 and a.shape[0] != 1):
        raise ValueError(
            f"dequant_gemv expects a [K] vector or [1, K] matrix, got {a.shape}"
        )
    return dequant_gemm(a, weights, bits=bits, group_size=group_size,
                        act_block_size=act_block_size)
