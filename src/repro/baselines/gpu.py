"""GPU baseline: llama.cpp's CUDA/OpenCL backend cost model.

Used for Figure 11 (kernel-level T-MAC CPU vs. llama.cpp GPU on Jetson AGX
Orin), Table 5 (end-to-end throughput/power/energy on Orin) and Table 7
(GPU columns).

Token-generation GEMV on an edge GPU is memory-bound like on the CPU — the
GPU shares the same unified DRAM — so the model is a roofline over the GPU's
*effective* bandwidth plus a fixed per-kernel launch overhead.  The launch
overhead is what makes small/low-bit kernels relatively inefficient on the
GPU and lets the T-MAC CPU kernels win at 1-2 bits (the crossover the paper
highlights); the backend ``efficiency`` factor captures how well llama.cpp's
CUDA (good) or OpenCL-on-Adreno (poor) kernels use the hardware.
"""

from __future__ import annotations

from repro.hardware.cost_model import KernelLatency
from repro.hardware.device import Device, GPUSpec

__all__ = [
    "gpu_gemv_latency",
    "gpu_gemm_latency",
    "gpu_token_latency",
    "GPU_LOW_BIT_EFFICIENCY",
]

#: Relative efficiency of llama.cpp's GPU dequantization kernels by weight
#: bit width.  The CUDA/OpenCL kernels are tuned for 4-bit blocks; the
#: K-quant style 2/3-bit and the 1-bit formats spend so much time decoding
#: that they do not convert their smaller footprint into speedup — the
#: paper's Table 5/7 and Figure 11 show the GPU getting *slower* below
#: 4 bits, which is exactly what these factors encode.
GPU_LOW_BIT_EFFICIENCY = {8: 1.0, 4: 1.0, 3: 0.65, 2: 0.45, 1: 0.40}


def _require_gpu(device: Device) -> GPUSpec:
    if device.gpu is None:
        raise ValueError(f"device {device.name} has no GPU spec")
    return device.gpu


def _bit_efficiency(bits: int) -> float:
    return GPU_LOW_BIT_EFFICIENCY.get(bits, 1.0)


def gpu_gemm_latency(
    device: Device,
    n: int,
    m: int,
    k: int,
    bits: int,
    group_size: int = 128,
) -> KernelLatency:
    """Latency of a llama.cpp GPU mpGEMM ``[N,K] x [M,K]^T``."""
    gpu = _require_gpu(device)
    weight_bytes = m * k * bits / 8 + 2 * m * (k / group_size)
    act_bytes = n * k * 2
    out_bytes = n * m * 2
    bandwidth = gpu.effective_bandwidth_gbs() * _bit_efficiency(bits) * 1e9
    memory_seconds = (weight_bytes + act_bytes + out_bytes) / bandwidth
    flops = 2.0 * n * m * k
    compute_seconds = flops / (gpu.effective_tflops() * 1e12)
    overhead = gpu.kernel_launch_overhead_us * 1e-6
    seconds = max(memory_seconds, compute_seconds) + overhead
    bound = "memory" if memory_seconds >= compute_seconds else "compute"
    return KernelLatency(
        seconds=seconds,
        compute_seconds=compute_seconds + overhead,
        memory_seconds=memory_seconds,
        threads=1,
        bound=bound,
        description=f"gpu[{gpu.backend}] {n}x{k}x{m} b={bits} on {device.name}",
    )


def gpu_gemv_latency(
    device: Device,
    m: int,
    k: int,
    bits: int,
    group_size: int = 128,
) -> KernelLatency:
    """Latency of a llama.cpp GPU mpGEMV (N=1)."""
    return gpu_gemm_latency(device, 1, m, k, bits, group_size)


def gpu_token_latency(
    device: Device,
    weight_bytes_total: float,
    num_kernels: int,
    flops_per_token: float,
    bits: int = 4,
) -> float:
    """Seconds per generated token for the GPU backend.

    ``weight_bytes_total`` is the packed model size streamed every token,
    ``num_kernels`` the number of kernel launches per token (matmuls plus
    attention/elementwise ops), ``flops_per_token`` the arithmetic work and
    ``bits`` the weight bit width (low-bit GPU kernels are derated per
    :data:`GPU_LOW_BIT_EFFICIENCY`).
    """
    gpu = _require_gpu(device)
    bandwidth = gpu.effective_bandwidth_gbs() * _bit_efficiency(bits) * 1e9
    memory_seconds = weight_bytes_total / bandwidth
    compute_seconds = flops_per_token / (gpu.effective_tflops() * 1e12)
    overhead = num_kernels * gpu.kernel_launch_overhead_us * 1e-6
    return max(memory_seconds, compute_seconds) + overhead
