"""llama.cpp (BLAS) baseline for prefill-style mpGEMM.

For large sequence lengths llama.cpp hands the matrix-matrix multiplication
to a BLAS library (Accelerate on Apple silicon — which uses the AMX
coprocessor — and OpenBLAS elsewhere).  The weights must first be
dequantized to floating point, which is modeled as streaming the packed
weights, writing the fp16 copy and reading it back; the GEMM itself runs at
the platform's sustained BLAS throughput.

The paper compares T-MAC against this path in Figure 7 (sequence length 256)
and notes that on M2-Ultra the AMX-backed BLAS remains faster than T-MAC
except at 1 bit, while on the weaker devices T-MAC wins by up to ~4-5x.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cost_model import KernelLatency
from repro.hardware.device import Device
from repro.hardware.memory import MemoryModel

__all__ = ["blas_gemm_latency"]


def blas_gemm_latency(
    device: Device,
    n: int,
    m: int,
    k: int,
    bits: int,
    threads: Optional[int] = None,
    group_size: int = 128,
) -> KernelLatency:
    """Latency of the dequantize-then-BLAS path for ``[N,K] x [M,K]^T``.

    The estimate is the sum of

    * dequantization traffic: read the packed ``bits``-bit weights and
      scales, write the fp16 copy, read it back for the GEMM, and
    * the GEMM compute time ``2*N*M*K`` FLOPs at the device's sustained
      BLAS throughput,

    with the dequantization conversion compute overlapped with its memory
    traffic (the paper's assumption about the dequantization-based
    approach).
    """
    threads = threads or device.default_threads
    memory = MemoryModel(device.cpu)

    packed_bytes = m * k * bits / 8 + 2 * m * (k / group_size)
    fp_copy_bytes = m * k * 2
    act_bytes = n * k * 2
    out_bytes = n * m * 4
    dequant_bytes = packed_bytes + 2 * fp_copy_bytes
    gemm_bytes = act_bytes + out_bytes

    memory_seconds = memory.dram_time_seconds(
        dequant_bytes + gemm_bytes, threads, sequential=True
    )

    flops = 2.0 * n * m * k
    compute_seconds = flops / (device.cpu.blas_gflops * 1e9)

    seconds = compute_seconds + memory_seconds
    bound = "compute" if compute_seconds >= memory_seconds else "memory"
    return KernelLatency(
        seconds=seconds,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        threads=threads,
        bound=bound,
        description=f"blas {n}x{k}x{m} b={bits} on {device.name}",
    )
