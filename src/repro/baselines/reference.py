"""Reference (unquantized and dequantization-based) GEMM implementations.

These are the numerical ground truths of the evaluation:

* :func:`reference_gemm` — full-precision ``A @ W^T`` (the "Un-quantized"
  row of Table 4 and the denominator of the NMSE analysis in Table 3).
* :func:`quantized_reference_gemm` — dequantize the low-bit weights and run
  the full-precision GEMM.  Any mpGEMM kernel that introduces no error
  beyond weight quantization (llama.cpp without activation quantization,
  T-MAC without table quantization) must match this bit-for-bit up to
  floating point accumulation order.
"""

from __future__ import annotations

import numpy as np

from repro.quant.uniform import QuantizedWeight, dequantize_weights

__all__ = ["reference_gemm", "reference_gemv", "quantized_reference_gemm"]


def reference_gemm(
    activation: np.ndarray, weights: np.ndarray, dtype=np.float32
) -> np.ndarray:
    """Full-precision GEMM ``activation [N, K] @ weights [M, K]^T``."""
    a = np.asarray(activation, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if a.ndim == 1:
        a = a[None, :]
    if a.shape[1] != w.shape[1]:
        raise ValueError(
            f"activation K={a.shape[1]} does not match weight K={w.shape[1]}"
        )
    return (a @ w.T).astype(dtype)


def reference_gemv(
    activation: np.ndarray, weights: np.ndarray, dtype=np.float32
) -> np.ndarray:
    """Full-precision GEMV for a single activation row."""
    out = reference_gemm(np.atleast_2d(activation), weights, dtype)
    return out[0] if np.asarray(activation).ndim == 1 else out


def quantized_reference_gemm(
    activation: np.ndarray, qweight: QuantizedWeight, dtype=np.float32
) -> np.ndarray:
    """Dequantize-then-multiply reference for a quantized weight matrix."""
    return reference_gemm(activation, dequantize_weights(qweight), dtype)
