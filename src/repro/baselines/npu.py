"""NPU baseline.

The paper does not run its own NPU kernels; Table 7's NPU column is sourced
from vendor-published numbers (Qualcomm AI Hub) for Llama-2-7B at 4 bits,
and the 2-bit entries are "deduced from 4-bit" (marked with ``*`` in the
paper) because the NPU's weight path does not accelerate sub-4-bit formats.
This module reproduces exactly that logic on top of the published values
stored in the device catalogue.
"""

from __future__ import annotations

from repro.hardware.device import Device

__all__ = ["npu_tokens_per_sec"]


def npu_tokens_per_sec(device: Device, model_name: str, bits: int = 4):
    """NPU token-generation throughput for a model on a device.

    Returns ``None`` when the device has no NPU or no published number.
    For bit widths below 4 the 4-bit figure is returned unchanged (the
    paper's "deduced from 4-bit" rule): the NPU dequantizes sub-4-bit
    weights to its native format, so lower bit widths bring no speedup.
    """
    if device.npu is None:
        return None
    base_name = model_name
    if bits < 4 and "2bit" in model_name:
        base_name = model_name.replace("2bit", "4bit")
    published = device.npu.tokens_per_sec(base_name)
    if published is None and bits < 4:
        published = device.npu.tokens_per_sec(
            model_name.replace(f"{bits}bit", "4bit")
        )
    return published
