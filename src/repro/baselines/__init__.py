"""Baseline kernels and execution-engine cost models.

Everything T-MAC is compared against in the paper lives here:

* :mod:`repro.baselines.reference` — unquantized fp GEMM/GEMV (the ground
  truth of the error analysis) and the dequantize-then-multiply reference.
* :mod:`repro.baselines.dequant_gemm` — a numerical llama.cpp-style kernel:
  block-quantize activations to int8, decode the low-bit weights per block,
  integer dot product, rescale.  Its *numerical* behaviour feeds Table 3/4;
  its *performance* comes from :func:`repro.simd.profile.profile_dequant_gemm`
  evaluated by the roofline cost model.
* :mod:`repro.baselines.blas_gemm` — the llama.cpp (BLAS) path used for
  prefill-style mpGEMM (Figure 7): dequantize the whole weight matrix, then
  run the platform BLAS.
* :mod:`repro.baselines.gpu` — llama.cpp's CUDA/OpenCL GPU backend cost
  model (Figure 11, Tables 5 and 7).
* :mod:`repro.baselines.npu` — NPU throughput from vendor-published numbers
  (Table 7).

These modules are the raw implementations; uniform access for model/serving
code goes through the backend registry (:mod:`repro.backends`), which wraps
them as the ``llama.cpp``, ``blas``, ``gpu`` and ``npu`` backends.
"""

from repro.baselines.blas_gemm import blas_gemm_latency
from repro.baselines.dequant_gemm import DequantGEMM, dequant_gemm, dequant_gemv
from repro.baselines.gpu import gpu_gemv_latency, gpu_token_latency
from repro.baselines.npu import npu_tokens_per_sec
from repro.baselines.reference import (
    quantized_reference_gemm,
    reference_gemm,
    reference_gemv,
)

__all__ = [
    "reference_gemm",
    "reference_gemv",
    "quantized_reference_gemm",
    "DequantGEMM",
    "dequant_gemm",
    "dequant_gemv",
    "blas_gemm_latency",
    "gpu_gemv_latency",
    "gpu_token_latency",
    "npu_tokens_per_sec",
]
