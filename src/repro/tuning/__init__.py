"""Tile-configuration tuning (the AutoTVM stand-in).

The paper generates its kernels through TVM and tunes tiling parameters per
device with AutoTVM.  Here the search runs over the analytic cost model:
:mod:`repro.tuning.search_space` enumerates candidate tile configurations
that fit the device's vector register file, and :mod:`repro.tuning.tuner`
evaluates them with the roofline model and returns the best.
"""

from repro.tuning.search_space import candidate_tile_configs
from repro.tuning.tuner import Tuner, TuningRecord, TuningResult

__all__ = [
    "candidate_tile_configs",
    "Tuner",
    "TuningRecord",
    "TuningResult",
]
