"""Tile-configuration search space.

Candidates are constrained the same way the paper's Section 4 describes the
hand analysis: the number of resident lookup tables is bounded by the vector
register file (tables plus indices plus accumulators must not spill), the
reduction tile is a multiple of the LUT group size, and the output tile is a
multiple of the SIMD lane count so lookups stay full-width.
"""

from __future__ import annotations

from typing import List

from repro.core.tiling import TileConfig, tmac_register_footprint
from repro.simd.isa import InstructionSet

__all__ = ["candidate_tile_configs"]


def candidate_tile_configs(
    isa: InstructionSet,
    bits: int,
    g: int = 4,
    n: int = 1,
    table_quantization: bool = True,
    mirror_consolidation: bool = True,
    max_candidates: int = 64,
) -> List[TileConfig]:
    """Enumerate tile configurations that fit the ISA's register file.

    Parameters
    ----------
    isa:
        Target instruction set (register count and lane width).
    bits / g:
        Kernel parameters (affect the footprint of a tile).
    n:
        Activation rows (1 for GEMV decode).
    table_quantization / mirror_consolidation:
        Table-storage options, which change how many tables fit on chip.
    max_candidates:
        Cap on the number of returned configurations.
    """
    lanes = isa.lanes_int8
    register_bytes = isa.num_registers * (isa.width_bits // 8)

    candidates: List[TileConfig] = []
    for num_luts in (1, 2, 4, 8, 16):
        k_tk = num_luts * g
        for m_tm in (lanes, 2 * lanes, 4 * lanes, 8 * lanes):
            footprint = tmac_register_footprint(
                m_tm=m_tm,
                k_tk=k_tk,
                g=g,
                table_quantization=table_quantization,
                mirror_consolidation=mirror_consolidation,
                lanes=lanes,
            )
            if footprint.total_bytes > register_bytes:
                continue
            for n_tn in {1, min(n, 8)}:
                candidates.append(TileConfig(
                    n_tn=n_tn, m_tm=m_tm, k_tk=k_tk, num_onchip_luts=num_luts
                ))
            if len(candidates) >= max_candidates:
                return candidates[:max_candidates]
    return candidates
