"""Tile-configuration tuner over the analytic cost model.

The paper uses AutoTVM to tune the generated kernels per device; its
Figure 10 shows tuning contributing a small improvement on M2-Ultra (whose
default configuration already matches the registers/caches well) and notes
that other devices benefit more.  This tuner reproduces that workflow: it
enumerates register-feasible tile configurations
(:func:`repro.tuning.search_space.candidate_tile_configs`) and ranks them by
roofline latency for a given problem shape, device and thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import TMACConfig
from repro.core.tiling import TileConfig
from repro.hardware.cost_model import CostModel
from repro.hardware.device import Device
from repro.tuning.search_space import candidate_tile_configs

__all__ = ["TuningRecord", "TuningResult", "Tuner"]


@dataclass(frozen=True)
class TuningRecord:
    """One evaluated candidate."""

    tile_config: TileConfig
    latency_seconds: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    best_config: TileConfig
    best_latency_seconds: float
    records: List[TuningRecord]
    default_latency_seconds: float

    @property
    def improvement(self) -> float:
        """Speedup of the best configuration over the un-tuned default."""
        if self.best_latency_seconds <= 0:
            return 1.0
        return self.default_latency_seconds / self.best_latency_seconds


class Tuner:
    """Exhaustive tuner for T-MAC tile configurations on one device."""

    def __init__(self, device: Device):
        self.device = device
        self.cost_model = CostModel(device)

    def tune(
        self,
        m: int,
        k: int,
        config: TMACConfig,
        n: int = 1,
        threads: Optional[int] = None,
        max_candidates: int = 64,
    ) -> TuningResult:
        """Search tile configurations for one matmul shape.

        Returns the best configuration, its estimated latency, the full
        evaluation history and the latency of the un-tuned default
        configuration (for the Figure 10 "+Tuning" comparison).
        """
        default_latency = self.cost_model.tmac_gemm_latency(
            n, m, k, config, threads=threads
        ).seconds

        candidates = candidate_tile_configs(
            self.device.isa,
            bits=config.bits,
            g=config.g,
            n=n,
            table_quantization=config.table_quantization,
            mirror_consolidation=config.mirror_consolidation,
            max_candidates=max_candidates,
        )
        if not candidates:
            raise RuntimeError(
                "no register-feasible tile configuration found; the search "
                "space constraints are inconsistent with the ISA"
            )

        records: List[TuningRecord] = []
        for candidate in candidates:
            latency = self.cost_model.tmac_gemm_latency(
                n, m, k, config, threads=threads, tile_config=candidate
            ).seconds
            records.append(TuningRecord(candidate, latency))

        best = min(records, key=lambda record: record.latency_seconds)
        return TuningResult(
            best_config=best.tile_config,
            best_latency_seconds=best.latency_seconds,
            records=records,
            default_latency_seconds=default_latency,
        )
