"""Tile-configuration tuner and the measurement-driven execution autotuner.

The paper uses AutoTVM to tune the generated kernels per device; its
Figure 10 shows tuning contributing a small improvement on M2-Ultra (whose
default configuration already matches the registers/caches well) and notes
that other devices benefit more.  :class:`Tuner` reproduces that workflow:
it enumerates register-feasible tile configurations
(:func:`repro.tuning.search_space.candidate_tile_configs`) and ranks them by
roofline latency for a given problem shape, device and thread count.

:class:`ShapeTuner` is the runtime counterpart, driven by *measurements*
instead of the analytic model: given a host calibration profile
(:mod:`repro.hardware.calibrate`), it picks the executor, worker count,
chunk budget and gather driver for each mpGEMM shape, memoized per shape.
``REPRO_AUTOTUNE=1`` makes :class:`~repro.core.kernel.TMACKernel` consult
it transparently on every matmul (:func:`resolve_autotuned`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import TMACConfig
from repro.core.tiling import TileConfig
from repro.hardware.cost_model import (
    THREAD_POOL_GIL_FRACTION,
    CostModel,
    process_ipc_overhead_seconds,
)
from repro.hardware.device import Device
from repro.tuning.search_space import candidate_tile_configs

__all__ = [
    "TuningRecord",
    "TuningResult",
    "Tuner",
    "ExecutionChoice",
    "ShapeTuner",
    "autotune_enabled",
    "resolve_autotuned",
    "reset_autotuner",
]


@dataclass(frozen=True)
class TuningRecord:
    """One evaluated candidate."""

    tile_config: TileConfig
    latency_seconds: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    best_config: TileConfig
    best_latency_seconds: float
    records: List[TuningRecord]
    default_latency_seconds: float

    @property
    def improvement(self) -> float:
        """Speedup of the best configuration over the un-tuned default."""
        if self.best_latency_seconds <= 0:
            return 1.0
        return self.default_latency_seconds / self.best_latency_seconds


class Tuner:
    """Exhaustive tuner for T-MAC tile configurations on one device.

    ``calibration`` optionally anchors the cost model to a measured host
    profile (see :class:`~repro.hardware.cost_model.CostModel`).
    """

    def __init__(self, device: Device, calibration=None):
        self.device = device
        self.cost_model = CostModel(device, calibration=calibration)

    def tune(
        self,
        m: int,
        k: int,
        config: TMACConfig,
        n: int = 1,
        threads: Optional[int] = None,
        max_candidates: int = 64,
    ) -> TuningResult:
        """Search tile configurations for one matmul shape.

        Returns the best configuration, its estimated latency, the full
        evaluation history and the latency of the un-tuned default
        configuration (for the Figure 10 "+Tuning" comparison).
        """
        default_latency = self.cost_model.tmac_gemm_latency(
            n, m, k, config, threads=threads
        ).seconds

        candidates = candidate_tile_configs(
            self.device.isa,
            bits=config.bits,
            g=config.g,
            n=n,
            table_quantization=config.table_quantization,
            mirror_consolidation=config.mirror_consolidation,
            max_candidates=max_candidates,
        )
        if not candidates:
            raise RuntimeError(
                "no register-feasible tile configuration found; the search "
                "space constraints are inconsistent with the ISA"
            )

        records: List[TuningRecord] = []
        for candidate in candidates:
            latency = self.cost_model.tmac_gemm_latency(
                n, m, k, config, threads=threads, tile_config=candidate
            ).seconds
            records.append(TuningRecord(candidate, latency))

        best = min(records, key=lambda record: record.latency_seconds)
        return TuningResult(
            best_config=best.tile_config,
            best_latency_seconds=best.latency_seconds,
            records=records,
            default_latency_seconds=default_latency,
        )


# --------------------------------------------------------------------- #
# Measurement-driven execution autotuning (REPRO_AUTOTUNE=1)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ExecutionChoice:
    """The execution strategy picked for one mpGEMM shape.

    ``workers`` is the pool width for the ``"parallel"`` (threads) or
    ``"process"`` executor and 1 for ``"vectorized"``.
    """

    executor: str
    workers: int
    chunk_elements: Optional[int]
    gather_variant: str
    predicted_seconds: float


def autotune_enabled() -> bool:
    """Whether ``REPRO_AUTOTUNE`` opts matmuls into the shape autotuner."""
    return os.environ.get("REPRO_AUTOTUNE", "") not in ("", "0", "false", "no")


class ShapeTuner:
    """Per-shape execution tuning over a measured calibration profile.

    For each ``(n, m, k, group_size, config)`` shape the tuner predicts
    the serial latency from the calibrated per-term fit, then compares

    * the serial vectorized executor,
    * the thread pool at 2..cores workers, degraded by the measured GIL
      fraction (:data:`~repro.hardware.cost_model.THREAD_POOL_GIL_FRACTION`),
    * the process pool at the same widths, paying the per-call IPC term
      (:func:`~repro.hardware.cost_model.process_ipc_overhead_seconds`),

    and returns the cheapest as an :class:`ExecutionChoice` — together
    with the profile's measured chunk-budget and gather-driver
    preferences.  Choices are memoized; the per-call cost after the first
    resolution of a shape is one dict lookup.
    """

    def __init__(self, profile):
        self.profile = profile
        self._lock = threading.Lock()
        self._choices: Dict[Tuple, ExecutionChoice] = {}

    def choose(self, n: int, m: int, k: int, config: TMACConfig,
               group_size: int = 128) -> ExecutionChoice:
        """The best execution strategy for one shape (memoized)."""
        key = (n, m, k, group_size, config.bits, config.g,
               config.mirror_consolidation, config.table_quantization,
               config.lut_scale_granularity, config.fast_aggregation,
               config.act_dtype, config.parallel_threshold)
        with self._lock:
            cached = self._choices.get(key)
            if cached is not None:
                return cached
            choice = self._choose(n, m, k, config, group_size)
            self._choices[key] = choice
            return choice

    def _choose(self, n: int, m: int, k: int, config: TMACConfig,
                group_size: int) -> ExecutionChoice:
        profile = self.profile
        serial_s = profile.predict_gemm_seconds(n, m, k, config, group_size)
        best = ("vectorized", 1, serial_s)
        gather_work = n * m * (k // config.g)
        if profile.cores > 1 and gather_work >= config.parallel_threshold:
            for workers in range(2, profile.cores + 1):
                # Same pool economics as CostModel.pool_dispatch_choice,
                # anchored to the measured serial fit: threads overlap
                # only numpy's nogil interior; processes shard ideally
                # but pay the per-call arena traffic.
                gil_speedup = 1.0 + (workers - 1) * THREAD_POOL_GIL_FRACTION
                thread_s = serial_s / gil_speedup
                process_s = serial_s / workers + process_ipc_overhead_seconds(
                    n, m, k, config, workers, group_size)
                if thread_s < best[2]:
                    best = ("parallel", workers, thread_s)
                if process_s < best[2]:
                    best = ("process", workers, process_s)
        return ExecutionChoice(
            executor=best[0],
            workers=best[1],
            chunk_elements=profile.chunk_elements,
            gather_variant=profile.gather_variant,
            predicted_seconds=best[2],
        )

    def apply(self, config: TMACConfig, choice: ExecutionChoice) -> TMACConfig:
        """Rewrite ``config`` to execute with ``choice``.

        Explicit user settings win: an already-pinned ``chunk_elements``
        or a non-``"auto"`` ``gather_variant`` is left alone — the tuner
        only fills in what the caller delegated.
        """
        updates: dict = {}
        if config.executor != choice.executor:
            updates["executor"] = choice.executor
        if choice.executor == "parallel" and config.num_threads != choice.workers:
            updates["num_threads"] = choice.workers
        if choice.executor == "process" and config.num_workers != choice.workers:
            updates["num_workers"] = choice.workers
        if (choice.chunk_elements is not None
                and config.chunk_elements is None):
            updates["chunk_elements"] = choice.chunk_elements
        if not updates:
            return config
        return config.with_options(**updates)


_AUTOTUNER: Optional[ShapeTuner] = None
_AUTOTUNER_LOCK = threading.Lock()


def _default_tuner() -> ShapeTuner:
    """The process-wide tuner, created on first use.

    The profile comes from ``REPRO_CALIBRATION`` when it names a saved
    file; otherwise a quick in-process calibration runs once (a second or
    two of probes) and serves every subsequent shape.
    """
    global _AUTOTUNER
    with _AUTOTUNER_LOCK:
        if _AUTOTUNER is None:
            from repro.hardware.calibrate import calibrate, load_profile

            profile = load_profile()
            if profile is None:
                profile = calibrate(quick=True)
            _AUTOTUNER = ShapeTuner(profile)
        return _AUTOTUNER


def reset_autotuner() -> None:
    """Drop the process-wide tuner (tests swap profiles this way)."""
    global _AUTOTUNER
    with _AUTOTUNER_LOCK:
        _AUTOTUNER = None


def resolve_autotuned(plan, config: TMACConfig, n: int) -> TMACConfig:
    """The autotuned execution config for one dispatch against ``plan``.

    Called by :class:`~repro.core.kernel.TMACKernel` under
    ``REPRO_AUTOTUNE=1``.  Returns ``config`` itself (no re-dispatch)
    when the tuned choice matches what the config already says.
    """
    group_size = plan.in_features // max(1, plan.num_qgroups)
    tuner = _default_tuner()
    choice = tuner.choose(n, plan.out_features, plan.in_features, config,
                          group_size)
    return tuner.apply(config, choice)
