"""Transformer layers (numpy) with pluggable mpGEMM engines.

The layer zoo matches the Llama architecture the paper deploys: RMSNorm,
rotary position embeddings, multi-head (or grouped-query) attention with a
KV cache, and a SwiGLU MLP.  Every weight-bearing projection goes through a
:class:`~repro.llm.engine.LinearOperator` created by the active engine, so
the same model can run un-quantized, through the dequantization baseline, or
through T-MAC — which is how the model-quality comparison of Table 4 is
produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.llm.architecture import TransformerArch
from repro.llm.engine import LinearOperator, MatmulEngine

__all__ = [
    "rms_norm",
    "softmax",
    "silu",
    "build_rope_cache",
    "apply_rope",
    "KVCache",
    "attend",
    "Attention",
    "MLP",
    "TransformerBlock",
]


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalization (no mean subtraction)."""
    x = np.asarray(x, dtype=np.float32)
    variance = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation used by the SwiGLU MLP."""
    x = np.asarray(x, dtype=np.float32)
    return x / (1.0 + np.exp(-x))


def build_rope_cache(max_seq_len: int, head_dim: int, base: float = 10000.0):
    """Precompute rotary-embedding cos/sin tables of shape [seq, head_dim/2]."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    positions = np.arange(max_seq_len, dtype=np.float32)
    freqs = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float32) / head_dim))
    angles = np.outer(positions, freqs)
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray,
               positions: np.ndarray) -> np.ndarray:
    """Apply rotary position embeddings.

    ``x`` has shape ``[seq, heads, head_dim]``; ``positions`` gives the
    absolute position of each sequence element.
    """
    seq, heads, head_dim = x.shape
    half = head_dim // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    c = cos[positions][:, None, :]
    s = sin[positions][:, None, :]
    rotated_first = x1 * c - x2 * s
    rotated_second = x2 * c + x1 * s
    return np.concatenate([rotated_first, rotated_second], axis=-1)


@dataclass
class KVCache:
    """Per-layer key/value cache for incremental decoding.

    The cache contract consumed by :meth:`Attention.forward` and the
    batched serving path is duck-typed: ``append(k, v)`` stores new
    ``[seq, kv_heads, head_dim]`` rows, ``stacked()`` returns the full
    history as two contiguous ``[total, kv_heads, head_dim]`` arrays, and
    ``length`` / ``memory_bytes()`` report fill state.  This class is the
    simple append-only implementation;
    :class:`repro.kvcache.paged.PagedKVCache` implements the same contract
    over a shared, byte-budgeted page pool with prefix sharing.
    """

    keys: List[np.ndarray] = field(default_factory=list)
    values: List[np.ndarray] = field(default_factory=list)

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values of shape ``[seq, kv_heads, head_dim]``."""
        self.keys.append(np.asarray(k, dtype=np.float32))
        self.values.append(np.asarray(v, dtype=np.float32))

    def stacked(self):
        """All cached keys and values as two arrays ``[total_seq, heads, dim]``."""
        if not self.keys:
            raise ValueError("KV cache is empty")
        return np.concatenate(self.keys, axis=0), np.concatenate(self.values, axis=0)

    @property
    def length(self) -> int:
        """Number of cached positions."""
        return int(sum(k.shape[0] for k in self.keys))

    def memory_bytes(self) -> int:
        """fp32 bytes currently held by the cache."""
        return int(sum(k.nbytes + v.nbytes
                       for k, v in zip(self.keys, self.values)))


def attend(q: np.ndarray, k_all: np.ndarray, v_all: np.ndarray,
           positions: np.ndarray, arch: TransformerArch) -> np.ndarray:
    """Causal attention of queries over a cached key/value window.

    ``q`` is ``[seq, heads, head_dim]``; ``k_all``/``v_all`` are the full
    ``[total, kv_heads, head_dim]`` history the queries may attend to;
    ``positions`` gives each query's absolute position (cached positions
    ``0..p`` are visible to a query at position ``p``).  Returns the
    context as ``[seq, heads * head_dim]``.

    This is the single float-op sequence shared by the sequential path
    (:meth:`Attention.forward`) and the serving engine's batched decode
    (:mod:`repro.serving.batch`), so the two can never drift apart
    numerically.
    """
    group = arch.num_heads // arch.num_kv_heads
    if group > 1:
        k_all = np.repeat(k_all, group, axis=1)
        v_all = np.repeat(v_all, group, axis=1)

    total = k_all.shape[0]
    scale = 1.0 / np.sqrt(arch.head_dim)
    # scores[h, i, j] = q[i, h, :] . k[j, h, :]
    scores = np.einsum("ihd,jhd->hij", q, k_all, optimize=True) * scale

    # Causal mask: query at absolute position p attends to cached
    # positions 0..p.
    key_positions = np.arange(total)
    mask = key_positions[None, :] > positions[:, None]
    scores = np.where(mask[None, :, :], -1e30, scores)

    probs = softmax(scores, axis=-1)
    context = np.einsum("hij,jhd->ihd", probs, v_all, optimize=True)
    return context.reshape(q.shape[0], arch.num_heads * arch.head_dim)


class Attention:
    """Multi-head / grouped-query attention with RoPE and a KV cache."""

    def __init__(self, arch: TransformerArch, engine: MatmulEngine,
                 weights: dict, layer_index: int = 0):
        self.arch = arch
        self.layer_index = layer_index
        prefix = f"layers.{layer_index}.attn"
        self.q_proj: LinearOperator = engine.make_linear(
            weights["q_proj"], f"{prefix}.q_proj")
        self.k_proj: LinearOperator = engine.make_linear(
            weights["k_proj"], f"{prefix}.k_proj")
        self.v_proj: LinearOperator = engine.make_linear(
            weights["v_proj"], f"{prefix}.v_proj")
        self.o_proj: LinearOperator = engine.make_linear(
            weights["o_proj"], f"{prefix}.o_proj")
        self._cos, self._sin = build_rope_cache(arch.max_seq_len, arch.head_dim)

    def forward(self, x: np.ndarray, positions: np.ndarray,
                cache: Optional[KVCache] = None) -> np.ndarray:
        """Attention over ``x`` of shape ``[seq, hidden]``.

        When ``cache`` is provided, the new keys/values are appended and
        attention spans the whole cached history (incremental decoding).
        """
        arch = self.arch
        seq = x.shape[0]

        q = self.q_proj(x).reshape(seq, arch.num_heads, arch.head_dim)
        k = self.k_proj(x).reshape(seq, arch.num_kv_heads, arch.head_dim)
        v = self.v_proj(x).reshape(seq, arch.num_kv_heads, arch.head_dim)

        q = apply_rope(q, self._cos, self._sin, positions)
        k = apply_rope(k, self._cos, self._sin, positions)

        if cache is not None:
            cache.append(k, v)
            k_all, v_all = cache.stacked()
        else:
            k_all, v_all = k, v

        context = attend(q, k_all, v_all, positions, arch)
        return self.o_proj(context)


class MLP:
    """SwiGLU feed-forward block: ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, arch: TransformerArch, engine: MatmulEngine,
                 weights: dict, layer_index: int = 0):
        prefix = f"layers.{layer_index}.mlp"
        self.gate_proj = engine.make_linear(weights["gate_proj"],
                                            f"{prefix}.gate_proj")
        self.up_proj = engine.make_linear(weights["up_proj"],
                                          f"{prefix}.up_proj")
        self.down_proj = engine.make_linear(weights["down_proj"],
                                            f"{prefix}.down_proj")

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the SwiGLU MLP to ``[seq, hidden]`` activations."""
        return self.down_proj(silu(self.gate_proj(x)) * self.up_proj(x))


class TransformerBlock:
    """One decoder block: RMSNorm -> attention -> RMSNorm -> MLP, residual."""

    def __init__(self, arch: TransformerArch, engine: MatmulEngine,
                 weights: dict, layer_index: int = 0):
        self.arch = arch
        self.layer_index = layer_index
        self.input_norm_weight = np.asarray(weights["input_norm"],
                                            dtype=np.float32)
        self.post_attn_norm_weight = np.asarray(weights["post_attn_norm"],
                                                dtype=np.float32)
        self.attention = Attention(arch, engine, weights["attention"],
                                   layer_index)
        self.mlp = MLP(arch, engine, weights["mlp"], layer_index)

    def forward(self, x: np.ndarray, positions: np.ndarray,
                cache: Optional[KVCache] = None) -> np.ndarray:
        """Run the block over ``[seq, hidden]`` activations."""
        attn_out = self.attention.forward(
            rms_norm(x, self.input_norm_weight), positions, cache
        )
        x = x + attn_out
        mlp_out = self.mlp.forward(rms_norm(x, self.post_attn_norm_weight))
        return x + mlp_out

    def linears(self) -> List[LinearOperator]:
        """All linear operators in this block (for stats/inspection)."""
        return [
            self.attention.q_proj,
            self.attention.k_proj,
            self.attention.v_proj,
            self.attention.o_proj,
            self.mlp.gate_proj,
            self.mlp.up_proj,
            self.mlp.down_proj,
        ]
