"""Transformer architecture descriptions.

The throughput model only needs the *shapes* of the weight matrices touched
when generating one token (the decode phase is a sequence of GEMVs over
every linear layer plus the LM head), so an architecture is a small
dataclass of dimensions plus helpers that enumerate those shapes.

The three model families of the paper's end-to-end evaluation are included:
Llama-2-7B (M1 in Figure 8), Llama-2-7B at 2 bits shares the same shapes,
Llama-2-13B (kernel shapes S3-S5 of Figure 6), and BitNet-b1.58-3B (M3).
``tiny_arch`` provides a laptop-runnable configuration with the same
structure for the numerical experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "TransformerArch",
    "LLAMA_2_7B",
    "LLAMA_2_13B",
    "BITNET_3B",
    "tiny_arch",
]


@dataclass(frozen=True)
class TransformerArch:
    """Dimensions of a decoder-only transformer.

    Attributes
    ----------
    name:
        Human-readable model name.
    hidden_size:
        Model (embedding) dimension.
    intermediate_size:
        MLP expansion dimension (SwiGLU uses gate/up of this size).
    num_layers:
        Number of transformer blocks.
    num_heads / num_kv_heads:
        Attention heads and key/value heads (equal for multi-head
        attention; smaller ``num_kv_heads`` models grouped-query attention).
    vocab_size:
        Vocabulary size (the LM head is ``vocab_size x hidden_size``).
    max_seq_len:
        Maximum context length assumed by the KV-cache sizing.
    """

    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int
    max_seq_len: int = 4096

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} must be divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"num_heads {self.num_heads} must be divisible by "
                f"num_kv_heads {self.num_kv_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total key/value projection width."""
        return self.head_dim * self.num_kv_heads

    # ------------------------------------------------------------------ #
    # Shape enumeration
    # ------------------------------------------------------------------ #

    def layer_linear_shapes(self) -> List[Tuple[str, int, int]]:
        """Per-layer linear layers as ``(name, out_features M, in_features K)``."""
        h = self.hidden_size
        inter = self.intermediate_size
        return [
            ("attn.q_proj", h, h),
            ("attn.k_proj", self.kv_dim, h),
            ("attn.v_proj", self.kv_dim, h),
            ("attn.o_proj", h, h),
            ("mlp.gate_proj", inter, h),
            ("mlp.up_proj", inter, h),
            ("mlp.down_proj", h, inter),
        ]

    def decode_matmul_shapes(self, include_lm_head: bool = True):
        """All (name, M, K) GEMV shapes touched when generating one token.

        Layer shapes are repeated ``num_layers`` times; the LM head is
        appended once.  These are the shapes the analytic throughput model
        feeds to the kernel cost model.
        """
        shapes = []
        for layer in range(self.num_layers):
            for name, m, k in self.layer_linear_shapes():
                shapes.append((f"layers.{layer}.{name}", m, k))
        if include_lm_head:
            shapes.append(("lm_head", self.vocab_size, self.hidden_size))
        return shapes

    def num_parameters(self) -> int:
        """Total parameter count (linear layers + embeddings + LM head)."""
        linear = sum(m * k for _, m, k in self.layer_linear_shapes())
        linear *= self.num_layers
        embeddings = self.vocab_size * self.hidden_size
        lm_head = self.vocab_size * self.hidden_size
        norms = (2 * self.num_layers + 1) * self.hidden_size
        return linear + embeddings + lm_head + norms

    def weight_bytes(self, bits: int, group_size: int = 128,
                     quantize_lm_head: bool = True) -> int:
        """Packed model size in bytes at ``bits``-bit weight quantization.

        Linear-layer (and optionally LM-head) weights are packed at ``bits``
        bits plus fp16 scales per group; embeddings and norms stay fp16.
        """
        linear = sum(m * k for _, m, k in self.layer_linear_shapes())
        linear *= self.num_layers
        lm_head = self.vocab_size * self.hidden_size
        quantized = linear + (lm_head if quantize_lm_head else 0)
        packed = quantized * bits // 8 + (quantized // group_size) * 2
        fp16 = self.vocab_size * self.hidden_size * 2
        if not quantize_lm_head:
            fp16 += lm_head * 2
        fp16 += (2 * self.num_layers + 1) * self.hidden_size * 2
        return packed + fp16

    def flops_per_token(self) -> float:
        """Arithmetic work (FLOPs) of one decode step, matmuls only."""
        linear = sum(m * k for _, m, k in self.layer_linear_shapes())
        linear *= self.num_layers
        linear += self.vocab_size * self.hidden_size
        return 2.0 * linear

    def kv_cache_bytes_per_token(self) -> int:
        """fp16 bytes appended to the KV cache for each generated token."""
        return 2 * self.num_layers * 2 * self.kv_dim


LLAMA_2_7B = TransformerArch(
    name="Llama-2-7B",
    hidden_size=4096,
    intermediate_size=11008,
    num_layers=32,
    num_heads=32,
    num_kv_heads=32,
    vocab_size=32000,
    max_seq_len=4096,
)

LLAMA_2_13B = TransformerArch(
    name="Llama-2-13B",
    hidden_size=5120,
    intermediate_size=13824,
    num_layers=40,
    num_heads=40,
    num_kv_heads=40,
    vocab_size=32000,
    max_seq_len=4096,
)

BITNET_3B = TransformerArch(
    name="BitNet-b1.58-3B",
    hidden_size=3200,
    intermediate_size=8640,
    num_layers=26,
    num_heads=32,
    num_kv_heads=32,
    vocab_size=32000,
    max_seq_len=2048,
)


def tiny_arch(
    hidden_size: int = 64,
    intermediate_size: int = 128,
    num_layers: int = 2,
    num_heads: int = 4,
    num_kv_heads: int = 4,
    vocab_size: int = 199,
    max_seq_len: int = 128,
) -> TransformerArch:
    """A laptop-runnable architecture with the same structure as Llama.

    Used by the numerical quality experiments and the unit tests: big enough
    to exercise grouped quantization and the mpGEMM engines, small enough to
    run a full generation loop in milliseconds.
    """
    return TransformerArch(
        name=f"tiny-llama-{hidden_size}h{num_layers}l",
        hidden_size=hidden_size,
        intermediate_size=intermediate_size,
        num_layers=num_layers,
        num_heads=num_heads,
        num_kv_heads=num_kv_heads,
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
    )
