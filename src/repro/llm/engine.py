"""Matmul engines: pluggable mpGEMM backends for the numpy transformer.

A :class:`MatmulEngine` turns a full-precision weight matrix into a callable
linear operator.  Three engines are provided, matching the frameworks the
paper compares:

* :class:`ReferenceEngine` — keep the weights in floating point
  ("Un-quantized" in Table 4).
* :class:`DequantEngine` — quantize the weights and execute with the
  llama.cpp-style dequantization kernel.
* :class:`TMACEngine` — quantize the weights and execute with the T-MAC
  LUT kernel (optionally with fast aggregation, the "+FA" rows).

All three consume identical :class:`~repro.quant.uniform.QuantizedWeight`
objects (except the reference), so quality differences between engines are
attributable purely to the kernels — exactly the controlled comparison the
paper's error analysis performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.baselines.dequant_gemm import DequantGEMM
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import quantize_weights

__all__ = [
    "LinearOperator",
    "MatmulEngine",
    "ReferenceEngine",
    "DequantEngine",
    "TMACEngine",
    "create_engine",
    "pick_group_size",
]


def pick_group_size(in_features: int, requested: int, minimum: int = 4) -> int:
    """Largest group size <= ``requested`` that divides ``in_features``.

    Small test models have reduction dimensions that the default 128-wide
    quantization group does not divide; shrinking the group (by halving)
    keeps the per-group quantization semantics intact.
    """
    if in_features < minimum:
        raise ValueError(
            f"in_features={in_features} is smaller than the minimum group "
            f"size {minimum}"
        )
    group = min(requested, in_features)
    while group > minimum and in_features % group != 0:
        group //= 2
    if in_features % group != 0:
        raise ValueError(
            f"cannot find a group size <= {requested} dividing K={in_features}"
        )
    return max(group, minimum)


@dataclass
class LinearOperator:
    """A bound linear layer: ``y = forward(x)`` with bookkeeping for stats."""

    name: str
    out_features: int
    in_features: int
    forward: Callable[[np.ndarray], np.ndarray]
    engine_name: str
    weight_bytes: int

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class MatmulEngine:
    """Base class for mpGEMM engines.

    Subclasses implement :meth:`make_linear`, turning an fp weight matrix
    ``[M, K]`` into a :class:`LinearOperator`.
    """

    name = "base"

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        """Bind a weight matrix to this engine."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceEngine(MatmulEngine):
    """Full-precision engine: no quantization, plain fp32 matmul."""

    name = "reference"

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)

        def forward(x: np.ndarray) -> np.ndarray:
            return np.asarray(x, dtype=np.float32) @ w.T

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=w.size * 2,
        )


class DequantEngine(MatmulEngine):
    """llama.cpp-style engine: quantize weights, dequantization-based kernel."""

    name = "llama.cpp"

    def __init__(self, bits: int = 4, group_size: int = 128,
                 act_block_size: int = 32, bitnet: bool = False):
        self.bits = bits
        self.group_size = group_size
        self.act_block_size = act_block_size
        self.bitnet = bitnet

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)
        group = pick_group_size(w.shape[1], self.group_size)
        if self.bitnet:
            qw = quantize_bitnet(w, group_size=group)
        else:
            qw = quantize_weights(w, bits=self.bits, group_size=group)
        act_block = min(self.act_block_size, group)
        kernel = DequantGEMM(qw, act_block_size=act_block)

        def forward(x: np.ndarray) -> np.ndarray:
            return kernel.matmul(x)

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=qw.memory_bytes(),
        )


class TMACEngine(MatmulEngine):
    """T-MAC engine: quantize weights, LUT-based kernel."""

    name = "T-MAC"

    def __init__(self, bits: int = 4, group_size: int = 128,
                 config: Optional[TMACConfig] = None, bitnet: bool = False):
        self.bits = bits
        self.group_size = group_size
        self.config = config
        self.bitnet = bitnet
        if config is not None and config.fast_aggregation:
            self.name = "T-MAC (+FA)"

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)
        group = pick_group_size(w.shape[1], self.group_size)
        if self.bitnet:
            qw = quantize_bitnet(w, group_size=group)
        else:
            qw = quantize_weights(w, bits=self.bits, group_size=group)
        config = self.config or TMACConfig(bits=qw.bits)
        if config.bits != qw.bits:
            config = config.with_options(bits=qw.bits)
        kernel = TMACKernel(qw, config)

        def forward(x: np.ndarray) -> np.ndarray:
            return kernel.matmul(x)

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=qw.memory_bytes(),
        )


def create_engine(
    kind: str,
    bits: int = 4,
    group_size: int = 128,
    fast_aggregation: bool = False,
    bitnet: bool = False,
) -> MatmulEngine:
    """Factory for the three engines by name.

    ``kind`` is one of ``"reference"``, ``"dequant"`` (aliases
    ``"llama.cpp"``, ``"llamacpp"``) or ``"tmac"`` (alias ``"t-mac"``).
    """
    key = kind.lower()
    if key in ("reference", "fp", "unquantized"):
        return ReferenceEngine()
    if key in ("dequant", "llama.cpp", "llamacpp"):
        return DequantEngine(bits=bits, group_size=group_size, bitnet=bitnet)
    if key in ("tmac", "t-mac"):
        config = TMACConfig(bits=bits, fast_aggregation=fast_aggregation)
        return TMACEngine(bits=bits, group_size=group_size, config=config,
                          bitnet=bitnet)
    raise ValueError(f"unknown engine kind {kind!r}")
