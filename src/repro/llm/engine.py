"""Compatibility shim: matmul engines now live in :mod:`repro.backends`.

Historically this module defined the ``MatmulEngine`` class hierarchy
(reference / dequantization / T-MAC) used by the numpy transformer.  The
implementations moved to the :mod:`repro.backends` package, where they are
exposed through a uniform registry (``register_backend`` / ``get_backend``)
alongside the BLAS/GPU/NPU cost-model backends.  This module re-exports the
numeric backends under their historical names so existing imports keep
working:

* ``MatmulEngine`` is :class:`repro.backends.Backend`,
* ``ReferenceEngine`` is :class:`repro.backends.ReferenceBackend`,
* ``DequantEngine`` is :class:`repro.backends.DequantBackend`,
* ``TMACEngine`` is :class:`repro.backends.TMACBackend`,
* :func:`create_engine` resolves through the registry.

New code should import from :mod:`repro.backends` directly.
"""

from __future__ import annotations

from repro.backends import (
    Backend,
    DequantBackend,
    LinearOperator,
    ReferenceBackend,
    TMACBackend,
    get_backend,
    pick_group_size,
)

__all__ = [
    "LinearOperator",
    "MatmulEngine",
    "ReferenceEngine",
    "DequantEngine",
    "TMACEngine",
    "create_engine",
    "pick_group_size",
]

# Historical names, kept for backward compatibility.
MatmulEngine = Backend
ReferenceEngine = ReferenceBackend
DequantEngine = DequantBackend
TMACEngine = TMACBackend


def create_engine(
    kind: str,
    bits: int = 4,
    group_size: int = 128,
    fast_aggregation: bool = False,
    bitnet: bool = False,
) -> Backend:
    """Resolve an engine by name through the backend registry.

    ``kind`` accepts the historical spellings (``"reference"``,
    ``"dequant"`` / ``"llama.cpp"`` / ``"llamacpp"``, ``"tmac"`` /
    ``"t-mac"``) plus any other registered backend name.  Unknown names
    raise ``ValueError`` (:class:`repro.backends.UnknownBackendError`).
    """
    return get_backend(
        kind,
        bits=bits,
        group_size=group_size,
        fast_aggregation=fast_aggregation,
        bitnet=bitnet,
    )
