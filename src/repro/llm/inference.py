"""Token generation loop: prefill + incremental decode with a KV cache.

This mirrors the structure of the llama.cpp main loop the paper integrates
T-MAC into: a compute-bound prefill over the prompt (mpGEMM) followed by a
memory-bound decode phase that generates tokens one at a time (mpGEMV).
The :class:`Generator` also records how many of each matmul shape were
executed, which the tests use to cross-check the analytic throughput model's
shape enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.llm.layers import softmax
from repro.llm.model import TransformerModel

__all__ = ["GenerationResult", "Generator", "StreamAssembler", "sample_token"]


def sample_token(logits: np.ndarray, temperature: float,
                 rng: np.random.Generator, top_k: int = 0) -> int:
    """Draw one token from a logits row (greedy at temperature 0).

    ``top_k > 0`` restricts temperature sampling to the ``top_k``
    highest-logit tokens (ties at the cut-off all stay in, so the
    selection is deterministic for a given logits row); ``top_k == 0``
    disables truncation.  Shared by the sequential :class:`Generator` and
    the serving engine's :class:`repro.serving.session.InferenceSession`,
    whose batched-equals-sequential guarantee depends on both paths
    sampling identically.
    """
    if top_k < 0:
        raise ValueError(
            f"top_k must be >= 0 (0 disables truncation), got {top_k}"
        )
    if temperature <= 0.0:
        return int(np.argmax(logits))
    logits = np.asarray(logits)
    if top_k and top_k < logits.shape[-1]:
        threshold = np.partition(logits, -top_k)[-top_k]
        logits = np.where(logits >= threshold, logits, -np.inf)
    probs = softmax(logits / temperature)
    return int(rng.choice(len(probs), p=probs))


@dataclass
class GenerationResult:
    """Outcome of one generation call."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    logits_history: List[np.ndarray] = field(default_factory=list)
    prefill_length: int = 0
    decode_steps: int = 0
    #: Why generation stopped (``"stop"`` / ``"length"`` / ``"context"`` /
    #: ``"capacity"``); ``""`` for paths that do not record one.
    finish_reason: str = ""

    @property
    def tokens(self) -> List[int]:
        """Prompt + generated tokens."""
        return list(self.prompt_tokens) + list(self.generated_tokens)


class StreamAssembler:
    """Re-assemble a per-token stream into a :class:`GenerationResult`.

    The serving gateway delivers generations incrementally (one token per
    event plus one terminal event carrying the finish reason).  Consumers
    that want the whole completion — the gateway's non-streaming response
    path, tests asserting streamed == sequential, future detokenizers that
    must see tokens exactly once and in order — feed the events through
    this assembler, which enforces the stream contract instead of trusting
    it:

    * token indices must be contiguous from 0 (no gaps, duplicates or
      reordering — the guarantee incremental detokenization relies on);
    * exactly one terminal event, after which the stream is immutable;
    * the result is only available once the stream has finished.
    """

    def __init__(self, prompt_tokens: Sequence[int]):
        self.prompt_tokens = [int(t) for t in prompt_tokens]
        self.generated_tokens: List[int] = []
        self.finish_reason: Optional[str] = None

    @property
    def finished(self) -> bool:
        """Whether the terminal event has been consumed."""
        return self.finish_reason is not None

    def feed_token(self, index: int, token: int) -> None:
        """Consume one token event (``index`` is 0-based and contiguous)."""
        if self.finished:
            raise ValueError(
                f"token after terminal event (finish_reason="
                f"{self.finish_reason!r})"
            )
        if index != len(self.generated_tokens):
            raise ValueError(
                f"out-of-order stream: got token index {index}, expected "
                f"{len(self.generated_tokens)}"
            )
        self.generated_tokens.append(int(token))

    def finish(self, finish_reason: str, decode_steps: int = 0) -> None:
        """Consume the terminal event."""
        if self.finished:
            raise ValueError("stream already finished")
        self.finish_reason = finish_reason
        self._decode_steps = decode_steps

    def result(self) -> GenerationResult:
        """The assembled result; raises until the stream has finished."""
        if not self.finished:
            raise ValueError("stream has not finished yet")
        return GenerationResult(
            prompt_tokens=list(self.prompt_tokens),
            generated_tokens=list(self.generated_tokens),
            prefill_length=len(self.prompt_tokens),
            decode_steps=self._decode_steps,
            finish_reason=self.finish_reason,
        )


class Generator:
    """Greedy / temperature sampling generator over a :class:`TransformerModel`."""

    def __init__(self, model: TransformerModel, seed: int = 0):
        self.model = model
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        prompt_tokens,
        max_new_tokens: int = 16,
        temperature: float = 0.0,
        stop_token: Optional[int] = None,
        keep_logits: bool = False,
        top_k: int = 0,
        stop_tokens: Sequence[int] = (),
    ) -> GenerationResult:
        """Generate tokens autoregressively.

        Parameters
        ----------
        prompt_tokens:
            Sequence of prompt token ids (non-empty).
        max_new_tokens:
            Maximum number of tokens to generate.
        temperature:
            0 for greedy decoding, otherwise softmax-temperature sampling.
        stop_token:
            Optional token id that terminates generation when produced.
        keep_logits:
            Record the logits of every decode step (used by tests and the
            quality evaluation).
        top_k:
            Restrict temperature sampling to the ``top_k`` highest-logit
            tokens (0, the default, disables truncation) — the same
            semantics as :class:`repro.serving.session.SamplingParams`.
        stop_tokens:
            Additional stop-token ids; generation terminates on any of
            them or on ``stop_token`` (the legacy single-token alias),
            mirroring ``SamplingParams.stop_tokens`` so batched and
            sequential runs stop identically.
        """
        prompt = [int(t) for t in prompt_tokens]
        if not prompt:
            raise ValueError("prompt_tokens must be non-empty")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        stop_ids = {int(t) for t in stop_tokens}
        if stop_token is not None:
            stop_ids.add(int(stop_token))
        if any(t < 0 for t in stop_ids):
            raise ValueError("stop tokens must be non-negative ints")

        caches = self.model.new_cache()
        result = GenerationResult(prompt_tokens=prompt, generated_tokens=[])

        # Prefill: one pass over the whole prompt (mpGEMM regime).
        logits = self.model.forward(np.asarray(prompt), caches=caches,
                                    start_position=0)
        result.prefill_length = len(prompt)
        last_logits = logits[-1]
        if keep_logits:
            result.logits_history.append(last_logits.copy())

        position = len(prompt)
        for step in range(max_new_tokens):
            token = self._sample(last_logits, temperature, top_k)
            result.generated_tokens.append(token)
            if token in stop_ids:
                result.finish_reason = "stop"
                break
            if step == max_new_tokens - 1:
                result.finish_reason = "length"
                break  # no forward needed after the final token
            if position >= self.model.arch.max_seq_len - 1:
                result.finish_reason = "context"
                break
            # Decode: one token at a time (mpGEMV regime).
            logits = self.model.forward(np.asarray([token]), caches=caches,
                                        start_position=position)
            result.decode_steps += 1
            last_logits = logits[-1]
            if keep_logits:
                result.logits_history.append(last_logits.copy())
            position += 1
        return result

    def _sample(self, logits: np.ndarray, temperature: float,
                top_k: int = 0) -> int:
        return sample_token(logits, temperature, self._rng, top_k=top_k)
