"""Token generation loop: prefill + incremental decode with a KV cache.

This mirrors the structure of the llama.cpp main loop the paper integrates
T-MAC into: a compute-bound prefill over the prompt (mpGEMM) followed by a
memory-bound decode phase that generates tokens one at a time (mpGEMV).
The :class:`Generator` also records how many of each matmul shape were
executed, which the tests use to cross-check the analytic throughput model's
shape enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.llm.layers import softmax
from repro.llm.model import TransformerModel

__all__ = ["GenerationResult", "Generator", "sample_token"]


def sample_token(logits: np.ndarray, temperature: float,
                 rng: np.random.Generator, top_k: int = 0) -> int:
    """Draw one token from a logits row (greedy at temperature 0).

    ``top_k > 0`` restricts temperature sampling to the ``top_k``
    highest-logit tokens (ties at the cut-off all stay in, so the
    selection is deterministic for a given logits row); ``top_k == 0``
    disables truncation.  Shared by the sequential :class:`Generator` and
    the serving engine's :class:`repro.serving.session.InferenceSession`,
    whose batched-equals-sequential guarantee depends on both paths
    sampling identically.
    """
    if top_k < 0:
        raise ValueError(
            f"top_k must be >= 0 (0 disables truncation), got {top_k}"
        )
    if temperature <= 0.0:
        return int(np.argmax(logits))
    logits = np.asarray(logits)
    if top_k and top_k < logits.shape[-1]:
        threshold = np.partition(logits, -top_k)[-top_k]
        logits = np.where(logits >= threshold, logits, -np.inf)
    probs = softmax(logits / temperature)
    return int(rng.choice(len(probs), p=probs))


@dataclass
class GenerationResult:
    """Outcome of one generation call."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    logits_history: List[np.ndarray] = field(default_factory=list)
    prefill_length: int = 0
    decode_steps: int = 0
    #: Why generation stopped (``"stop"`` / ``"length"`` / ``"context"`` /
    #: ``"capacity"``); ``""`` for paths that do not record one.
    finish_reason: str = ""

    @property
    def tokens(self) -> List[int]:
        """Prompt + generated tokens."""
        return list(self.prompt_tokens) + list(self.generated_tokens)


class Generator:
    """Greedy / temperature sampling generator over a :class:`TransformerModel`."""

    def __init__(self, model: TransformerModel, seed: int = 0):
        self.model = model
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        prompt_tokens,
        max_new_tokens: int = 16,
        temperature: float = 0.0,
        stop_token: Optional[int] = None,
        keep_logits: bool = False,
        top_k: int = 0,
    ) -> GenerationResult:
        """Generate tokens autoregressively.

        Parameters
        ----------
        prompt_tokens:
            Sequence of prompt token ids (non-empty).
        max_new_tokens:
            Maximum number of tokens to generate.
        temperature:
            0 for greedy decoding, otherwise softmax-temperature sampling.
        stop_token:
            Optional token id that terminates generation when produced.
        keep_logits:
            Record the logits of every decode step (used by tests and the
            quality evaluation).
        top_k:
            Restrict temperature sampling to the ``top_k`` highest-logit
            tokens (0, the default, disables truncation) — the same
            semantics as :class:`repro.serving.session.SamplingParams`.
        """
        prompt = [int(t) for t in prompt_tokens]
        if not prompt:
            raise ValueError("prompt_tokens must be non-empty")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")

        caches = self.model.new_cache()
        result = GenerationResult(prompt_tokens=prompt, generated_tokens=[])

        # Prefill: one pass over the whole prompt (mpGEMM regime).
        logits = self.model.forward(np.asarray(prompt), caches=caches,
                                    start_position=0)
        result.prefill_length = len(prompt)
        last_logits = logits[-1]
        if keep_logits:
            result.logits_history.append(last_logits.copy())

        position = len(prompt)
        for step in range(max_new_tokens):
            token = self._sample(last_logits, temperature, top_k)
            result.generated_tokens.append(token)
            if stop_token is not None and token == stop_token:
                result.finish_reason = "stop"
                break
            if step == max_new_tokens - 1:
                result.finish_reason = "length"
                break  # no forward needed after the final token
            if position >= self.model.arch.max_seq_len - 1:
                result.finish_reason = "context"
                break
            # Decode: one token at a time (mpGEMV regime).
            logits = self.model.forward(np.asarray([token]), caches=caches,
                                        start_position=position)
            result.decode_steps += 1
            last_logits = logits[-1]
            if keep_logits:
                result.logits_history.append(last_logits.copy())
            position += 1
        return result

    def _sample(self, logits: np.ndarray, temperature: float,
                top_k: int = 0) -> int:
        return sample_token(logits, temperature, self._rng, top_k=top_k)
