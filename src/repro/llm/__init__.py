"""LLM substrate: model architectures, a runnable numpy transformer and the
end-to-end throughput estimator.

Two complementary paths are provided, mirroring how the paper evaluates:

* **Numerical path** — :mod:`repro.llm.model` builds a real (randomly
  initialized or user-provided) transformer whose linear layers run through
  a selectable mpGEMM backend from the registry (:mod:`repro.backends`:
  full-precision reference, llama.cpp-style dequantization, or T-MAC;
  :mod:`repro.llm.engine` keeps the historical names as aliases).  This is
  what the quality/error experiments (Tables 3 and 4) use, at
  laptop-friendly sizes.  Batched multi-request serving on top of this
  path lives in :mod:`repro.serving`.
* **Analytic path** — :mod:`repro.llm.throughput` walks the *real* layer
  shapes of Llama-2-7B/13B and BitNet-3B (:mod:`repro.llm.architecture`)
  and sums roofline kernel latencies to estimate tokens/second per device,
  engine and bit width.  This is what the throughput/energy experiments
  (Figures 8, 9, Tables 5, 7) use.
"""

from repro.llm.architecture import (
    BITNET_3B,
    LLAMA_2_13B,
    LLAMA_2_7B,
    TransformerArch,
    tiny_arch,
)
from repro.llm.engine import (
    DequantEngine,
    MatmulEngine,
    ReferenceEngine,
    TMACEngine,
    create_engine,
)
from repro.llm.inference import GenerationResult, Generator
from repro.llm.model import TransformerModel
from repro.llm.throughput import ThroughputEstimate, estimate_token_throughput

__all__ = [
    "TransformerArch",
    "LLAMA_2_7B",
    "LLAMA_2_13B",
    "BITNET_3B",
    "tiny_arch",
    "MatmulEngine",
    "ReferenceEngine",
    "DequantEngine",
    "TMACEngine",
    "create_engine",
    "TransformerModel",
    "Generator",
    "GenerationResult",
    "ThroughputEstimate",
    "estimate_token_throughput",
]
