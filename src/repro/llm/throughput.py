"""Analytic end-to-end token-generation throughput model.

Token generation (decode) executes one mpGEMV per linear layer per token,
plus attention over the KV cache and a handful of element-wise operators.
The estimator walks the real layer shapes of an architecture
(:meth:`TransformerArch.decode_matmul_shapes`), prices each GEMV with the
roofline cost model for the chosen engine, and adds a non-matmul overhead
term (KV-cache traffic, element-wise work, per-layer framework dispatch).

The per-token vector-instruction and DRAM-traffic totals are carried in the
result so that the power model (:mod:`repro.energy`) can convert the same
estimate into watts and joules per token.

This is the model behind Figure 8 (tokens/s on four devices), Figure 9 and
Table 5 (combined with the power model), Table 4's throughput column and
Table 7 (CPU vs GPU vs NPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.gpu import gpu_token_latency
from repro.core.config import TMACConfig
from repro.hardware.cost_model import CostModel, KernelLatency
from repro.hardware.device import Device
from repro.llm.architecture import TransformerArch
from repro.simd.profile import profile_dequant_gemm, profile_tmac_gemm

__all__ = [
    "ThroughputEstimate",
    "estimate_token_throughput",
    "DISPATCH_SECONDS_PER_LAYER",
]

#: Framework overhead charged per transformer layer per token: thread-pool
#: synchronization and the ~10 small non-matmul operators (norms, RoPE,
#: softmax, residual adds) llama.cpp dispatches per layer.  Calibrated so
#: that small models (BitNet-3B) do not extrapolate to unrealistically high
#: token rates on big machines, as the paper also observes ("operators other
#: than mpGEMV/mpGEMM" limit the end-to-end speedup).
DISPATCH_SECONDS_PER_LAYER = 150e-6


@dataclass(frozen=True)
class ThroughputEstimate:
    """Per-token latency breakdown and throughput for one configuration."""

    device: str
    model: str
    engine: str
    bits: int
    threads: int
    tokens_per_sec: float
    seconds_per_token: float
    matmul_seconds: float
    overhead_seconds: float
    instructions_per_token: float = 0.0
    dram_gb_per_token: float = 0.0
    representative_kernel: Optional[KernelLatency] = None

    def speedup_over(self, other: "ThroughputEstimate") -> float:
        """Throughput ratio of this estimate over another."""
        return self.tokens_per_sec / other.tokens_per_sec


def _non_matmul_overhead(
    device: Device,
    arch: TransformerArch,
    threads: int,
    context_length: int,
) -> float:
    """Non-matmul time per decode step (KV attention, element-wise, dispatch)."""
    cpu = device.cpu
    kv_bytes = 2.0 * arch.num_layers * arch.kv_dim * context_length * 2
    kv_seconds = kv_bytes / (cpu.bandwidth_at(threads) * 1e9)

    elementwise_flops = 20.0 * arch.hidden_size * arch.num_layers
    fp_flops_per_sec = (
        cpu.frequency_ghz * 1e9 * cpu.simd_throughput_scale
        * cpu.isa.lanes_fp16 * 2 * threads
    )
    elementwise_seconds = elementwise_flops / fp_flops_per_sec

    dispatch_seconds = DISPATCH_SECONDS_PER_LAYER * arch.num_layers
    return kv_seconds + elementwise_seconds + dispatch_seconds


def _fp16_matmul_seconds(device: Device, arch: TransformerArch,
                         threads: int) -> float:
    """Decode-step matmul time for the un-quantized fp16 model."""
    cpu = device.cpu
    weight_bytes = 2.0 * (arch.flops_per_token() / 2.0)
    memory_seconds = weight_bytes / (cpu.bandwidth_at(threads) * 1e9)
    fp_flops_per_sec = (
        cpu.frequency_ghz * 1e9 * cpu.simd_throughput_scale
        * cpu.isa.lanes_fp16 * 2 * threads
    )
    compute_seconds = arch.flops_per_token() / fp_flops_per_sec
    return max(memory_seconds, compute_seconds)


def estimate_token_throughput(
    device: Device,
    arch: TransformerArch,
    bits: int,
    engine: str = "tmac",
    threads: Optional[int] = None,
    config: Optional[TMACConfig] = None,
    context_length: int = 256,
    group_size: int = 128,
) -> ThroughputEstimate:
    """Estimate decode throughput (tokens/s) for one configuration.

    Parameters
    ----------
    device / arch / bits:
        Platform, model architecture and weight bit width.
    engine:
        ``"tmac"``, ``"llama.cpp"`` (alias ``"dequant"``), ``"fp16"``
        (un-quantized CPU baseline) or ``"gpu"`` (llama.cpp GPU backend).
    threads:
        CPU threads; defaults to the device's ``default_threads``.  Ignored
        by the GPU engine.
    config:
        Optional explicit :class:`TMACConfig` (e.g. with fast aggregation)
        for the T-MAC engine.
    context_length:
        Assumed KV-cache length for the attention overhead term.
    """
    threads = threads or device.default_threads
    key = engine.lower()
    shapes = arch.decode_matmul_shapes()
    model = CostModel(device)
    isa = device.isa

    representative: Optional[KernelLatency] = None
    instructions = 0.0
    dram_bytes = 0.0

    if key in ("tmac", "t-mac"):
        cfg = config or TMACConfig(bits=bits)
        if cfg.bits != bits:
            cfg = cfg.with_options(bits=bits)
        matmul_seconds = 0.0
        for _, m, k in shapes:
            profile = profile_tmac_gemm(1, m, k, cfg, isa=isa,
                                        group_size=group_size)
            lat = model.kernel_latency(profile, threads=threads)
            matmul_seconds += lat.seconds
            instructions += profile.total_instructions()
            dram_bytes += profile.dram_read_bytes + profile.dram_write_bytes
            representative = lat
        engine_name = "T-MAC (+FA)" if cfg.fast_aggregation else "T-MAC"
    elif key in ("llama.cpp", "llamacpp", "dequant"):
        matmul_seconds = 0.0
        for _, m, k in shapes:
            profile = profile_dequant_gemm(1, m, k, bits, isa=isa)
            lat = model.kernel_latency(profile, threads=threads)
            matmul_seconds += lat.seconds
            instructions += profile.total_instructions()
            dram_bytes += profile.dram_read_bytes + profile.dram_write_bytes
            representative = lat
        engine_name = "llama.cpp (CPU)"
    elif key in ("fp16", "reference", "unquantized"):
        matmul_seconds = _fp16_matmul_seconds(device, arch, threads)
        weights = arch.flops_per_token() / 2.0
        instructions = weights / isa.lanes_fp16 + weights * 2 / isa.width_bits * 8
        dram_bytes = weights * 2
        engine_name = "un-quantized (fp16)"
    elif key == "gpu":
        weight_bytes = arch.weight_bytes(bits, group_size=group_size)
        num_kernels = len(shapes) + 3 * arch.num_layers
        seconds = gpu_token_latency(device, weight_bytes, num_kernels,
                                    arch.flops_per_token(), bits=bits)
        return ThroughputEstimate(
            device=device.name,
            model=arch.name,
            engine="llama.cpp (GPU)",
            bits=bits,
            threads=0,
            tokens_per_sec=1.0 / seconds,
            seconds_per_token=seconds,
            matmul_seconds=seconds,
            overhead_seconds=0.0,
            instructions_per_token=0.0,
            dram_gb_per_token=weight_bytes / 1e9,
        )
    else:
        raise ValueError(f"unknown engine {engine!r}")

    overhead = _non_matmul_overhead(device, arch, threads, context_length)
    seconds = matmul_seconds + overhead
    kv_bytes = 2.0 * arch.num_layers * arch.kv_dim * context_length * 2
    return ThroughputEstimate(
        device=device.name,
        model=arch.name,
        engine=engine_name,
        bits=bits,
        threads=threads,
        tokens_per_sec=1.0 / seconds,
        seconds_per_token=seconds,
        matmul_seconds=matmul_seconds,
        overhead_seconds=overhead,
        instructions_per_token=instructions,
        dram_gb_per_token=(dram_bytes + kv_bytes) / 1e9,
        representative_kernel=representative,
    )
