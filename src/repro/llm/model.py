"""A runnable decoder-only transformer backed by a selectable mpGEMM engine.

:class:`TransformerModel` is the numerical end-to-end substrate: a Llama-
style model (token embedding, N transformer blocks, final RMSNorm, LM head)
whose every linear layer is executed by the chosen engine (reference /
dequantization / T-MAC).  Weights can be supplied or generated; the
generated weights follow the scaled-Gaussian initialization that makes the
activations statistically similar to a trained checkpoint's, which is all
the kernel-error experiments need (the paper's accuracy claims are about
*relative* error between engines on the same weights).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.llm.architecture import TransformerArch
from repro.llm.engine import LinearOperator, MatmulEngine, ReferenceEngine
from repro.llm.layers import KVCache, TransformerBlock, rms_norm

__all__ = ["TransformerModel", "generate_random_weights"]


def generate_random_weights(arch: TransformerArch, seed: int = 0) -> Dict:
    """Generate a full set of model weights with sane scales.

    Linear weights use a fan-in-scaled Gaussian; norm weights start at 1.
    The same dictionary layout is accepted by :class:`TransformerModel`, so
    tests and examples can also hand-craft weights.
    """
    rng = np.random.default_rng(seed)
    h = arch.hidden_size

    def linear(out_features: int, in_features: int) -> np.ndarray:
        scale = 1.0 / np.sqrt(in_features)
        return rng.standard_normal((out_features, in_features)).astype(
            np.float32) * scale

    weights: Dict = {
        "embedding": rng.standard_normal((arch.vocab_size, h)).astype(
            np.float32) * 0.02,
        "final_norm": np.ones(h, dtype=np.float32),
        "lm_head": linear(arch.vocab_size, h),
        "layers": [],
    }
    for _ in range(arch.num_layers):
        weights["layers"].append({
            "input_norm": np.ones(h, dtype=np.float32),
            "post_attn_norm": np.ones(h, dtype=np.float32),
            "attention": {
                "q_proj": linear(h, h),
                "k_proj": linear(arch.kv_dim, h),
                "v_proj": linear(arch.kv_dim, h),
                "o_proj": linear(h, h),
            },
            "mlp": {
                "gate_proj": linear(arch.intermediate_size, h),
                "up_proj": linear(arch.intermediate_size, h),
                "down_proj": linear(h, arch.intermediate_size),
            },
        })
    return weights


class TransformerModel:
    """Numerically runnable Llama-style transformer.

    Parameters
    ----------
    arch:
        The architecture (use :func:`repro.llm.architecture.tiny_arch` for
        experiments that actually execute; the 7B/13B architectures are
        intended for the analytic throughput path).
    engine:
        The mpGEMM engine used for every linear layer; defaults to the
        full-precision reference.
    weights:
        Optional weight dictionary (see :func:`generate_random_weights` for
        the layout).  Generated from ``seed`` when omitted.
    """

    def __init__(
        self,
        arch: TransformerArch,
        engine: Optional[MatmulEngine] = None,
        weights: Optional[Dict] = None,
        seed: int = 0,
    ):
        self.arch = arch
        self.engine = engine or ReferenceEngine()
        self.weights = weights or generate_random_weights(arch, seed=seed)

        self.embedding = np.asarray(self.weights["embedding"], dtype=np.float32)
        if self.embedding.shape != (arch.vocab_size, arch.hidden_size):
            raise ValueError(
                f"embedding shape {self.embedding.shape} does not match "
                f"({arch.vocab_size}, {arch.hidden_size})"
            )
        self.final_norm_weight = np.asarray(self.weights["final_norm"],
                                            dtype=np.float32)
        self.lm_head: LinearOperator = self.engine.make_linear(
            self.weights["lm_head"], "lm_head")
        self.blocks: List[TransformerBlock] = [
            TransformerBlock(arch, self.engine, layer_weights, layer_index=i)
            for i, layer_weights in enumerate(self.weights["layers"])
        ]

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #

    def new_cache(self) -> List[KVCache]:
        """Fresh per-layer KV caches for incremental decoding."""
        return [KVCache() for _ in self.blocks]

    def forward(
        self,
        tokens: np.ndarray,
        caches: Optional[List[KVCache]] = None,
        start_position: int = 0,
    ) -> np.ndarray:
        """Compute logits for a token sequence.

        Parameters
        ----------
        tokens:
            1-D array of token ids.
        caches:
            Per-layer KV caches (from :meth:`new_cache`) for incremental
            decoding; omit for a stateless full-sequence pass.
        start_position:
            Absolute position of ``tokens[0]`` (non-zero during decode).

        Returns
        -------
        np.ndarray
            Logits of shape ``[len(tokens), vocab_size]``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError(f"tokens must be 1-D, got shape {tokens.shape}")
        if tokens.size == 0:
            raise ValueError("tokens must be non-empty")
        if tokens.max() >= self.arch.vocab_size or tokens.min() < 0:
            raise ValueError("token id out of range")
        positions = np.arange(start_position, start_position + tokens.size)
        if positions[-1] >= self.arch.max_seq_len:
            raise ValueError(
                f"sequence position {positions[-1]} exceeds max_seq_len "
                f"{self.arch.max_seq_len}"
            )

        x = self.embedding[tokens]
        for i, block in enumerate(self.blocks):
            cache = caches[i] if caches is not None else None
            x = block.forward(x, positions, cache)
        x = rms_norm(x, self.final_norm_weight)
        return self.lm_head(x)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def linears(self) -> List[LinearOperator]:
        """Every engine-bound linear operator in the model."""
        ops: List[LinearOperator] = []
        for block in self.blocks:
            ops.extend(block.linears())
        ops.append(self.lm_head)
        return ops

    def quantized_weight_bytes(self) -> int:
        """Total packed bytes of all engine-bound weights."""
        return int(sum(op.weight_bytes for op in self.linears()))

    def engine_name(self) -> str:
        """Name of the active mpGEMM engine."""
        return self.engine.name
