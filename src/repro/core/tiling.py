"""LUT-centric data layout: tile configurations and on-chip footprint math.

Section 3.2 of the paper redesigns the GEMM loop structure around the lookup
table:

* **Axis reordering** — the temporal axis K is traversed first so that only a
  ``[1, K_tk]`` slice of activations needs a table at any time, instead of a
  table for the whole ``A[N, K]``.
* **Tiling** — a tile ``A[N_tn, K_tk]`` / ``W[M_tm, K_tk]`` is staged in
  on-chip memory; because every one of the ``M_tm`` weight columns reuses the
  same table, a larger ``M_tm`` amortizes the table-build cost.
* **Register footprint** — the example of Figure 3 (``g=4``, tile
  ``[K_tk, M_tm] = [4, 32]``, ``b=4``) uses 144 8-bit registers for T-MAC
  versus 104 for the llama.cpp dequantization kernel.  The footprint
  formulas in this module reproduce those two numbers exactly and are used
  by the tuner to reject configurations that would spill.

Nothing in this module changes numerical results; it feeds the instruction
and memory models in :mod:`repro.simd` and :mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TileConfig",
    "TileFootprint",
    "tmac_register_footprint",
    "dequant_register_footprint",
    "axis_order",
    "lut_working_set_bytes",
    "default_tile_config",
]


@dataclass(frozen=True)
class TileConfig:
    """A tiling of the mpGEMM ``C[N, M] = A[N, K] x W[M, K]^T``.

    Attributes
    ----------
    n_tn:
        Activation-row tile size (1 for GEMV decode).
    m_tm:
        Weight-row (output) tile size.  Larger values reuse the lookup table
        across more outputs.
    k_tk:
        Reduction tile size, a multiple of the LUT group size ``g``.
    num_onchip_luts:
        Number of lookup tables kept resident in vector registers at a time
        (one per ``g``-wide slice of ``k_tk``).
    """

    n_tn: int = 1
    m_tm: int = 32
    k_tk: int = 32
    num_onchip_luts: int = 8

    def __post_init__(self) -> None:
        for field_name in ("n_tn", "m_tm", "k_tk", "num_onchip_luts"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")

    def tiles_for(self, n: int, m: int, k: int) -> tuple:
        """Number of tiles along each axis (ceil division) for a problem size."""
        tiles_n = -(-n // self.n_tn)
        tiles_m = -(-m // self.m_tm)
        tiles_k = -(-k // self.k_tk)
        return tiles_n, tiles_m, tiles_k

    def dram_bytes_per_tile(self, bits: int, act_bytes: int = 2) -> int:
        """Bytes loaded from DRAM to process one tile (weights + activations).

        Traditional GEMM tiling loads ``N_tn*K_tk`` activation elements and
        ``M_tm*K_tk`` weight elements per tile instead of the
        ``N_tn*M_tm*K_tk`` elements a naive loop would touch.
        Weights are packed at ``bits`` bits per element.
        """
        act = self.n_tn * self.k_tk * act_bytes
        weights = self.m_tm * self.k_tk * bits // 8
        return act + weights


@dataclass(frozen=True)
class TileFootprint:
    """Byte-level breakdown of the on-chip (register) footprint of one tile."""

    packed_indices: int
    unpacked_indices: int
    lut: int
    lookup_results: int
    accumulators: int
    activations: int = 0
    scales: int = 0

    @property
    def total_bytes(self) -> int:
        """Total 8-bit registers (bytes) required."""
        return (
            self.packed_indices
            + self.unpacked_indices
            + self.lut
            + self.lookup_results
            + self.accumulators
            + self.activations
            + self.scales
        )


def tmac_register_footprint(
    m_tm: int = 32,
    k_tk: int = 4,
    g: int = 4,
    table_quantization: bool = False,
    mirror_consolidation: bool = False,
    lanes: int = 16,
) -> TileFootprint:
    """On-chip footprint (in 8-bit registers) of one T-MAC basic block.

    For the Figure 3 example (``m_tm=32``, ``k_tk=4``, ``g=4``, fp16 tables)
    this evaluates to 144 bytes:

    * 16 B packed uint4 indices (32 indices x 4 bits),
    * 32 B unpacked uint8 indices,
    * 32 B lookup table (16 entries, fp16 split into low/high int8 LUTs),
    * 32 B raw lookup results for one index vector in flight (low/high),
    * 32 B fp16 accumulators for one result vector in flight.

    Table quantization halves the LUT and lookup-result bytes (a single int8
    LUT instead of a split fp16 one) and mirror consolidation halves the
    number of stored entries.
    """
    if k_tk % g != 0:
        raise ValueError(f"k_tk={k_tk} must be a multiple of g={g}")
    groups = k_tk // g
    num_indices = m_tm * groups

    packed = num_indices * g // 8
    unpacked = num_indices

    entries = 1 << g
    if mirror_consolidation:
        entries //= 2
    luts_per_group = 1 if table_quantization else 2
    lut = groups * entries * luts_per_group

    # Lookup results and accumulators are produced one SIMD register at a
    # time, so only one vector's worth (``lanes`` int8 results per LUT half,
    # ``lanes`` fp16 partial sums) is live at once.
    lookup_results = lanes * luts_per_group
    accumulators = 2 * lanes

    return TileFootprint(
        packed_indices=packed,
        unpacked_indices=unpacked,
        lut=lut,
        lookup_results=lookup_results,
        accumulators=accumulators,
    )


def dequant_register_footprint(k_tk: int = 32, bits: int = 4) -> TileFootprint:
    """On-chip footprint of one llama.cpp-style dequantization basic block.

    For the Figure 3 example (``k_tk=32``, ``bits=4``) this evaluates to 104
    bytes: 16 B packed uint4 weights, 32 B decoded int8 weights, 32 B int8
    activations, 16 B int32 dot-product accumulators and 8 B fp16
    scales/output.
    """
    packed = k_tk * bits // 8
    decoded = k_tk
    activations = k_tk
    accumulators = 16  # int32[4] accumulator register
    scales = 8  # fp16[4] scales / converted outputs
    return TileFootprint(
        packed_indices=packed,
        unpacked_indices=decoded,
        lut=0,
        lookup_results=0,
        accumulators=accumulators,
        activations=activations,
        scales=scales,
    )


def axis_order(lut_centric: bool = True) -> tuple:
    """Loop axis order: LUT-centric layout walks the temporal axis K first."""
    return ("K", "N", "M") if lut_centric else ("N", "M", "K")


def lut_working_set_bytes(
    n: int,
    k: int,
    g: int,
    entry_bytes: int,
    mirror_consolidation: bool,
    k_tile: int = None,
) -> int:
    """Size of the lookup-table working set for an activation slice.

    With the traditional spatial-first loop order the whole ``A[N, K]`` needs
    a table — ``N * K/g * 2**g`` entries.  The LUT-centric temporal-first
    order only keeps tables for a ``[N, k_tile]`` slice alive.
    """
    if k_tile is None:
        k_tile = k
    entries = 1 << g
    if mirror_consolidation:
        entries //= 2
    groups = -(-k_tile // g)
    return n * groups * entries * entry_bytes


def default_tile_config(
    bits: int,
    g: int = 4,
    simd_width_bits: int = 128,
    vector_registers: int = 32,
    n: int = 1,
) -> TileConfig:
    """A reasonable default tile configuration for a SIMD width / register file.

    The heuristic mirrors the paper's description: the LUT group size ``g=4``
    exactly fills one 128-bit TBL register (16 int8 entries); the number of
    resident LUTs is chosen so that tables plus indices plus accumulators fit
    the architectural register file with headroom, and ``m_tm`` is sized to
    maximize table reuse.
    """
    lanes = simd_width_bits // 8
    # One LUT register per g-wide group; keep at most half the register file
    # for LUTs so indices/accumulators do not spill.
    num_luts = max(1, vector_registers // 4)
    k_tk = num_luts * g
    # Each lookup instruction produces `lanes` results; process a few vectors
    # of outputs per tile to amortize table builds.
    m_tm = lanes * 2
    return TileConfig(n_tn=min(n, 8), m_tm=m_tm, k_tk=k_tk, num_onchip_luts=num_luts)
