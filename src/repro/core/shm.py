"""Shared-memory plan publication and the process worker pool.

The thread-pool :class:`~repro.core.executor.ParallelExecutor` tops out well
below the roofline projection because the Python layer around the numpy
kernels serializes on the GIL (see ``benchmarks/results/thread_scaling.txt``).
This module provides the machinery that moves the sharded mpGEMM/mpGEMV
pipeline onto real cores:

* :class:`PlanSegmentRegistry` — publishes a :class:`~repro.core.plan.
  KernelPlan`'s offline artifacts (weight scales/zeros, per-bit folded
  indices, mirror signs, precomputed gather offsets) **once** into a
  ``multiprocessing.shared_memory`` segment keyed by the plan's content
  address.  Plans are frozen read-only after the offline build, which is
  exactly the shape shared memory needs: workers attach lazily and map the
  same physical pages, so no weight or index bytes are ever pickled.  The
  registry refcounts segments per live plan object (``weakref.finalize``),
  unlinks them when the last referencing plan is garbage-collected — e.g.
  after eviction from :class:`~repro.core.plan.PlanCache` — and sweeps
  every remaining segment at interpreter exit so crashes cannot orphan
  ``/dev/shm`` entries across runs.
* :class:`ProcessWorkerPool` — a persistent pool of worker *processes* (one
  pool per worker count, shared by every kernel in the process).  Per call,
  only the activation lookup table, the per-quantization-group activation
  sums and the output buffer cross the process boundary — all through a
  reusable scratch arena sized by the largest call seen, so steady-state
  decode performs no serialization beyond a tiny per-shard control tuple.
  Workers that die (OOM-killed, crashed, test-killed) are detected by the
  dispatch loop, respawned, and the lost shards are resubmitted; shard
  writes are idempotent (each worker owns a disjoint output span), so a
  retried call stays bit-identical.  A call that cannot complete raises
  :class:`ExecutorWorkerError` — it never hangs.

Workers execute the *same* :class:`~repro.core.executor.VectorizedExecutor`
span pipeline against views reconstructed over the shared segments, with the
same per-shard chunk budget the thread executor uses, so the per-element
float-op sequence is exactly the serial one and results are bit-identical
at any worker count.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_module
import threading
import time
import traceback
import weakref
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = [
    "ExecutorWorkerError",
    "shm_available",
    "PlanSegmentRegistry",
    "PLAN_SEGMENTS",
    "ProcessWorkerPool",
    "get_process_pool",
    "shutdown_process_pools",
    "shm_registry_stats",
]

try:  # pragma: no cover - import success is the normal case
    import multiprocessing
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down interpreters
    multiprocessing = None
    _shared_memory = None

#: Alignment of every block inside a shared segment (cache-line friendly,
#: and satisfies any numpy dtype's alignment requirement).
_ALIGN = 64

#: Workers keep at most this many attached plan mappings before evicting
#: the least recently used one (bounds worker-side address-space growth in
#: long-running serving processes with many models).
_WORKER_PLAN_CACHE = 64


class ExecutorWorkerError(RuntimeError):
    """A process-pool mpGEMM call could not be completed.

    Raised when a worker shard fails with an exception, when workers keep
    dying faster than the pool can respawn them, or when a call exceeds the
    pool's timeout.  The dispatching call never hangs: it either returns a
    bit-identical result or raises this error (and the pool is reset so the
    next call starts from clean workers).
    """


def shm_available() -> bool:
    """Whether POSIX shared memory + multiprocessing are usable here.

    ``REPRO_DISABLE_SHM=1`` forces the negative — used by tests to cover the
    graceful serial fallback, and as an operator escape hatch on platforms
    with broken ``/dev/shm``.
    """
    if os.environ.get("REPRO_DISABLE_SHM"):
        return False
    return _shared_memory is not None


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


_NAME_LOCK = threading.Lock()
_NAME_COUNTER = [0]


def _segment_name(prefix: str) -> str:
    """Process-unique shared-memory name (pid + monotonic counter)."""
    with _NAME_LOCK:
        _NAME_COUNTER[0] += 1
        return f"{prefix}-{os.getpid()}-{_NAME_COUNTER[0]}"


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker registration.

    Worker processes attaching a parent-owned segment must not register it
    with the (shared, forked) resource tracker: the parent owns the unlink,
    and concurrent register/unregister messages from several workers for
    one name race in the tracker's set and end in spurious KeyErrors and
    premature unlinks.  Python 3.13 grows ``track=False`` for exactly this;
    on 3.11 the registration hook is silenced around the attach (workers
    are single-threaded, so the swap cannot race locally).
    """
    try:  # pragma: no cover - depends on CPython internals staying put
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:
        return _shared_memory.SharedMemory(name=name)
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _pack_arrays(arrays: "Dict[str, np.ndarray]") -> Tuple[int, Dict]:
    """Compute the packed layout ``name -> (offset, shape, dtype-str)``."""
    entries: Dict[str, Tuple[int, tuple, str]] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _align(offset)
        entries[name] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    return offset, entries


def _view(buf, entry, writeable: bool = False) -> np.ndarray:
    """A numpy view over one packed block of a shared segment."""
    off, shape, dtype = entry
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=off)
    if not writeable:
        arr.setflags(write=False)
    return arr


# --------------------------------------------------------------------- #
# Plan publication registry (parent side)
# --------------------------------------------------------------------- #


@dataclass
class _PlanSegment:
    """One published plan: the segment plus its refcounting state."""

    key: tuple
    shm: object
    manifest: dict
    nbytes: int
    #: ``id()`` of every live KernelPlan object retaining this segment.
    owners: Set[int] = field(default_factory=set)


class PlanSegmentRegistry:
    """Process-wide shared-memory publication of kernel plans.

    Segments are keyed by ``(weight fingerprint, layout key, mirrored)`` —
    the plan's content address plus the gather-metadata variant — so two
    plan objects for the same weights share one segment.  Each segment is
    retained by the set of live plan objects that published it; a
    ``weakref.finalize`` per plan decrements the count and the segment is
    unlinked when it reaches zero (plans dropped by ``PlanCache`` eviction
    release their segments as soon as the last kernel reference dies).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._segments: Dict[tuple, _PlanSegment] = {}

    def publish(self, plan, mirrored: bool) -> dict:
        """Publish (or re-use) the segment for ``plan`` and return its
        manifest — everything a worker needs to rebuild read-only views."""
        from repro.core.plan import _layout_key

        key = (
            plan.fingerprint,
            _layout_key(plan.config, plan.weights.tile_config),
            bool(mirrored),
        )
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                entry = self._build(key, plan, mirrored)
                self._segments[key] = entry
            if id(plan) not in entry.owners:
                entry.owners.add(id(plan))
                weakref.finalize(plan, self._release, key, id(plan))
            return entry.manifest

    def _build(self, key: tuple, plan, mirrored: bool) -> _PlanSegment:
        tables = plan.lookup_tables(mirrored)
        arrays: Dict[str, np.ndarray] = {
            "scales": plan.weights.scales,
            "zeros": plan.weights.zeros,
        }
        for bit, folded in enumerate(tables.folded):
            arrays[f"folded_{bit}"] = folded
        if tables.signs is not None:
            for bit, signs in enumerate(tables.signs):
                arrays[f"signs_{bit}"] = signs
        if tables.offsets is not None:
            for bit, offsets in enumerate(tables.offsets):
                arrays[f"offsets_{bit}"] = offsets

        total, entries = _pack_arrays(arrays)
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, total), name=_segment_name("repro-plan")
        )
        for name, arr in arrays.items():
            np.copyto(_view(shm.buf, entries[name], writeable=True),
                      np.ascontiguousarray(arr), casting="no")
        manifest = {
            "key": key,
            "segment": shm.name,
            "entries": entries,
            "bits": plan.bits,
            "alpha": plan.transform.alpha,
            "beta": plan.transform.beta,
            "out_features": plan.out_features,
            "in_features": plan.in_features,
            "num_qgroups": plan.num_qgroups,
            "groups_per_qgroup": plan.groups_per_qgroup,
            "num_groups": plan.num_groups,
            "stored": tables.stored,
            "mirrored": bool(mirrored),
            "has_signs": tables.signs is not None,
            "has_offsets": tables.offsets is not None,
        }
        return _PlanSegment(key=key, shm=shm, manifest=manifest,
                            nbytes=max(1, total))

    def _release(self, key: tuple, plan_id: int) -> None:
        """Finalizer: a retaining plan object died; unlink on last owner."""
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                return
            entry.owners.discard(plan_id)
            if entry.owners:
                return
            del self._segments[key]
        _destroy_segment(entry.shm)

    def stats(self) -> Dict[str, int]:
        """Live segment count and total published bytes."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "bytes": sum(e.nbytes for e in self._segments.values()),
            }

    def clear(self) -> None:
        """Unlink every published segment (tests / interpreter exit).

        Plans that are still alive simply re-publish on their next
        process-pool call; workers keep functioning because an unlinked
        POSIX segment stays mapped until the last attach closes.
        """
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for entry in entries:
            _destroy_segment(entry.shm)


def _destroy_segment(shm) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - lingering views keep the map
        pass
    except OSError:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass


#: The process-wide plan-segment registry used by the process executor.
PLAN_SEGMENTS = PlanSegmentRegistry()


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _WorkerPlan:
    """Worker-side read-only reconstruction of a published plan.

    Duck-types the subset of :class:`~repro.core.plan.KernelPlan` the
    vectorized span pipeline touches (shape properties, ``weights.scales``
    / ``weights.zeros``, ``transform.alpha`` / ``beta``,
    ``lookup_tables``), backed by zero-copy views over the shared segment.
    """

    def __init__(self, manifest: dict, segment):
        from repro.core.plan import _LookupTables

        buf = segment.buf
        entries = manifest["entries"]
        self.segment_name = manifest["segment"]
        self.bits = manifest["bits"]
        self.out_features = manifest["out_features"]
        self.in_features = manifest["in_features"]
        self.num_qgroups = manifest["num_qgroups"]
        self.groups_per_qgroup = manifest["groups_per_qgroup"]
        self.num_groups = manifest["num_groups"]
        self.mirrored = manifest["mirrored"]
        self.weights = SimpleNamespace(
            scales=_view(buf, entries["scales"]),
            zeros=_view(buf, entries["zeros"]),
        )
        self.transform = SimpleNamespace(
            alpha=manifest["alpha"], beta=manifest["beta"]
        )
        folded = [_view(buf, entries[f"folded_{b}"])
                  for b in range(self.bits)]
        signs = None
        if manifest["has_signs"]:
            signs = [_view(buf, entries[f"signs_{b}"])
                     for b in range(self.bits)]
        offsets = None
        if manifest["has_offsets"]:
            offsets = [_view(buf, entries[f"offsets_{b}"])
                       for b in range(self.bits)]
        self._tables = _LookupTables(stored=manifest["stored"],
                                     folded=folded, signs=signs,
                                     offsets=offsets)
        #: Specialization key -> compiled kernel, mirroring
        #: :meth:`KernelPlan.specialized`.  The worker loop is
        #: single-threaded, so no lock is needed; the cache lives as long
        #: as this reconstruction does (evicted with the plan entry).
        self._spec_cache: dict = {}

    def lookup_tables(self, mirrored: bool):
        if bool(mirrored) != self.mirrored:
            raise RuntimeError(
                f"plan segment published for mirrored={self.mirrored}, "
                f"call requires mirrored={mirrored}"
            )
        return self._tables

    def specialized(self, key):
        """Worker-side specialization cache (single-threaded, lock-free)."""
        cached = self._spec_cache.get(key)
        if cached is None:
            from repro.core.specialize import compile_specialized

            cached = compile_specialized(self, key,
                                         self.lookup_tables(key.mirrored))
            self._spec_cache[key] = cached
        return cached


def _worker_attach(cache: dict, name: str):
    seg = cache.get(name)
    if seg is None:
        seg = _attach_untracked(name)
        cache[name] = seg
    return seg


def _worker_drop_segment(cache: dict, name: str) -> None:
    seg = cache.pop(name, None)
    if seg is None:
        return
    try:
        seg.close()
    except BufferError:  # views still alive somewhere; keep the map
        cache[name] = seg


def _execute_shard(plans: dict, seg_cache: dict, task: tuple) -> None:
    """Run one output-span shard inside a worker process."""
    from repro.core.executor import VectorizedExecutor
    from repro.core.lut import LookupTable

    (_, _call_id, _shard, plan_key, manifest, arena_name, layout,
     table_meta, m0, m1, span_budget, exec_opts) = task

    plan = plans.get(plan_key)
    if plan is None:
        if manifest is None:
            raise RuntimeError(
                f"plan {plan_key!r} not announced to this worker"
            )
        segment = _worker_attach(seg_cache, manifest["segment"])
        plan = _WorkerPlan(manifest, segment)
        plans[plan_key] = plan
        while len(plans) > _WORKER_PLAN_CACHE:
            old_key = next(iter(plans))
            old = plans.pop(old_key)
            _worker_drop_segment(seg_cache, old.segment_name)

    arena = _worker_attach(seg_cache, arena_name)
    # The arena is reused (and eventually replaced) across calls; drop any
    # previously attached arena generations so mappings do not accumulate.
    for name in [n for n in seg_cache
                 if n.startswith("repro-arena") and n != arena_name]:
        _worker_drop_segment(seg_cache, name)

    g, mirrored, quantized, scale_block, s0, s1, act_dtype = table_meta
    values = _view(arena.buf, layout["values"])
    scales = (_view(arena.buf, layout["scales"])
              if "scales" in layout else None)
    group_sums = _view(arena.buf, layout["group_sums"])
    out = _view(arena.buf, layout["out"], writeable=True)

    table = LookupTable(values=values, g=g, mirrored=mirrored,
                        quantized=quantized, scales=scales,
                        scale_block=scale_block, s0=s0, s1=s1,
                        act_dtype=act_dtype)
    fast_aggregation, specialize, lut_dtype, gather_variant = exec_opts
    config = SimpleNamespace(fast_aggregation=fast_aggregation,
                             specialize=specialize, lut_dtype=lut_dtype,
                             gather_variant=gather_variant)
    executor = VectorizedExecutor()
    # Assignment into the float32 slice rounds exactly like the serial
    # path's final astype(float32) — same property the thread pool uses.
    out[:, m0:m1] = executor._recombine_span(
        plan, table, config, group_sums, m0, m1, span_budget
    )
    del out, values, scales, group_sums


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process loop: attach lazily, compute shards, report back."""
    plans: Dict[tuple, _WorkerPlan] = {}
    seg_cache: Dict[str, object] = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        kind = task[0]
        if kind == "crash":  # test hook: simulate a hard worker death
            os._exit(3)
        if kind != "call":
            continue
        call_id, shard = task[1], task[2]
        try:
            _execute_shard(plans, seg_cache, task)
            result_queue.put(("ok", call_id, shard, worker_id))
        except BaseException:
            result_queue.put(("err", call_id, shard, worker_id,
                              traceback.format_exc()))


# --------------------------------------------------------------------- #
# Parent-side worker pool
# --------------------------------------------------------------------- #


@dataclass
class _Worker:
    proc: object
    queue: object
    announced: Set[tuple] = field(default_factory=set)


class ProcessWorkerPool:
    """Persistent pool of mpGEMM worker processes for one worker count.

    One call runs at a time per pool (a dispatch lock serializes callers);
    shards of a call run concurrently across the workers.  The pool owns a
    single scratch arena segment, grown to the largest call seen, holding
    the per-call inputs (LUT values + scales + activation group sums) and
    the shared output buffer — the only bytes that move per call.
    """

    #: Result-poll interval while waiting on workers.
    _POLL_S = 0.05
    #: Consecutive respawn rounds tolerated within one call.
    max_retries = 3

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if not shm_available():
            raise RuntimeError("shared memory is not available on this host")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.num_workers = num_workers
        self.call_timeout_s = float(
            os.environ.get("REPRO_PROCESS_CALL_TIMEOUT_S", "120")
        )
        self._lock = threading.Lock()
        self._results = self._ctx.Queue()
        self._workers: List[_Worker] = []
        self._arena = None
        self._arena_bytes = 0
        self._call_seq = 0
        self.restarts = 0

    # -- lifecycle ---------------------------------------------------- #

    def _spawn_locked(self, worker_id: int) -> _Worker:
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._results),
            daemon=True,
            name=f"repro-mpgemm-proc-{self.num_workers}-{worker_id}",
        )
        proc.start()
        return _Worker(proc=proc, queue=task_queue)

    def _ensure_workers_locked(self, count_restarts: bool) -> None:
        if self._workers:
            dead = [w for w in self._workers if not w.proc.is_alive()]
            if dead:
                if count_restarts:
                    self.restarts += len(dead)
                # Never respawn onto the surviving queues: a worker that
                # died between calls may have been killed after its result
                # was delivered but before its feeder thread released the
                # results queue's shared write semaphore — every process
                # that later writes to that queue would block forever.
                # Recycle the whole pool (fresh processes, fresh queues).
                self._reset_locked()
        if not self._workers:
            self._workers = [
                self._spawn_locked(i) for i in range(self.num_workers)
            ]

    def _ensure_arena_locked(self, nbytes: int) -> None:
        if self._arena is not None and self._arena_bytes >= nbytes:
            return
        if self._arena is not None:
            _destroy_segment(self._arena)
        size = 1 << max(12, (max(1, nbytes) - 1).bit_length())
        self._arena = _shared_memory.SharedMemory(
            create=True, size=size, name=_segment_name("repro-arena")
        )
        self._arena_bytes = size

    def _reset_locked(self) -> None:
        """Kill every worker and drop queued work (post-error hygiene).

        The shared results queue is recycled along with the workers: a
        worker terminated mid-``put`` dies holding the queue's write lock,
        which would deadlock every future worker that touches the old
        queue (the parent would then see alive-but-silent workers until
        the call deadline).  Task queues are per-worker and already
        replaced by ``_spawn_locked``.
        """
        for worker in self._workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in self._workers:
            worker.proc.join(timeout=2.0)
        self._workers = []
        self._recycle_results_queue_locked()

    def _recycle_results_queue_locked(self) -> None:
        old = self._results
        self._results = self._ctx.Queue()
        try:
            old.close()
        except (OSError, ValueError):  # pragma: no cover
            pass

    def shutdown(self) -> None:
        """Stop workers and unlink the arena (tests / interpreter exit)."""
        with self._lock:
            for worker in self._workers:
                try:
                    worker.queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            deadline = time.monotonic() + 2.0
            for worker in self._workers:
                worker.proc.join(timeout=max(0.0,
                                             deadline - time.monotonic()))
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join(timeout=1.0)
            self._workers = []
            self._recycle_results_queue_locked()
            if self._arena is not None:
                _destroy_segment(self._arena)
                self._arena = None
                self._arena_bytes = 0

    def reset_stats(self) -> None:
        with self._lock:
            self.restarts = 0

    def arena_bytes(self) -> int:
        with self._lock:
            return self._arena_bytes if self._arena is not None else 0

    def restart_count(self) -> int:
        """Cumulative worker respawns, read under the dispatch lock."""
        with self._lock:
            return self.restarts

    # -- test hooks --------------------------------------------------- #

    def debug_kill_worker(self, index: int = 0, *,
                          mid_dispatch: bool = False) -> None:
        """Kill one worker (fault-path tests).

        ``mid_dispatch=True`` queues a crash marker instead of terminating
        immediately, so the worker dies while draining its task queue
        during the *next* call — exercising the lost-shard resubmission
        path rather than the between-calls respawn path.
        """
        with self._lock:
            if not self._workers:
                self._ensure_workers_locked(count_restarts=False)
            worker = self._workers[index % len(self._workers)]
            if mid_dispatch:
                worker.queue.put(("crash",))
            else:
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)

    # -- dispatch ----------------------------------------------------- #

    def run_matmul(self, plan, table, config, group_sums: np.ndarray,
                   shards: List[Tuple[int, int]],
                   span_budget: int) -> np.ndarray:
        """Execute one sharded mpGEMM call; returns the ``[N, M]`` result.

        Bit-identical to the serial vectorized executor: workers run the
        identical span pipeline over identical input bytes with the same
        chunk budget, and every shard writes a disjoint output span.
        """
        n = int(table.num_rows)
        m = int(plan.out_features)
        with self._lock:
            self._drain_stale_results_locked()
            self._ensure_workers_locked(count_restarts=True)
            manifest = PLAN_SEGMENTS.publish(plan, table.mirrored)
            plan_key = manifest["key"]

            arrays = {
                "values": np.ascontiguousarray(table.values),
                "group_sums": np.ascontiguousarray(group_sums),
            }
            if table.scales is not None:
                arrays["scales"] = np.ascontiguousarray(table.scales)
            out_spec = np.empty((n, m), dtype=np.float32)
            arrays["out"] = out_spec
            total, layout = _pack_arrays(arrays)
            self._ensure_arena_locked(total)
            for name in ("values", "group_sums", "scales"):
                if name in arrays:
                    np.copyto(
                        _view(self._arena.buf, layout[name], writeable=True),
                        arrays[name], casting="no",
                    )

            self._call_seq += 1
            call_id = self._call_seq
            table_meta = (table.g, table.mirrored, table.quantized,
                          table.scale_block, table.s0, table.s1,
                          table.act_dtype)
            # The execution flags the span pipeline reads off the config.
            # The gather variant is resolved here (in the parent, where a
            # calibration profile may have set the host preference) so
            # every worker runs the same driver.
            from repro.core.specialize import resolve_gather_variant

            exec_opts = (bool(config.fast_aggregation),
                         bool(getattr(config, "specialize", False)),
                         getattr(config, "lut_dtype", "float"),
                         resolve_gather_variant(config))
            pending: Dict[int, Tuple[int, int]] = {
                i: span for i, span in enumerate(shards)
            }
            self._submit_locked(pending, call_id, plan_key, manifest,
                                layout, table_meta, span_budget,
                                exec_opts)
            retried = self._await_locked(pending, call_id, plan_key,
                                         manifest, layout, table_meta,
                                         span_budget, exec_opts)
            result = np.array(_view(self._arena.buf, layout["out"]))
            if retried:
                # Resubmission may have left duplicate shard tasks in
                # flight; within this call they are idempotent (same bytes
                # to the same span), but a straggler racing the *next*
                # call's arena reuse would not be.  Recycle the workers so
                # nothing outlives the call.
                self._reset_locked()
            return result

    def _submit_locked(self, pending, call_id, plan_key, manifest, layout,
                table_meta, span_budget, exec_opts) -> None:
        for i, (m0, m1) in sorted(pending.items()):
            worker = self._workers[i % len(self._workers)]
            announce = plan_key not in worker.announced
            worker.announced.add(plan_key)
            worker.queue.put((
                "call", call_id, i, plan_key,
                manifest if announce else None,
                self._arena.name, layout, table_meta, m0, m1,
                span_budget, exec_opts,
            ))

    def _await_locked(self, pending, call_id, plan_key, manifest, layout,
               table_meta, span_budget, exec_opts) -> int:
        """Wait for the call's shards; returns the respawn-round count."""
        deadline = time.monotonic() + self.call_timeout_s
        retries = 0
        while pending:
            try:
                msg = self._results.get(timeout=self._POLL_S)
            except queue_module.Empty:
                dead = [i for i, w in enumerate(self._workers)
                        if not w.proc.is_alive()]
                if dead:
                    retries += 1
                    self.restarts += len(dead)
                    if retries > self.max_retries:
                        self._reset_locked()
                        raise ExecutorWorkerError(
                            f"mpGEMM call lost workers {retries} times in a "
                            f"row; giving up with {len(pending)} shard(s) "
                            "outstanding"
                        )
                    # A worker that died mid-queue-operation may have
                    # taken a shared lock with it (its task queue's read
                    # lock, or the results queue's write lock) — any
                    # process still using those queues would deadlock.
                    # Recycle the whole pool: fresh processes, fresh
                    # queues, then resubmit every outstanding shard (we
                    # cannot know which ones the dead worker had consumed;
                    # shard writes are disjoint and idempotent).
                    self._reset_locked()
                    self._ensure_workers_locked(count_restarts=False)
                    self._submit_locked(pending, call_id, plan_key,
                                        manifest, layout, table_meta,
                                        span_budget, exec_opts)
                if time.monotonic() > deadline:
                    self._reset_locked()
                    raise ExecutorWorkerError(
                        f"mpGEMM call timed out after "
                        f"{self.call_timeout_s:.0f}s with {len(pending)} "
                        "shard(s) outstanding"
                    )
                continue
            if msg[1] != call_id:
                continue  # stale message from an abandoned call
            if msg[0] == "ok":
                pending.pop(msg[2], None)
            else:
                self._reset_locked()
                raise ExecutorWorkerError(
                    f"worker shard {msg[2]} failed:\n{msg[4]}"
                )
        return retries

    def _drain_stale_results_locked(self) -> None:
        while True:
            try:
                self._results.get_nowait()
            except queue_module.Empty:
                return


# --------------------------------------------------------------------- #
# Process-wide pool registry + exit cleanup
# --------------------------------------------------------------------- #

_POOLS_LOCK = threading.Lock()
_PROCESS_POOLS: Dict[int, ProcessWorkerPool] = {}


def get_process_pool(num_workers: int) -> ProcessWorkerPool:
    """The process-wide worker pool for ``num_workers`` worker processes.

    Pools are created lazily and persist for the life of the interpreter
    (worker start-up costs orders of magnitude more than an mpGEMM shard),
    so every kernel, layer and serving step sharing a worker count also
    shares one pool — and one scratch arena.
    """
    with _POOLS_LOCK:
        pool = _PROCESS_POOLS.get(num_workers)
        if pool is None:
            pool = ProcessWorkerPool(num_workers)
            _PROCESS_POOLS[num_workers] = pool
        return pool


def iter_process_pools() -> List[ProcessWorkerPool]:
    """Snapshot of the live pools (stats aggregation)."""
    with _POOLS_LOCK:
        return list(_PROCESS_POOLS.values())


def shutdown_process_pools() -> None:
    """Tear down every worker pool and its arena (tests / embedders)."""
    with _POOLS_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
    for pool in pools:
        pool.shutdown()


def shm_registry_stats() -> Dict[str, int]:
    """Live shared-memory footprint: published plans + scratch arenas."""
    stats = PLAN_SEGMENTS.stats()
    arenas = iter_process_pools()
    arena_bytes = sum(pool.arena_bytes() for pool in arenas)
    arena_count = sum(1 for pool in arenas if pool.arena_bytes())
    return {
        "segments": stats["segments"] + arena_count,
        "bytes": stats["bytes"] + arena_bytes,
        "plan_segments": stats["segments"],
        "plan_bytes": stats["bytes"],
        "arena_segments": arena_count,
        "arena_bytes": arena_bytes,
    }


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    """Orphan-segment sweep: nothing may outlive the interpreter."""
    try:
        shutdown_process_pools()
    except Exception:
        pass
    try:
        PLAN_SEGMENTS.clear()
    except Exception:
        pass
