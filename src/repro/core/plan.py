"""Offline kernel plans and the process-wide plan cache.

Algorithm 1 splits the T-MAC kernel into an *offline* stage (weights are
bit-plane decomposed, grouped, packed, permuted and interleaved once — they
never change during inference) and an *online* stage (per-activation table
precompute, lookup, aggregation).  :class:`KernelPlan` is the materialized
offline stage: everything derivable from ``(quantized weights, config)``
alone, built once and shared by every executor and every request that uses
the same weights.

Plans are content-addressed: :func:`weight_fingerprint` hashes the quantized
codes/scales/zeros, and :class:`PlanCache` memoizes plans process-wide under
``(fingerprint, layout-relevant config fields, tile config)``.  Only the
fields that change the offline artifacts enter the key — execution-time
knobs (table quantization, fast aggregation, LUT scale granularity,
executor choice) deliberately do not, so e.g. ``T-MAC`` and ``T-MAC (+FA)``
share one plan for the same weights.

The cache is what lets :func:`repro.core.gemm.tmac_gemm` /
:func:`~repro.core.gemm.tmac_gemv` be called repeatedly against the same
weights without re-running offline preprocessing, and what the serving
engine (:mod:`repro.serving`) uses to bind many concurrent models/requests
to one set of prepared weights.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bitserial import BitSerialTransform
from repro.core.config import TMACConfig
from repro.core.lut import LookupTable, precompute_lut
from repro.core.tiling import TileConfig
from repro.core.weights import (
    PreprocessedWeights,
    preprocess_weights,
    resolve_tile_config,
)
from repro.quant.uniform import QuantizedWeight

#: Precompute int32 gather offsets only while ``M * K/g`` stays below this
#: bound (~32 MB per bit plane); beyond it the memory cost of 4 bytes per
#: index outweighs the per-call arithmetic it saves.
_OFFSETS_PRECOMPUTE_MAX = 1 << 23

__all__ = [
    "KernelPlan",
    "build_plan",
    "weight_fingerprint",
    "PlanCache",
    "PLAN_CACHE",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_stats",
]


#: id(codes) -> (wr_codes, wr_scales, wr_zeros, digest).  Entries evict
#: themselves when the codes array is garbage-collected, so a recycled id
#: can never alias a dead entry.  Module-level (not on the weight object)
#: so QuantizedWeight instances stay free of unpicklable weakrefs.
_FINGERPRINT_MEMO: dict = {}


def _fingerprint_evictor(key: int):
    def _evict(_ref) -> None:
        _FINGERPRINT_MEMO.pop(key, None)

    return _evict


def weight_fingerprint(qweight: QuantizedWeight) -> str:
    """Content hash of a quantized weight matrix.

    Two :class:`~repro.quant.uniform.QuantizedWeight` objects with the same
    codes, scales, zero points, bit width and group size produce the same
    fingerprint, regardless of object identity — the property the plan cache
    needs to recognise "the same weights" across model rebuilds.

    The digest is memoized (keyed by the identity of the exact arrays
    hashed, held weakly) so a decode loop calling
    :func:`repro.core.gemm.tmac_gemv` against one weight object pays the
    O(M*K) hash once, not per token, while rebuilt or
    ``dataclasses.replace``-derived weights are always re-hashed.  Like the
    plan cache itself, this assumes the arrays are not mutated in place
    once quantized (they are not during inference).
    """
    key = id(qweight.codes)
    entry = _FINGERPRINT_MEMO.get(key)
    if entry is not None:
        wr_codes, wr_scales, wr_zeros, digest = entry
        if (wr_codes() is qweight.codes and wr_scales() is qweight.scales
                and wr_zeros() is qweight.zeros):
            return digest
    h = hashlib.sha1()
    h.update(f"{qweight.bits}:{qweight.group_size}:{qweight.shape}".encode())
    h.update(np.ascontiguousarray(qweight.codes).tobytes())
    h.update(np.ascontiguousarray(qweight.scales).tobytes())
    h.update(np.ascontiguousarray(qweight.zeros).tobytes())
    digest = h.hexdigest()
    _FINGERPRINT_MEMO[key] = (
        weakref.ref(qweight.codes, _fingerprint_evictor(key)),
        weakref.ref(qweight.scales),
        weakref.ref(qweight.zeros),
        digest,
    )
    return digest


@dataclass
class _LookupTables:
    """Precomputed gather metadata for one mirror setting (executor detail).

    For every bit plane the folded (mirror-consolidated) table indices and
    the mirror-reconstruction signs are pure functions of the weight
    indices — computed once per plan and reused by every online call, which
    matters in the decode regime where ``N = 1`` and the index arithmetic
    is as large as the gather itself.  Stored at index-plane width (one
    byte per index) so the footprint matches the index planes themselves.
    """

    #: Entries stored per table row (``2**g``, halved when mirrored).
    stored: int
    #: Per bit: ``[M, J]`` folded indices into the stored table.
    folded: List[np.ndarray]
    #: Per bit: ``[M, J]`` int8 ``+1``/``-1`` factors; ``None`` if unmirrored.
    signs: Optional[List[np.ndarray]]
    #: Per bit: ``[M, J]`` int32 flat offsets into a ``[J * stored]`` table
    #: row (``j * stored + folded``), precomputed so the decode-regime
    #: gather needs no per-call index arithmetic.  ``None`` for very large
    #: weight matrices, where the 4-bytes-per-index cost outweighs the
    #: saving — the executor then derives offsets from ``folded`` per chunk.
    offsets: Optional[List[np.ndarray]] = None


@dataclass
class KernelPlan:
    """The offline stage of the T-MAC kernel, built once per (weights, layout).

    Attributes
    ----------
    config:
        The configuration the plan was built with.  Executors may run the
        plan under a *different* config as long as the layout-relevant
        fields (``bits``, ``g``, ``s0``/``s1``, permutation, interleaving,
        tiling) agree — see :meth:`compatible_with`.
    weights:
        The preprocessed weight operand (index planes + packed layout).
    transform:
        Bit-serial transform mapping weight bits to table signs.
    fingerprint:
        Content hash of the source quantized weights.
    """

    config: TMACConfig
    weights: PreprocessedWeights
    transform: BitSerialTransform
    fingerprint: str
    _gather_cache: Dict[bool, _LookupTables] = field(
        default_factory=dict, repr=False
    )
    #: Specialization key -> compiled codes-dot kernel
    #: (:class:`~repro.core.specialize.SpecializedKernel`).  Lazily built,
    #: guarded by the same lock as the gather tables, and owned by the
    #: plan: evicting the plan from the :class:`PlanCache` releases every
    #: compiled kernel with it (the kernels hold no reference back).
    _spec_cache: Dict[tuple, object] = field(
        default_factory=dict, repr=False
    )
    #: Serializes the lazy gather-metadata and specialized-kernel builds:
    #: the parallel executor's workers (and concurrent serving requests)
    #: may race into :meth:`lookup_tables` / :meth:`specialized` for one
    #: shared plan.
    _gather_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Shape properties
    # ------------------------------------------------------------------ #

    @property
    def out_features(self) -> int:
        """M — rows of the weight matrix / output width."""
        return self.weights.out_features

    @property
    def in_features(self) -> int:
        """K — reduction dimension."""
        return self.weights.in_features

    @property
    def bits(self) -> int:
        """Weight bit width."""
        return self.weights.bits

    @property
    def g(self) -> int:
        """LUT group size."""
        return self.weights.g

    @property
    def group_size(self) -> int:
        """Weight-quantization group size along K."""
        return self.weights.group_size

    @property
    def groups_per_qgroup(self) -> int:
        """Number of g-wide LUT groups per weight-quantization group."""
        return self.weights.group_size // self.weights.g

    @property
    def num_qgroups(self) -> int:
        """Number of weight-quantization groups along K."""
        return self.weights.in_features // self.weights.group_size

    @property
    def num_groups(self) -> int:
        """J = K/g — total LUT groups along K."""
        return self.weights.in_features // self.weights.g

    # ------------------------------------------------------------------ #
    # Online-stage helpers
    # ------------------------------------------------------------------ #

    def scale_block(self, config: Optional[TMACConfig] = None) -> int:
        """Number of LUT groups sharing one dynamic table scale."""
        cfg = config or self.config
        return self.groups_per_qgroup if cfg.lut_scale_granularity == "group" else 1

    def precompute(
        self, activation: np.ndarray, config: Optional[TMACConfig] = None
    ) -> LookupTable:
        """Build the online lookup tables for an activation matrix.

        ``config`` overrides the plan's own configuration for the
        execution-time knobs (table quantization, scale granularity, mirror
        consolidation, activation dtype); the layout fields must match.
        """
        cfg = config or self.config
        if cfg.g != self.g:
            raise ValueError(f"config.g={cfg.g} does not match plan g={self.g}")
        if (cfg.s0, cfg.s1) != (self.transform.s0, self.transform.s1):
            raise ValueError(
                f"config transform ({cfg.s0}, {cfg.s1}) does not match the "
                f"plan's ({self.transform.s0}, {self.transform.s1})"
            )
        return precompute_lut(
            activation,
            g=cfg.g,
            transform=self.transform,
            mirror_consolidation=cfg.mirror_consolidation,
            table_quantization=cfg.table_quantization,
            scale_block=self.scale_block(cfg),
            act_dtype=cfg.act_dtype,
        )

    def lookup_tables(self, mirrored: bool) -> _LookupTables:
        """Precomputed per-bit folded indices and signs (lazily built).

        Thread-safe: concurrent callers (e.g. parallel-executor workers)
        build the metadata exactly once and all receive the same object.
        """
        # Benign double-checked read: dict.get is atomic under the GIL and
        # entries are only ever added (never mutated or removed), so a
        # stale miss just falls through to the locked slow path.
        # repro-lint: disable=lock-guard -- lock-free fast path; misses fall through to the locked build
        cached = self._gather_cache.get(mirrored)
        if cached is not None:
            return cached
        with self._gather_lock:
            return self._build_lookup_tables_locked(mirrored)

    def _build_lookup_tables_locked(self, mirrored: bool) -> _LookupTables:
        cached = self._gather_cache.get(mirrored)
        if cached is not None:
            return cached
        full = 1 << self.g
        stored = full >> 1 if mirrored else full
        folded_planes: List[np.ndarray] = []
        signs: Optional[List[np.ndarray]] = [] if mirrored else None
        for plane in self.weights.index_planes:
            if mirrored:
                half = full >> 1
                negate = plane >= half
                folded = np.where(negate, (full - 1) - plane, plane)
                signs.append(np.where(negate, -1, 1).astype(np.int8))
                folded_planes.append(folded.astype(plane.dtype))
            else:
                # Unmirrored: the plane already is the folded index — share
                # it rather than duplicating M*K/g bytes per bit.
                folded_planes.append(plane)
        offsets: Optional[List[np.ndarray]] = None
        if self.out_features * self.num_groups <= _OFFSETS_PRECOMPUTE_MAX:
            col = np.arange(self.num_groups, dtype=np.int32) * stored
            offsets = [
                (col[None, :] + folded).astype(np.int32)
                for folded in folded_planes
            ]
        # Freeze before publication: the tables escape to every executor
        # thread/process, and a writable view would let a kernel bug
        # corrupt results silently instead of raising.
        for arr in folded_planes:
            arr.setflags(write=False)
        for group in (signs, offsets):
            if group is not None:
                for arr in group:
                    arr.setflags(write=False)
        tables = _LookupTables(stored=stored, folded=folded_planes,
                               signs=signs, offsets=offsets)
        self._gather_cache[mirrored] = tables
        return tables

    def specialized(self, key) -> object:
        """The compiled codes-dot kernel for ``key`` (lazily built).

        Thread-safe and single-flight like :meth:`lookup_tables`:
        concurrent executor workers racing on one plan compile each
        distinct :class:`~repro.core.specialize.SpecializationKey`
        exactly once and all receive the same kernel object.
        """
        # Benign double-checked read: dict.get is atomic under the GIL and
        # entries are only ever added (never mutated or removed), so a
        # stale miss just falls through to the locked slow path.
        # repro-lint: disable=lock-guard -- lock-free fast path; misses fall through to the locked build
        cached = self._spec_cache.get(key)
        if cached is not None:
            return cached
        with self._gather_lock:
            return self._build_specialized_locked(key)

    def _build_specialized_locked(self, key) -> object:
        cached = self._spec_cache.get(key)
        if cached is not None:
            return cached
        # Imported lazily: specialize is a leaf module, but keeping the
        # import out of module scope lets plan.py load without it in
        # pickling-restricted worker contexts.
        from repro.core.specialize import compile_specialized

        # Build the gather tables with the lock already held (re-entering
        # lookup_tables() here would self-deadlock on the non-reentrant
        # plan lock).
        tables = self._build_lookup_tables_locked(key.mirrored)
        kernel = compile_specialized(self, key, tables)
        self._spec_cache[key] = kernel
        return kernel

    def compatible_with(self, config: TMACConfig) -> bool:
        """Whether this plan can execute under ``config``.

        A config with no tile preference (``tile_config is None``) accepts
        the plan's tiling; an explicit tile request must match the tiles
        the weights were actually laid out with.
        """
        config_tile = config.tile_config or self.weights.tile_config
        return _layout_key(config, config_tile) == _layout_key(
            self.config, self.weights.tile_config
        )

    def output_tiles(self, num_tiles: int) -> List[Tuple[int, int]]:
        """Partition the output (M) axis into at most ``num_tiles`` spans.

        Shard boundaries are aligned to the layout tile ``m_tm`` the
        weights were packed with, so a shard always covers whole weight
        tiles (the unit the offline permutation/interleaving laid out
        contiguously), and the spans are balanced to within one tile.
        Returns ``[(m0, m1), ...]`` covering ``[0, M)`` exactly, in order;
        fewer than ``num_tiles`` spans when M holds fewer layout tiles.

        This is plan-side geometry: executors must not invent their own
        boundaries, because only tile-aligned spans keep every shard's
        memory walk identical to the serial executor's walk over the same
        columns.
        """
        if num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {num_tiles}")
        m = self.out_features
        align = min(self.weights.tile_config.m_tm, m)
        units = -(-m // align)  # whole layout tiles along M (ceil)
        shards = min(num_tiles, units)
        base, extra = divmod(units, shards)
        spans: List[Tuple[int, int]] = []
        unit0 = 0
        for i in range(shards):
            take = base + (1 if i < extra else 0)
            unit1 = unit0 + take
            spans.append((unit0 * align, min(unit1 * align, m)))
            unit0 = unit1
        return spans


def build_plan(
    qweight: QuantizedWeight,
    config: Optional[TMACConfig] = None,
    tile_config: Optional[TileConfig] = None,
) -> KernelPlan:
    """Run the offline stage: preprocess the weights into a reusable plan."""
    cfg = config or TMACConfig(bits=qweight.bits)
    if cfg.bits != qweight.bits:
        raise ValueError(f"config.bits={cfg.bits} != qweight.bits={qweight.bits}")
    transform = BitSerialTransform(cfg.s0, cfg.s1)
    weights = preprocess_weights(qweight, cfg, tile_config)
    return KernelPlan(
        config=cfg,
        weights=weights,
        transform=transform,
        fingerprint=weight_fingerprint(qweight),
    )


def _layout_key(
    config: TMACConfig, tile_config: Optional[TileConfig]
) -> Tuple:
    """The config fields that change the offline artifacts.

    The tile is normalized through the same
    :func:`~repro.core.weights.resolve_tile_config` preprocessing uses, so
    an implicit (``None``) and an explicit default tile produce the same
    key instead of duplicating plans.
    """
    tile = resolve_tile_config(config, tile_config)
    tile_key = (tile.m_tm, tile.k_tk)
    return (
        config.bits,
        config.g,
        config.s0,
        config.s1,
        config.permute_weights,
        config.interleave_weights,
        tile_key,
    )


class PlanCache:
    """Process-wide memoization of :class:`KernelPlan` objects.

    Keys are ``(weight fingerprint, layout-relevant config fields, tile)``.
    The cache is bounded (LRU eviction) so long-running serving processes
    cannot grow without limit, and thread-safe because the serving engine
    admits requests from arbitrary callers.  Concurrent ``get`` calls for
    one key are *single-flight*: exactly one caller runs the (expensive)
    offline preprocessing while the others wait and receive the same plan
    object — the parallel executor's worker pool must never trigger
    duplicate builds of one layer's weights.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._plans: "Dict[Tuple, KernelPlan]" = {}
        self._order: List[Tuple] = []
        #: key -> Event set when the in-flight build for that key lands.
        self._building: "Dict[Tuple, threading.Event]" = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        qweight: QuantizedWeight,
        config: Optional[TMACConfig] = None,
        tile_config: Optional[TileConfig] = None,
    ) -> KernelPlan:
        """Return the cached plan for these weights, building it on a miss."""
        cfg = config or TMACConfig(bits=qweight.bits)
        fingerprint = weight_fingerprint(qweight)
        key = (fingerprint, _layout_key(cfg, tile_config))
        while True:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self.hits += 1
                    self._order.remove(key)
                    self._order.append(key)
                    return plan
                pending = self._building.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._building[key] = pending
                    self.misses += 1
                    break
            # Another thread is building this exact plan: wait for it and
            # re-check (a follower counts as a hit — it paid no build).
            pending.wait()
        # Build outside the lock: preprocessing can be expensive and plans
        # for distinct keys are independent.
        try:
            plan = build_plan(qweight, cfg, tile_config)
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            pending.set()  # wake followers; one of them retries the build
            raise
        with self._lock:
            self._plans[key] = plan
            self._order.append(key)
            while len(self._order) > self.max_entries:
                evicted = self._order.pop(0)
                self._plans.pop(evicted, None)
            self._building.pop(key, None)
        pending.set()
        return plan

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (reported by the serving benchmark)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._plans),
            }

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._order.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: The process-wide plan cache used by the functional GEMM API, the T-MAC
#: backend and the serving engine.
PLAN_CACHE = PlanCache()


def get_plan(
    qweight: QuantizedWeight,
    config: Optional[TMACConfig] = None,
    tile_config: Optional[TileConfig] = None,
) -> KernelPlan:
    """Fetch (or build and cache) the plan for a quantized weight matrix."""
    return PLAN_CACHE.get(qweight, config, tile_config)


def clear_plan_cache() -> None:
    """Reset the process-wide plan cache (used by tests and benchmarks)."""
    PLAN_CACHE.clear()


def plan_cache_stats() -> Dict[str, int]:
    """Counters of the process-wide plan cache."""
    return PLAN_CACHE.stats()
