"""Aggregation of looked-up partial results.

After the table lookups, T-MAC must *sum* the per-group partial results
along the reduction axis.  Two strategies are modeled, matching Section 4:

* **Exact aggregation** — lookup results are widened (int8 -> int16/int32 or
  fp16/fp32) before summation.  Lossless, but widening halves the SIMD
  throughput.
* **Fast 8-bit aggregation** — when the table is quantized to int8, pairs of
  values are combined with the rounding-average instruction
  (``vrhaddq_u8`` on NEON / ``_mm256_avg_epu8`` on AVX2) in a binary tree.
  The averages stay in 8 bits, so the tree runs at full int8 throughput; the
  sum is recovered by multiplying the final average by the element count and
  subtracting the *probabilistic bias* of the round-to-up averages.  The
  residual rounding noise is the accuracy cost the paper quantifies
  (Table 3: ~2.5x NMSE; Table 4: +0.4 perplexity).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "exact_aggregate",
    "fast_aggregate",
    "rhadd",
    "fast_aggregation_bias",
]


def exact_aggregate(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum partial results along ``axis`` in a wide accumulator (float64)."""
    return np.asarray(values, dtype=np.float64).sum(axis=axis)


def rhadd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rounding halving add: ``(a + b + 1) >> 1`` element-wise, like NEON ``vrhadd``.

    The computation is done in a wide integer type so that the intermediate
    ``a + b + 1`` cannot overflow, then floor-divided by two — exactly the
    semantics of the hardware instruction for any lane width.
    """
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64) + 1
    return wide >> 1


def fast_aggregation_bias(count: int) -> float:
    """Expected cumulative bias of a ``count``-leaf rounding-average tree.

    Each ``rhadd`` rounds up by 0.5 with probability ~1/2, adding an expected
    +0.25 to the running average at every tree level; with
    ``L = ceil(log2(count))`` levels the expected bias of the final average
    is ``0.25 * L``.  The paper's fast aggregation subtracts this
    probabilistic bias from the recovered sum.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count == 1:
        return 0.0
    levels = int(np.ceil(np.log2(count)))
    return 0.25 * levels


def fast_aggregate(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sum int8-domain values along ``axis`` using a rounding-average tree.

    The input is treated as integer lookup results (already quantized).  The
    values along ``axis`` are reduced pairwise with :func:`rhadd`; the final
    average is scaled back to a sum estimate and corrected by the expected
    rounding bias.  The result is a float64 array with the reduced axis
    removed.

    The estimate is *not* exact — that is the point: the residual error of
    this function is the error source (b) analyzed in Section 5.6.
    """
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        arr = np.rint(arr).astype(np.int64)
    arr = np.moveaxis(arr, axis, -1).astype(np.int64)
    count = arr.shape[-1]
    if count == 0:
        raise ValueError("cannot aggregate an empty axis")
    if count == 1:
        return arr[..., 0].astype(np.float64)

    # Pad to a power of two with the mean value so padding is bias-neutral
    # (hardware pads with zeros inside a lane that is later masked; using the
    # rounded mean keeps the tree balanced without skewing the estimate).
    size = 1 << int(np.ceil(np.log2(count)))
    if size != count:
        pad_value = np.rint(arr.mean(axis=-1, keepdims=True)).astype(np.int64)
        pad = np.broadcast_to(pad_value, arr.shape[:-1] + (size - count,))
        arr = np.concatenate([arr, pad], axis=-1)

    work = arr
    while work.shape[-1] > 1:
        work = rhadd(work[..., 0::2], work[..., 1::2])

    average = work[..., 0].astype(np.float64) - fast_aggregation_bias(size)
    # The tree averaged `size` values whose synthetic mean-padding leaves the
    # average of the real values unchanged; the sum of the real values is
    # therefore the (bias-corrected) average times the real element count.
    return average * count
