"""T-MAC core: LUT-based mixed-precision GEMM.

This subpackage is the paper's primary contribution.  The typical flow is

* offline: :func:`repro.core.weights.preprocess_weights` — bit-plane
  decomposition, grouping, packing, tile permutation, interleaving;
* online: :class:`repro.core.kernel.TMACKernel` — table precomputation
  (:mod:`repro.core.lut`), lookups and aggregation
  (:mod:`repro.core.aggregation`), bit-serial recombination
  (:mod:`repro.core.bitserial`).

:mod:`repro.core.tiling` holds the LUT-centric layout math (register
footprints, working sets) consumed by the SIMD and cost models, and
:mod:`repro.core.config` the feature flags used for the ablation study.
"""

from repro.core.aggregation import exact_aggregate, fast_aggregate
from repro.core.bitserial import BitSerialTransform, compose_bits, decompose_bits
from repro.core.config import GatewayConfig, TMACConfig, ablation_stages
from repro.core.executor import (
    KernelExecutor,
    LoopExecutor,
    VectorizedExecutor,
    get_executor,
    list_executors,
)
from repro.core.gemm import tmac_gemm, tmac_gemv
from repro.core.kernel import TMACKernel
from repro.core.lut import LookupTable, build_lut, lookup, precompute_lut
from repro.core.plan import (
    KernelPlan,
    build_plan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
    weight_fingerprint,
)
from repro.core.tiling import TileConfig, default_tile_config
from repro.core.weights import PreprocessedWeights, preprocess_weights

__all__ = [
    "TMACConfig",
    "GatewayConfig",
    "TMACKernel",
    "KernelPlan",
    "KernelExecutor",
    "LoopExecutor",
    "VectorizedExecutor",
    "build_plan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_stats",
    "weight_fingerprint",
    "get_executor",
    "list_executors",
    "TileConfig",
    "LookupTable",
    "PreprocessedWeights",
    "BitSerialTransform",
    "ablation_stages",
    "build_lut",
    "precompute_lut",
    "lookup",
    "preprocess_weights",
    "default_tile_config",
    "decompose_bits",
    "compose_bits",
    "exact_aggregate",
    "fast_aggregate",
    "tmac_gemm",
    "tmac_gemv",
]
