"""Online executors for T-MAC kernel plans (Algorithm 1, online stage).

An executor consumes a :class:`~repro.core.plan.KernelPlan` (the offline
stage) plus a precomputed :class:`~repro.core.lut.LookupTable` and produces
the mpGEMM result.  Two executors implement the same mathematics:

* :class:`LoopExecutor` — the reference implementation: explicit Python
  loops over weight-quantization groups and bit planes, mirroring the tile
  walk of Algorithm 1 line by line.  Slow, obviously correct, kept as the
  numerical oracle.
* :class:`VectorizedExecutor` — the production implementation: one batched
  numpy gather per bit plane covering whole spans of quantization groups at
  once (chunked so peak memory stays bounded), aggregation reshaped to
  ``[N, M, QG, gpq]`` and reduced in a single operation.  It additionally
  uses the plan's precomputed folded indices and mirror signs, so the
  online cost is dominated by the gathers themselves — the numpy analogue
  of the paper's ``TBL``-bound inner loop.

Both executors run the same elementwise float operations in the same order,
so their results are *bit-identical* (asserted in the unit tests across
bits, group sizes and aggregation modes).  The executor is selected per
kernel via ``TMACConfig.executor``.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.core.aggregation import exact_aggregate, fast_aggregate
from repro.core.config import TMACConfig
from repro.core.lut import LookupTable, lookup
from repro.core.plan import KernelPlan

__all__ = [
    "KernelExecutor",
    "LoopExecutor",
    "VectorizedExecutor",
    "get_executor",
    "list_executors",
]


class KernelExecutor:
    """Base class: lookup + aggregate + bit-serial recombination."""

    name = "base"

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        """``A @ codes^T`` streamed per span of quantization groups.

        Yields ``(qg0, qg1, chunk)`` with ``chunk`` a ``[N, M, qg1-qg0]``
        float64 array: the integer-code dot product resolved per weight
        quantization group (scales/zeros not yet applied).  Streaming keeps
        peak memory at one span — the consumer folds each chunk into its
        ``[N, M]`` accumulator immediately, like the original kernel did.
        """
        raise NotImplementedError

    def codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ) -> np.ndarray:
        """Materialized ``[N, M, QG]`` codes-dot (tests / ``matmul_codes``).

        Prefer :meth:`iter_codes_dot` in execution paths — this helper
        holds every quantization group at once.
        """
        n = group_sums.shape[0]
        out = np.empty(
            (n, plan.out_features, plan.num_qgroups), dtype=np.float64
        )
        for qg0, qg1, chunk in self.iter_codes_dot(plan, table, config,
                                                   group_sums):
            out[:, :, qg0:qg1] = chunk
        return out

    def matmul_with_table(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        activation: np.ndarray,
    ) -> np.ndarray:
        """Full mpGEMM ``[N, K] x [M, K]^T -> [N, M]`` float32.

        The scale/zero recombination walks the quantization groups in order
        with the exact float-op sequence of the original kernel, so both
        executors produce bit-identical results whenever their codes-dot
        chunks agree bitwise (which they do — the vectorized path performs
        the same elementwise operations, just batched).  Each streamed
        chunk is folded into the ``[N, M]`` accumulator immediately, so
        peak memory matches the seed kernel's running accumulation instead
        of growing with the number of quantization groups.
        """
        n = activation.shape[0]
        group_sums = activation.reshape(n, plan.num_qgroups, -1).sum(axis=2)
        scales = plan.weights.scales  # [M, QG]
        zeros = plan.weights.zeros  # [M, QG]
        out = np.zeros((n, plan.out_features), dtype=np.float64)
        for qg0, qg1, chunk in self.iter_codes_dot(plan, table, config,
                                                   group_sums):
            for qg in range(qg0, qg1):
                scale_col = scales[:, qg][None, :]  # [1, M]
                zero_col = zeros[:, qg][None, :]  # [1, M]
                out += scale_col * chunk[:, :, qg - qg0]
                out -= (scale_col * zero_col) * group_sums[:, qg][:, None]
        return out.astype(np.float32)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LoopExecutor(KernelExecutor):
    """Reference executor: per-quantization-group / per-bit Python loops.

    This is the seed implementation of the kernel, preserved verbatim as the
    numerical oracle the vectorized path is tested against.
    """

    name = "loop"

    def _block_partial(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        bit: int,
        qg: int,
    ) -> np.ndarray:
        """Looked-up and aggregated partial result of one bit plane over one
        weight-quantization group.  Returns ``[N, M]`` float64."""
        gpq = plan.groups_per_qgroup
        j0 = qg * gpq
        jslice = slice(j0, j0 + gpq)
        indices = plan.weights.index_planes[bit][:, jslice]
        raw = lookup(table, indices, group_slice=jslice)  # [N, M, gpq]

        if not table.quantized:
            return exact_aggregate(raw, axis=-1)

        if table.scale_block == 1:
            # Fine granularity: each group has its own scale; rescale before
            # the (float) accumulation.
            scales = table.scales[:, jslice]  # [N, gpq]
            return exact_aggregate(raw * scales[:, None, :], axis=-1)

        # Group granularity: one scale per quantization block -> aggregate in
        # the integer domain (exactly or with the lossy rhadd tree), then
        # rescale once.
        if config.fast_aggregation:
            aggregated = fast_aggregate(raw, axis=-1)
        else:
            aggregated = exact_aggregate(raw, axis=-1)
        block_scale = table.scales[:, qg]  # [N]
        return aggregated * block_scale[:, None]

    def _codes_dot_block(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        qg: int,
        group_sum: np.ndarray,
    ) -> np.ndarray:
        """``A_block @ codes_block^T`` for one quantization group, [N, M]."""
        alpha = plan.transform.alpha
        beta = plan.transform.beta
        codes_dot = np.zeros(
            (table.num_rows, plan.out_features), dtype=np.float64
        )
        for bit in range(plan.bits):
            partial = self._block_partial(plan, table, config, bit, qg)
            codes_dot += float(1 << bit) * (
                alpha * partial + beta * group_sum[:, None]
            )
        return codes_dot

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        for qg in range(plan.num_qgroups):
            block = self._codes_dot_block(
                plan, table, config, qg, group_sums[:, qg]
            )
            yield qg, qg + 1, block[:, :, None]


class VectorizedExecutor(KernelExecutor):
    """Batched executor: one gather per bit-plane chunk, no per-group loops.

    For each bit plane the ``[N, M, K/g]`` lookup is performed with large
    fancy-index gathers using the plan's precomputed folded indices; the
    result is reshaped to ``[N, M, QG, gpq]`` and aggregated along the last
    axis for every covered quantization group simultaneously.  Only the (at
    most 8) bit planes and the memory-bounding chunk walk remain as Python
    loops — in the decode regime (small N) a whole bit plane is one chunk.
    """

    name = "vectorized"

    #: Upper bound on the elements of one raw-lookup temporary
    #: (``N * M * chunk_groups`` float64).  Decode-regime calls (small N)
    #: fit in one chunk; prefill-style mpGEMM over large N is processed in
    #: quantization-group chunks so peak memory stays bounded instead of
    #: materializing the full ``[N, M, K/g]`` gather at once.
    max_gather_elements = 1 << 24

    def _raw_chunk(
        self,
        plan: KernelPlan,
        table: LookupTable,
        bit: int,
        j0: int,
        j1: int,
    ) -> np.ndarray:
        """Lookup of one bit plane over groups ``[j0, j1)``: ``[N, M, j1-j0]``."""
        tables = plan.lookup_tables(table.mirrored)
        n = table.num_rows
        flat = table.values.reshape(n, -1)
        if tables.offsets is not None:
            offsets = tables.offsets[bit][:, j0:j1]
        else:
            # Very large weights: the plan skips offset precomputation;
            # derive the chunk's offsets from the folded indices on the fly.
            offsets = (
                np.arange(j0, j1, dtype=np.int64)[None, :] * tables.stored
                + tables.folded[bit][:, j0:j1]
            )
        raw = flat[:, offsets.reshape(-1)].astype(np.float64)
        raw = raw.reshape(n, plan.out_features, j1 - j0)
        if tables.signs is not None:
            raw *= tables.signs[bit][None, :, j0:j1]
        return raw

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        n = table.num_rows
        m = plan.out_features
        qgroups = plan.num_qgroups
        gpq = plan.groups_per_qgroup
        alpha = plan.transform.alpha
        beta = plan.transform.beta

        # Chunk along the quantization-group axis (aggregation blocks stay
        # intact) so one raw temporary never exceeds the element budget.
        per_qgroup = n * m * gpq
        qg_chunk = max(1, min(qgroups, self.max_gather_elements // max(1, per_qgroup)))

        for qg0 in range(0, qgroups, qg_chunk):
            qg1 = min(qg0 + qg_chunk, qgroups)
            chunk = np.zeros((n, m, qg1 - qg0), dtype=np.float64)
            for bit in range(plan.bits):
                raw = self._raw_chunk(plan, table, bit, qg0 * gpq, qg1 * gpq)
                blocked = raw.reshape(n, m, qg1 - qg0, gpq)

                if not table.quantized:
                    partial = blocked.sum(axis=-1)
                elif table.scale_block == 1:
                    # Fine granularity: per-group scales applied before the
                    # float accumulation, all chunk groups at once.
                    scales = table.scales[:, qg0 * gpq:qg1 * gpq].reshape(
                        n, 1, qg1 - qg0, gpq
                    )
                    partial = (blocked * scales).sum(axis=-1)
                else:
                    # Group granularity: integer-domain aggregation (exact
                    # sum or the lossy rhadd tree), then one scale per block.
                    if config.fast_aggregation:
                        aggregated = fast_aggregate(blocked, axis=-1)
                    else:
                        aggregated = blocked.sum(axis=-1)
                    partial = aggregated * table.scales[:, None, qg0:qg1]

                chunk += float(1 << bit) * (
                    alpha * partial + beta * group_sums[:, None, qg0:qg1]
                )
            yield qg0, qg1, chunk


_EXECUTORS: Dict[str, Type[KernelExecutor]] = {
    LoopExecutor.name: LoopExecutor,
    VectorizedExecutor.name: VectorizedExecutor,
}


def get_executor(name: str) -> KernelExecutor:
    """Instantiate an executor by name (``"vectorized"`` or ``"loop"``)."""
    try:
        return _EXECUTORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; known: {sorted(_EXECUTORS)}"
        ) from None


def list_executors() -> list:
    """Names of the available executors."""
    return sorted(_EXECUTORS)
