"""Online executors for T-MAC kernel plans (Algorithm 1, online stage).

An executor consumes a :class:`~repro.core.plan.KernelPlan` (the offline
stage) plus a precomputed :class:`~repro.core.lut.LookupTable` and produces
the mpGEMM result.  Two executors implement the same mathematics:

* :class:`LoopExecutor` — the reference implementation: explicit Python
  loops over weight-quantization groups and bit planes, mirroring the tile
  walk of Algorithm 1 line by line.  Slow, obviously correct, kept as the
  numerical oracle.
* :class:`VectorizedExecutor` — the production implementation: one batched
  numpy gather per bit plane covering whole spans of quantization groups at
  once (chunked so peak memory stays bounded), aggregation reshaped to
  ``[N, M, QG, gpq]`` and reduced in a single operation.  It additionally
  uses the plan's precomputed folded indices and mirror signs, so the
  online cost is dominated by the gathers themselves — the numpy analogue
  of the paper's ``TBL``-bound inner loop.
* :class:`ParallelExecutor` — the multi-core implementation: the vectorized
  executor's output columns are sharded into contiguous spans aligned to
  the plan's ``m_tm`` layout tile (:meth:`KernelPlan.output_tiles`) and
  executed on a persistent worker thread pool.  Every worker consumes the
  *same* per-call lookup table (it is read-only after precompute) and owns
  a disjoint output span, so there is no cross-tile accumulation and the
  per-element float-op sequence is exactly the serial vectorized one —
  results are bit-identical at any thread count.  Calls whose gather work
  falls below ``TMACConfig.parallel_threshold`` fall back to the serial
  path, so tiny decode-regime kernels never pay fork/join overhead.
* :class:`ProcessExecutor` — the GIL-free implementation: the same
  tile-aligned output shards, executed by a persistent pool of worker
  *processes* (:mod:`repro.core.shm`).  Plan artifacts are published once
  into shared-memory segments keyed by the plan's content address; per
  call only the activation lookup table crosses the process boundary,
  through a reusable scratch arena.  Workers run the identical span
  pipeline over identical bytes with the same chunk budget, so results
  stay bit-identical at any worker count.  Small shapes fall back to the
  serial path, and auto-sized calls may delegate to the thread pool when
  the cost model's IPC-overhead term says threads win.

All executors run the same elementwise float operations in the same order,
so their results are *bit-identical* (asserted in the unit tests across
bits, group sizes, aggregation modes and thread/worker counts).  The
executor is selected per kernel via ``TMACConfig.executor``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Type

import numpy as np

from repro.analysis.sanitizer import plan_canary
from repro.core.aggregation import exact_aggregate, fast_aggregate
from repro.core.config import TMACConfig
from repro.core.lut import LookupTable, lookup
from repro.core.plan import KernelPlan
from repro.core.shm import ExecutorWorkerError
from repro.core.specialize import (
    _StatsBlock,
    maybe_specialized,
    reset_specialize_stats,
    specialize_stats,
)

__all__ = [
    "KernelExecutor",
    "LoopExecutor",
    "VectorizedExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "ExecutorWorkerError",
    "get_executor",
    "list_executors",
    "get_worker_pool",
    "shutdown_worker_pools",
    "parallel_executor_stats",
    "reset_parallel_executor_stats",
    "process_executor_stats",
    "reset_process_executor_stats",
    "specialize_stats",
    "reset_specialize_stats",
]


class KernelExecutor:
    """Base class: lookup + aggregate + bit-serial recombination."""

    name = "base"

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        """``A @ codes^T`` streamed per span of quantization groups.

        Yields ``(qg0, qg1, chunk)`` with ``chunk`` a ``[N, M, qg1-qg0]``
        float64 array: the integer-code dot product resolved per weight
        quantization group (scales/zeros not yet applied).  Streaming keeps
        peak memory at one span — the consumer folds each chunk into its
        ``[N, M]`` accumulator immediately, like the original kernel did.
        """
        raise NotImplementedError

    def codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ) -> np.ndarray:
        """Materialized ``[N, M, QG]`` codes-dot (tests / ``matmul_codes``).

        Prefer :meth:`iter_codes_dot` in execution paths — this helper
        holds every quantization group at once.
        """
        n = group_sums.shape[0]
        out = np.empty(
            (n, plan.out_features, plan.num_qgroups), dtype=np.float64
        )
        for qg0, qg1, chunk in self.iter_codes_dot(plan, table, config,
                                                   group_sums):
            out[:, :, qg0:qg1] = chunk
        return out

    def iter_codes_dot_span(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
        m0: int,
        m1: int,
        max_elements: int = 0,
    ):
        """Like :meth:`iter_codes_dot`, restricted to output columns
        ``[m0, m1)`` (chunks are ``[N, m1-m0, qg1-qg0]``).

        The base implementation only supports the full span; executors that
        can shard the output axis (the vectorized family) override this.
        """
        if (m0, m1) != (0, plan.out_features):
            raise NotImplementedError(
                f"{type(self).__name__} cannot restrict the output span"
            )
        yield from self.iter_codes_dot(plan, table, config, group_sums)

    def _recombine_span(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
        m0: int,
        m1: int,
        max_elements: int = 0,
    ) -> np.ndarray:
        """Scale/zero recombination over output columns ``[m0, m1)``.

        Walks the quantization groups in order with the exact float-op
        sequence of the original kernel; every operation is elementwise
        along the output axis, so computing a column span in isolation
        produces bit-identical values to slicing a full-width result —
        the property the parallel executor's sharding relies on.
        ``max_elements`` bounds this span's raw-gather temporary (0 uses
        the executor default); chunk boundaries never change results.
        """
        n = group_sums.shape[0]
        scales = plan.weights.scales  # [M, QG]
        zeros = plan.weights.zeros  # [M, QG]
        out = np.zeros((n, m1 - m0), dtype=np.float64)
        for qg0, qg1, chunk in self.iter_codes_dot_span(
            plan, table, config, group_sums, m0, m1, max_elements
        ):
            for qg in range(qg0, qg1):
                scale_col = scales[m0:m1, qg][None, :]  # [1, span]
                zero_col = zeros[m0:m1, qg][None, :]  # [1, span]
                out += scale_col * chunk[:, :, qg - qg0]
                out -= (scale_col * zero_col) * group_sums[:, qg][:, None]
        return out

    def matmul_with_table(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        activation: np.ndarray,
    ) -> np.ndarray:
        """Full mpGEMM ``[N, K] x [M, K]^T -> [N, M]`` float32.

        The scale/zero recombination walks the quantization groups in order
        with the exact float-op sequence of the original kernel, so all
        executors produce bit-identical results whenever their codes-dot
        chunks agree bitwise (which they do — the vectorized path performs
        the same elementwise operations, just batched).  Each streamed
        chunk is folded into the ``[N, M]`` accumulator immediately, so
        peak memory matches the seed kernel's running accumulation instead
        of growing with the number of quantization groups.
        """
        n = activation.shape[0]
        group_sums = activation.reshape(n, plan.num_qgroups, -1).sum(axis=2)
        with plan_canary(plan):
            out = self._recombine_span(plan, table, config, group_sums,
                                       0, plan.out_features)
        return out.astype(np.float32)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LoopExecutor(KernelExecutor):
    """Reference executor: per-quantization-group / per-bit Python loops.

    This is the seed implementation of the kernel, preserved verbatim as the
    numerical oracle the vectorized path is tested against.
    """

    name = "loop"

    def _block_partial(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        bit: int,
        qg: int,
    ) -> np.ndarray:
        """Looked-up and aggregated partial result of one bit plane over one
        weight-quantization group.  Returns ``[N, M]`` float64."""
        gpq = plan.groups_per_qgroup
        j0 = qg * gpq
        jslice = slice(j0, j0 + gpq)
        indices = plan.weights.index_planes[bit][:, jslice]
        raw = lookup(table, indices, group_slice=jslice)  # [N, M, gpq]

        if not table.quantized:
            return exact_aggregate(raw, axis=-1)

        if table.scale_block == 1:
            # Fine granularity: each group has its own scale; rescale before
            # the (float) accumulation.
            scales = table.scales[:, jslice]  # [N, gpq]
            return exact_aggregate(raw * scales[:, None, :], axis=-1)

        # Group granularity: one scale per quantization block -> aggregate in
        # the integer domain (exactly or with the lossy rhadd tree), then
        # rescale once.
        if config.fast_aggregation:
            aggregated = fast_aggregate(raw, axis=-1)
        else:
            aggregated = exact_aggregate(raw, axis=-1)
        block_scale = table.scales[:, qg]  # [N]
        return aggregated * block_scale[:, None]

    def _codes_dot_block(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        qg: int,
        group_sum: np.ndarray,
    ) -> np.ndarray:
        """``A_block @ codes_block^T`` for one quantization group, [N, M]."""
        alpha = plan.transform.alpha
        beta = plan.transform.beta
        codes_dot = np.zeros(
            (table.num_rows, plan.out_features), dtype=np.float64
        )
        for bit in range(plan.bits):
            partial = self._block_partial(plan, table, config, bit, qg)
            codes_dot += float(1 << bit) * (
                alpha * partial + beta * group_sum[:, None]
            )
        return codes_dot

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        for qg in range(plan.num_qgroups):
            block = self._codes_dot_block(
                plan, table, config, qg, group_sums[:, qg]
            )
            yield qg, qg + 1, block[:, :, None]


class VectorizedExecutor(KernelExecutor):
    """Batched executor: one gather per bit-plane chunk, no per-group loops.

    For each bit plane the ``[N, M, K/g]`` lookup is performed with large
    fancy-index gathers using the plan's precomputed folded indices; the
    result is reshaped to ``[N, M, QG, gpq]`` and aggregated along the last
    axis for every covered quantization group simultaneously.  Only the (at
    most 8) bit planes and the memory-bounding chunk walk remain as Python
    loops — in the decode regime (small N) a whole bit plane is one chunk.
    """

    name = "vectorized"

    #: Upper bound on the elements of one raw-lookup temporary
    #: (``N * M * chunk_groups`` float64).  Decode-regime calls (small N)
    #: fit in one chunk; prefill-style mpGEMM over large N is processed in
    #: quantization-group chunks so peak memory stays bounded instead of
    #: materializing the full ``[N, M, K/g]`` gather at once.
    max_gather_elements = 1 << 24

    def gather_budget(self, config: TMACConfig) -> int:
        """Raw-gather element budget per chunk for this call.

        ``TMACConfig.chunk_elements`` overrides the class default (a
        memory/locality knob for the tuner); chunk boundaries never change
        results.
        """
        override = getattr(config, "chunk_elements", None)
        return override or self.max_gather_elements

    def _raw_chunk(
        self,
        tables,
        table: LookupTable,
        bit: int,
        j0: int,
        j1: int,
        m0: int,
        m1: int,
    ) -> np.ndarray:
        """Lookup of one bit plane over groups ``[j0, j1)`` restricted to
        output columns ``[m0, m1)``: ``[N, m1-m0, j1-j0]``.

        ``tables`` is the plan's gather metadata for ``table.mirrored``,
        looked up once per call in :meth:`iter_codes_dot_span` instead of
        once per bit plane per chunk here.
        """
        n = table.num_rows
        flat = table.values.reshape(n, -1)
        if tables.offsets is not None:
            offsets = tables.offsets[bit][m0:m1, j0:j1]
        else:
            # Very large weights: the plan skips offset precomputation;
            # derive the chunk's offsets from the folded indices on the fly.
            offsets = (
                np.arange(j0, j1, dtype=np.int64)[None, :] * tables.stored
                + tables.folded[bit][m0:m1, j0:j1]
            )
        raw = flat[:, offsets.reshape(-1)].astype(np.float64)
        raw = raw.reshape(n, m1 - m0, j1 - j0)
        if tables.signs is not None:
            raw *= tables.signs[bit][None, m0:m1, j0:j1]
        return raw

    def iter_codes_dot(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
    ):
        yield from self.iter_codes_dot_span(plan, table, config, group_sums,
                                            0, plan.out_features)

    def iter_codes_dot_span(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
        m0: int,
        m1: int,
        max_elements: int = 0,
    ):
        """Codes-dot chunks over output columns ``[m0, m1)``.

        All operations below are elementwise along the output axis (the
        gathers, sign flips, per-group aggregations and scale applications
        never mix output columns), so a restricted span yields bitwise the
        columns a full-width run would — regardless of how the chunk walk
        divides the quantization groups.

        When the config enables specialization (the default), the span is
        delegated to the plan's compiled kernel — bit-identical to the
        generic walk below, which remains both the fallback
        (``specialize=False``) and the reference the specialized kernels
        are tested against.
        """
        spec = maybe_specialized(plan, table, config)
        if spec is not None:
            yield from spec.iter_span(
                table, group_sums, m0, m1,
                max_elements or self.gather_budget(config))
            return

        tables = plan.lookup_tables(table.mirrored)
        n = table.num_rows
        m = m1 - m0
        qgroups = plan.num_qgroups
        gpq = plan.groups_per_qgroup
        alpha = plan.transform.alpha
        beta = plan.transform.beta

        # Chunk along the quantization-group axis (aggregation blocks stay
        # intact) so one raw temporary never exceeds the element budget —
        # per *call*: the parallel executor passes a per-shard budget so
        # its concurrent spans together still respect the default bound.
        budget = max_elements or self.gather_budget(config)
        per_qgroup = n * m * gpq
        qg_chunk = max(1, min(qgroups, budget // max(1, per_qgroup)))

        for qg0 in range(0, qgroups, qg_chunk):
            qg1 = min(qg0 + qg_chunk, qgroups)
            chunk = np.zeros((n, m, qg1 - qg0), dtype=np.float64)
            for bit in range(plan.bits):
                raw = self._raw_chunk(tables, table, bit, qg0 * gpq,
                                      qg1 * gpq, m0, m1)
                blocked = raw.reshape(n, m, qg1 - qg0, gpq)

                if not table.quantized:
                    partial = blocked.sum(axis=-1)
                elif table.scale_block == 1:
                    # Fine granularity: per-group scales applied before the
                    # float accumulation, all chunk groups at once.
                    scales = table.scales[:, qg0 * gpq:qg1 * gpq].reshape(
                        n, 1, qg1 - qg0, gpq
                    )
                    partial = (blocked * scales).sum(axis=-1)
                else:
                    # Group granularity: integer-domain aggregation (exact
                    # sum or the lossy rhadd tree), then one scale per block.
                    if config.fast_aggregation:
                        aggregated = fast_aggregate(blocked, axis=-1)
                    else:
                        aggregated = blocked.sum(axis=-1)
                    partial = aggregated * table.scales[:, None, qg0:qg1]

                chunk += float(1 << bit) * (
                    alpha * partial + beta * group_sums[:, None, qg0:qg1]
                )
            yield qg0, qg1, chunk

    def _recombine_span(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        group_sums: np.ndarray,
        m0: int,
        m1: int,
        max_elements: int = 0,
    ) -> np.ndarray:
        spec = maybe_specialized(plan, table, config)
        if spec is not None:
            return spec.recombine_span(
                table, group_sums, m0, m1,
                max_elements or self.gather_budget(config))
        return super()._recombine_span(plan, table, config, group_sums,
                                       m0, m1, max_elements)


# --------------------------------------------------------------------- #
# Persistent worker pools (shared by every parallel kernel call)
# --------------------------------------------------------------------- #

_POOLS_LOCK = threading.Lock()
_WORKER_POOLS: Dict[int, ThreadPoolExecutor] = {}


def get_worker_pool(num_threads: int) -> ThreadPoolExecutor:
    """The process-wide worker pool for ``num_threads`` workers.

    Pools are created lazily and kept for the life of the process (thread
    startup costs far more than an mpGEMM shard), so every kernel, every
    layer and every serving step sharing a thread count also shares one
    pool.  numpy releases the GIL inside the gather/reduce kernels the
    shards spend their time in, so the workers genuinely overlap on
    multi-core hosts.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    with _POOLS_LOCK:
        pool = _WORKER_POOLS.get(num_threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=num_threads,
                thread_name_prefix=f"repro-mpgemm-{num_threads}",
            )
            _WORKER_POOLS[num_threads] = pool
        return pool


def shutdown_worker_pools() -> None:
    """Tear down every persistent worker pool (tests / embedders)."""
    with _POOLS_LOCK:
        pools = list(_WORKER_POOLS.values())
        _WORKER_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


_PARALLEL_STATS = _StatsBlock((
    "parallel_calls",  # matmuls routed through the parallel executor
    "parallel_sharded_calls",  # calls that actually sharded across workers
    "parallel_serial_fallbacks",  # calls below the work threshold
    "parallel_shards_executed",  # total output-span shards run on workers
))

_PROCESS_STATS = _StatsBlock((
    "process_calls",  # matmuls routed through the process executor
    "process_dispatches",  # calls dispatched to the worker-process pool
    "process_serial_fallbacks",  # calls below the threshold / no shm
    "process_thread_delegations",  # calls the cost model sent to threads
    "process_shards_executed",  # total output-span shards run in workers
    "process_worker_errors",  # calls that raised ExecutorWorkerError
))


def parallel_executor_stats() -> Dict[str, int]:
    """Counters of the process-wide parallel executor (serving stats)."""
    return _PARALLEL_STATS.snapshot()


def reset_parallel_executor_stats() -> None:
    """Zero the parallel-executor counters (tests and benchmarks)."""
    _PARALLEL_STATS.reset()


def process_executor_stats() -> Dict[str, int]:
    """Counters and live gauges of the process-wide process executor.

    The counter block is snapshot under a single lock; the shared-memory
    segment/byte gauges and the worker-restart count are read live from
    the registry and the pools (they are owned there, not here).
    """
    from repro.core import shm

    stats = _PROCESS_STATS.snapshot()
    registry = shm.shm_registry_stats()
    stats["process_shm_segments"] = registry["segments"]
    stats["process_shm_bytes"] = registry["bytes"]
    stats["process_worker_restarts"] = sum(
        pool.restart_count() for pool in shm.iter_process_pools())
    return stats


def reset_process_executor_stats() -> None:
    """Zero the process-executor counters (tests and benchmarks)."""
    from repro.core import shm

    _PROCESS_STATS.reset()
    for pool in shm.iter_process_pools():
        pool.reset_stats()


class ParallelExecutor(VectorizedExecutor):
    """Multi-core executor: output-column shards on a persistent thread pool.

    The output (M) axis is partitioned into at most ``num_threads``
    contiguous spans aligned to the plan's ``m_tm`` layout tile
    (:meth:`KernelPlan.output_tiles`); each shard runs the vectorized
    span pipeline against the *shared* per-call lookup table and writes a
    disjoint slice of the output.  The reduction over K happens entirely
    inside a shard in the serial order, and no accumulator crosses a shard
    boundary, so results are bit-identical to the serial vectorized
    executor at every thread count.

    ``TMACConfig`` knobs:

    * ``num_threads`` — worker count; ``None`` uses ``os.cpu_count()``.
    * ``parallel_threshold`` — minimum gather work (``N * M * K/g``
      elements) before sharding pays; smaller calls (tiny decode-regime
      kernels) take the serial path unchanged.
    """

    name = "parallel"

    def resolve_threads(self, config: TMACConfig) -> int:
        """Worker count for this call (config override or CPU count)."""
        if config.num_threads is not None:
            return max(1, config.num_threads)
        return max(1, os.cpu_count() or 1)

    def matmul_with_table(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        activation: np.ndarray,
    ) -> np.ndarray:
        n = activation.shape[0]
        threads = self.resolve_threads(config)
        work = n * plan.out_features * plan.num_groups
        shards: List = []
        if threads > 1 and work >= config.parallel_threshold:
            shards = plan.output_tiles(threads)
        if len(shards) <= 1:
            _PARALLEL_STATS.add(parallel_calls=1, parallel_serial_fallbacks=1)
            return super().matmul_with_table(plan, table, config, activation)

        # Build the shared gather metadata once, in the calling thread, so
        # workers only ever read it.
        plan.lookup_tables(table.mirrored)
        group_sums = activation.reshape(n, plan.num_qgroups, -1).sum(axis=2)
        out = np.empty((n, plan.out_features), dtype=np.float32)
        # Split the raw-temporary element budget across the concurrent
        # shards so total transient memory matches the serial bound.
        span_budget = max(1, self.gather_budget(config) // len(shards))

        def run_shard(span) -> None:
            m0, m1 = span
            # Assignment into the float32 slice performs the same rounding
            # as the serial path's final ``astype(np.float32)``.
            out[:, m0:m1] = self._recombine_span(
                plan, table, config, group_sums, m0, m1, span_budget
            )

        pool = get_worker_pool(threads)
        with plan_canary(plan):
            futures = [pool.submit(run_shard, span) for span in shards]
            for future in futures:
                future.result()  # propagate the first worker exception
        _PARALLEL_STATS.add(parallel_calls=1, parallel_sharded_calls=1,
                            parallel_shards_executed=len(shards))
        return out


class ProcessExecutor(VectorizedExecutor):
    """GIL-free executor: output-column shards on a worker-*process* pool.

    The sharding geometry is exactly the :class:`ParallelExecutor`'s
    (:meth:`KernelPlan.output_tiles`, tile-aligned, disjoint output spans),
    but the shards execute in separate processes, so the Python glue
    between numpy gathers genuinely overlaps instead of serializing on the
    GIL.  Plan artifacts (weight scales/zeros, folded indices, signs,
    gather offsets) are published once per plan into shared memory by
    :mod:`repro.core.shm`; per call only the activation lookup table, the
    group sums and the output move, all through a reusable scratch arena.
    Workers run the same span pipeline over the same bytes with the same
    chunk budget, so results are bit-identical to the serial vectorized
    executor at any worker count.

    Dispatch policy per call:

    * below ``parallel_threshold`` (or with shared memory unavailable) —
      the serial vectorized path, like the thread executor;
    * ``num_workers=None`` (auto) — the cost model's IPC-aware
      :func:`~repro.hardware.cost_model.pool_dispatch_choice` may route
      the shape to the thread pool when the per-call arena traffic would
      eat the GIL-free win;
    * an explicit ``num_workers`` pins the call to the process pool.

    A call either completes bit-identically (workers that die are
    respawned and their shards resubmitted) or raises
    :class:`ExecutorWorkerError` — it never hangs.
    """

    name = "process"

    def resolve_workers(self, config: TMACConfig) -> int:
        """Worker-process count for this call (override or CPU count)."""
        if config.num_workers is not None:
            return max(1, config.num_workers)
        return max(1, os.cpu_count() or 1)

    def matmul_with_table(
        self,
        plan: KernelPlan,
        table: LookupTable,
        config: TMACConfig,
        activation: np.ndarray,
    ) -> np.ndarray:
        from repro.core import shm

        n = activation.shape[0]
        workers = self.resolve_workers(config)
        work = n * plan.out_features * plan.num_groups
        shards: List = []
        if (workers > 1 and work >= config.parallel_threshold
                and shm.shm_available()):
            shards = plan.output_tiles(workers)
        if len(shards) <= 1:
            _PROCESS_STATS.add(process_calls=1, process_serial_fallbacks=1)
            return super().matmul_with_table(plan, table, config, activation)

        if config.num_workers is None:
            from repro.hardware.cost_model import pool_dispatch_choice

            choice = pool_dispatch_choice(
                n, plan.out_features, plan.in_features, config,
                len(shards), group_size=plan.group_size,
                tile_config=plan.weights.tile_config,
            )
            if choice == "thread":
                _PROCESS_STATS.add(process_calls=1,
                                   process_thread_delegations=1)
                delegated = config.with_options(executor="parallel",
                                                num_threads=workers)
                return ParallelExecutor().matmul_with_table(
                    plan, table, delegated, activation)

        group_sums = activation.reshape(n, plan.num_qgroups, -1).sum(axis=2)
        span_budget = max(1, self.gather_budget(config) // len(shards))
        pool = shm.get_process_pool(workers)
        try:
            with plan_canary(plan):
                out = pool.run_matmul(plan, table, config, group_sums,
                                      shards, span_budget)
        except ExecutorWorkerError:
            _PROCESS_STATS.add(process_calls=1, process_worker_errors=1)
            raise
        _PROCESS_STATS.add(process_calls=1, process_dispatches=1,
                           process_shards_executed=len(shards))
        return out


_EXECUTORS: Dict[str, Type[KernelExecutor]] = {
    LoopExecutor.name: LoopExecutor,
    VectorizedExecutor.name: VectorizedExecutor,
    ParallelExecutor.name: ParallelExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def get_executor(name: str) -> KernelExecutor:
    """Instantiate an executor by name (``"vectorized"``, ``"parallel"``,
    ``"process"`` or ``"loop"``)."""
    try:
        return _EXECUTORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; known: {sorted(_EXECUTORS)}"
        ) from None


def list_executors() -> list:
    """Names of the available executors."""
    return sorted(_EXECUTORS)
