"""Bit-serial decomposition of low-bit weight matrices (paper Eq. 1).

The fundamental transformation behind T-MAC is

.. math::

    A \\times W = A \\times \\Big(\\sum_{i=0}^{n-1} 2^i W_i\\Big)
                = \\sum_{i=0}^{n-1} 2^i\\, (A \\times W_i),

where :math:`W_i` is the i-th *bit plane* of the n-bit weight codes.  Each
one-bit matrix multiplication is then realized by table lookups
(:mod:`repro.core.lut`).

The paper additionally applies a *bit-serial linear transformation*
(Section 4): instead of computing with the raw bit values ``{0, 1}``, each
bit is mapped to ``{s0, s1}`` — empirically ``{-1, +1}`` — which halves the
dynamic range of the lookup tables and allows the mirror-consolidation
trick.  The original product is recovered with per-bit multipliers
:math:`\\alpha_i` and a bias term :math:`\\beta` that only depends on the
activation row sums:

.. math::

    W = \\sum_i \\alpha_i 2^i W_i' + B, \\qquad
    W_i' = f(W_i),\\; f(0)=s_0,\\; f(1)=s_1 .
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "BitSerialTransform",
    "decompose_bits",
    "compose_bits",
    "transform_bit_plane",
    "aggregate_bit_results",
]


@dataclass(frozen=True)
class BitSerialTransform:
    """Linear map applied to the one-bit weight values before table lookup.

    ``f(0) = s0`` and ``f(1) = s1``; the inverse map used during
    aggregation is ``bit = alpha * f(bit) + beta`` with
    ``alpha = 1 / (s1 - s0)`` and ``beta = -s0 / (s1 - s0)``.

    The default ``(s0, s1) = (-1, +1)`` gives ``alpha = 0.5`` and
    ``beta = 0.5`` and is the configuration the paper found optimal (it
    avoids float multiplies during table precomputation and minimizes the
    table's dynamic range).
    """

    s0: float = -1.0
    s1: float = 1.0

    def __post_init__(self) -> None:
        if self.s0 == self.s1:
            raise ValueError("s0 and s1 must differ")

    @property
    def alpha(self) -> float:
        """Multiplier recovering the raw bit from the transformed value."""
        return 1.0 / (self.s1 - self.s0)

    @property
    def beta(self) -> float:
        """Bias recovering the raw bit from the transformed value."""
        return -self.s0 / (self.s1 - self.s0)

    def apply(self, bit_plane: np.ndarray) -> np.ndarray:
        """Map a {0,1} bit plane to the transformed values {s0, s1}."""
        plane = np.asarray(bit_plane)
        return np.where(plane > 0, self.s1, self.s0).astype(np.float32)

    def invert(self, transformed: np.ndarray) -> np.ndarray:
        """Map transformed values {s0, s1} back to raw bits {0, 1}."""
        values = np.asarray(transformed, dtype=np.float32)
        return self.alpha * values + self.beta


def decompose_bits(codes: np.ndarray, bits: int) -> List[np.ndarray]:
    """Split unsigned integer codes into ``bits`` one-bit planes.

    Parameters
    ----------
    codes:
        Unsigned integer array (any shape) with values in ``[0, 2**bits)``.
    bits:
        Number of bit planes to extract.

    Returns
    -------
    list of ``uint8`` arrays
        ``planes[i][...] = (codes >> i) & 1`` — least-significant plane first.
    """
    arr = np.asarray(codes)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"codes must be an integer array, got dtype {arr.dtype}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if arr.size and int(arr.max()) >= (1 << bits):
        raise ValueError(
            f"codes contain values >= 2**{bits}; they do not fit in {bits} bits"
        )
    work = arr.astype(np.uint32)
    return [((work >> i) & 1).astype(np.uint8) for i in range(bits)]


def compose_bits(planes: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`decompose_bits`: rebuild codes from bit planes."""
    if not planes:
        raise ValueError("at least one bit plane is required")
    result = np.zeros_like(np.asarray(planes[0], dtype=np.uint32))
    for i, plane in enumerate(planes):
        result |= (np.asarray(plane, dtype=np.uint32) & 1) << i
    return result


def transform_bit_plane(
    plane: np.ndarray, transform: BitSerialTransform
) -> np.ndarray:
    """Apply the bit-serial linear transformation to a {0,1} bit plane."""
    return transform.apply(plane)


def aggregate_bit_results(
    partial_results: Sequence[np.ndarray],
    activation_row_sums: np.ndarray,
    transform: BitSerialTransform = BitSerialTransform(),
) -> np.ndarray:
    """Recombine per-bit LUT results into the integer-code GEMM result.

    Given ``partial_results[i] = A x f(W_i)^T`` (the result of the one-bit
    matrix multiplication *after* the bit-serial transformation), this
    computes ``A x codes^T`` as

    .. math::

        \\sum_i 2^i \\big(\\alpha\\, R_i + \\beta\\, S\\big)

    where ``S[n] = sum_k A[n, k]`` is the activation row-sum term
    (the matrix ``R_beta`` in Algorithm 1 of the paper).

    Parameters
    ----------
    partial_results:
        Sequence of ``[N, M]`` arrays, least-significant bit first.
    activation_row_sums:
        ``[N]`` vector of activation row sums (or an ``[N, M]``/broadcastable
        array when row sums differ per output due to grouping).
    transform:
        The bit-serial transform that produced the partials.
    """
    if not partial_results:
        raise ValueError("at least one partial result is required")
    alpha = transform.alpha
    beta = transform.beta
    row_sums = np.asarray(activation_row_sums, dtype=np.float64)
    if row_sums.ndim == 1:
        row_sums = row_sums[:, None]

    total = np.zeros_like(np.asarray(partial_results[0], dtype=np.float64))
    for i, partial in enumerate(partial_results):
        weight = float(1 << i)
        total += weight * (alpha * np.asarray(partial, dtype=np.float64)
                           + beta * row_sums)
    return total
