"""Configuration of the T-MAC mpGEMM kernel.

A :class:`TMACConfig` captures every knob the paper's design section exposes:

* the LUT group size ``g`` (Section 3.1, default 4 — the value that fits a
  single NEON ``TBL`` / AVX2 ``PSHUF`` register),
* the activation data type,
* the table-storage reductions (mirror consolidation, table quantization —
  Section 3.3),
* the data-layout optimizations (tiling, weight permutation, weight
  interleaving — Section 3.2),
* fast 8-bit aggregation (Section 4), off by default because it costs
  accuracy,
* the bit-serial linear transformation end points ``s0``/``s1``
  (Section 4, "Bit-serial linear transformation"), defaulting to ``(-1, +1)``.

The ablation study (Figure 10) is reproduced by toggling these flags from
the baseline ``TM-base`` configuration up to the full ``T-MAC`` one; see
:func:`ablation_stages`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.tiling import TileConfig

__all__ = [
    "TMACConfig",
    "GatewayConfig",
    "ablation_stages",
    "ABLATION_STAGE_NAMES",
    "DEFAULT_PARALLEL_THRESHOLD",
]

#: Minimum gather work (``N * M * K/g`` lookup elements) before the
#: parallel executor shards a call across its worker pool; smaller calls
#: run the serial vectorized path, which is faster than paying fork/join
#: overhead on a kernel that finishes in microseconds.
DEFAULT_PARALLEL_THRESHOLD = 1 << 16


def _default_executor() -> str:
    """Executor default, overridable via ``REPRO_EXECUTOR`` (CI matrix)."""
    return os.environ.get("REPRO_EXECUTOR", "vectorized")


def _default_num_threads() -> Optional[int]:
    """Thread-count default, overridable via ``REPRO_NUM_THREADS``."""
    raw = os.environ.get("REPRO_NUM_THREADS")
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_NUM_THREADS must be an integer, got {raw!r}"
        ) from None


def _default_lut_dtype() -> str:
    """LUT decode-domain default, overridable via ``REPRO_LUT_DTYPE``."""
    return os.environ.get("REPRO_LUT_DTYPE") or "float"


def _default_specialize() -> bool:
    """Specialization default (on), overridable via ``REPRO_SPECIALIZE``."""
    return os.environ.get("REPRO_SPECIALIZE", "1") not in ("0", "false", "no")


def _default_gather_variant() -> str:
    """Gather-driver default, overridable via ``REPRO_GATHER``."""
    return os.environ.get("REPRO_GATHER") or "auto"


def _default_chunk_elements() -> Optional[int]:
    """Chunk-budget default, overridable via ``REPRO_CHUNK_ELEMENTS``."""
    raw = os.environ.get("REPRO_CHUNK_ELEMENTS")
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CHUNK_ELEMENTS must be an integer, got {raw!r}"
        ) from None


def _default_num_workers() -> Optional[int]:
    """Process-worker default, overridable via ``REPRO_NUM_WORKERS``."""
    raw = os.environ.get("REPRO_NUM_WORKERS")
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_NUM_WORKERS must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class TMACConfig:
    """Configuration for the T-MAC LUT-based mpGEMM kernel.

    Attributes
    ----------
    bits:
        Weight bit width ``b`` (1..4 evaluated in the paper).
    g:
        LUT group size: the number of one-bit weights grouped into a single
        table index.  ``2**g`` is the table length before mirror
        consolidation.
    act_dtype:
        Data type the lookup tables are built in before table quantization:
        ``"float16"`` or ``"float32"``.
    mirror_consolidation:
        Store only half the table and reconstruct the mirrored half by
        negation (lossless).
    table_quantization:
        Quantize table entries from fp16 to int8 with a dynamic scale.
    fast_aggregation:
        Aggregate int8 lookup results with averaging (``rhadd``/``avg``)
        instructions instead of widening adds.  Faster but lossy.
    lut_scale_granularity:
        ``"group"`` (one scale per weight-quantization group, required for
        integer-domain accumulation and fast aggregation) or ``"fine"``
        (one scale per g-element table, the finest dynamic granularity).
    s0 / s1:
        Values the one-bit weights {0, 1} are linearly mapped to before the
        table lookup.  The paper finds (-1, +1) optimal.
    tiling / permute_weights / interleave_weights:
        The LUT-centric data-layout optimizations of Section 3.2.  They do
        not change numerical results; they change the instruction/memory
        profile used by the cost model.
    tile_config:
        Explicit tile configuration; ``None`` lets the kernel (or the tuner)
        pick a default for the target device.
    executor:
        Online executor used by :class:`~repro.core.kernel.TMACKernel`:
        ``"vectorized"`` (default — batched numpy across quantization groups
        and bit planes), ``"parallel"`` (the vectorized pipeline sharded
        over output-column tiles on a persistent worker thread pool),
        ``"process"`` (the same sharding on a persistent worker *process*
        pool with plans published through shared memory — breaks the GIL)
        or ``"loop"`` (the reference per-group/per-bit Python loops, kept
        as the numerical oracle).  All compute bit-identical results; see
        :mod:`repro.core.executor`.  The default can be overridden with the
        ``REPRO_EXECUTOR`` environment variable (the CI matrix uses this to
        run the whole suite under the parallel executor).
    num_threads:
        Worker count for the parallel executor; ``None`` (default) uses
        ``os.cpu_count()``.  Ignored by the serial executors.  Default
        overridable via ``REPRO_NUM_THREADS``.
    num_workers:
        Worker-*process* count for the process executor; ``None`` (default)
        uses ``os.cpu_count()`` and lets the cost model delegate
        GIL-tolerant shapes to the thread pool, while an explicit count
        pins the call to the process pool.  Ignored by the other
        executors.  Default overridable via ``REPRO_NUM_WORKERS``.
    parallel_threshold:
        Minimum gather work (``N * M * K/g`` elements) before the parallel
        or process executor shards a call; below it the serial vectorized
        path runs.
    lut_dtype:
        Decode domain for quantized lookup tables: ``"float"`` (default —
        widen looked-up int8 entries to float64 before aggregation) or
        ``"int8"`` (the paper's fig10 direction: keep gather, mirror signs
        and accumulation in the integer domain, rescaling once per block).
        Bit-identical to the float domain for group-granularity quantized
        tables (all intermediates are exact small integers) and silently
        ignored where it cannot apply (unquantized tables, fine scale
        granularity, fast aggregation).  Default overridable via
        ``REPRO_LUT_DTYPE`` (the CI int8 leg uses this).
    specialize:
        Use plan-specialized codes-dot kernels
        (:mod:`repro.core.specialize`): branches resolved at first use per
        ``(plan, table mode)``, cached on the plan.  Bit-identical to the
        generic path; on by default.  ``REPRO_SPECIALIZE=0`` disables.
    gather_variant:
        Gather driver inside specialized kernels: ``"fancy"`` (advanced
        indexing), ``"take"`` (:func:`np.take`) or ``"auto"`` (default —
        the host preference, overridable by the calibration pass in
        :mod:`repro.hardware.calibrate`).  Env: ``REPRO_GATHER``.
    chunk_elements:
        Override of the executor's raw-gather element budget per chunk
        (``None`` uses the executor default).  Chunk boundaries never
        change results; this is a memory/locality knob for the tuner.
        Env: ``REPRO_CHUNK_ELEMENTS``.
    """

    bits: int = 4
    g: int = 4
    act_dtype: str = "float16"
    mirror_consolidation: bool = True
    table_quantization: bool = True
    fast_aggregation: bool = False
    lut_scale_granularity: str = "group"
    s0: float = -1.0
    s1: float = 1.0
    tiling: bool = True
    permute_weights: bool = True
    interleave_weights: bool = True
    tuned: bool = False
    tile_config: Optional[TileConfig] = None
    executor: str = field(default_factory=_default_executor)
    num_threads: Optional[int] = field(default_factory=_default_num_threads)
    num_workers: Optional[int] = field(default_factory=_default_num_workers)
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    lut_dtype: str = field(default_factory=_default_lut_dtype)
    specialize: bool = field(default_factory=_default_specialize)
    gather_variant: str = field(default_factory=_default_gather_variant)
    chunk_elements: Optional[int] = field(
        default_factory=_default_chunk_elements)
    name: str = "T-MAC"
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {self.bits}")
        if not 1 <= self.g <= 8:
            raise ValueError(f"g must be in [1, 8], got {self.g}")
        if self.act_dtype not in ("float16", "float32"):
            raise ValueError(
                f"act_dtype must be 'float16' or 'float32', got {self.act_dtype!r}"
            )
        if self.lut_scale_granularity not in ("group", "fine"):
            raise ValueError(
                "lut_scale_granularity must be 'group' or 'fine', "
                f"got {self.lut_scale_granularity!r}"
            )
        if self.fast_aggregation and not self.table_quantization:
            raise ValueError(
                "fast_aggregation requires table_quantization (it averages "
                "int8 table entries)"
            )
        if self.s0 == self.s1:
            raise ValueError("s0 and s1 must differ")
        if self.num_threads is not None and self.num_threads < 1:
            raise ValueError(
                f"num_threads must be >= 1 (or None for cpu_count), "
                f"got {self.num_threads}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1 (or None for cpu_count), "
                f"got {self.num_workers}"
            )
        if self.parallel_threshold < 0:
            raise ValueError(
                f"parallel_threshold must be >= 0, got {self.parallel_threshold}"
            )
        if self.lut_dtype not in ("float", "int8"):
            raise ValueError(
                f"lut_dtype must be 'float' or 'int8', got {self.lut_dtype!r}"
            )
        if self.gather_variant not in ("auto", "fancy", "take"):
            raise ValueError(
                "gather_variant must be 'auto', 'fancy' or 'take', "
                f"got {self.gather_variant!r}"
            )
        if self.chunk_elements is not None and self.chunk_elements < 1:
            raise ValueError(
                f"chunk_elements must be >= 1 (or None for the executor "
                f"default), got {self.chunk_elements}"
            )
        # Imported lazily: repro.core.executor imports this module.  The
        # executor registry is the single source of valid names.
        from repro.core.executor import list_executors

        if self.executor not in list_executors():
            raise ValueError(
                f"executor must be one of {list_executors()}, "
                f"got {self.executor!r}"
            )

    @property
    def table_length(self) -> int:
        """Number of table entries stored per group (after consolidation)."""
        full = 1 << self.g
        return full // 2 if self.mirror_consolidation else full

    @property
    def table_entry_bytes(self) -> int:
        """Bytes per stored table entry."""
        if self.table_quantization:
            return 1
        return 2 if self.act_dtype == "float16" else 4

    def with_options(self, **kwargs) -> "TMACConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


def _env_str(name: str, default: str) -> str:
    return os.environ.get(name, default)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the asyncio serving gateway (:mod:`repro.server`).

    Every default is overridable through a ``REPRO_GATEWAY_*`` environment
    variable (evaluated at construction, like ``REPRO_EXECUTOR`` /
    ``REPRO_NUM_THREADS`` for :class:`TMACConfig`), so deployments tune
    the frontend without code changes.

    Attributes
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (tests, and
        the demo); the bound port is reported by ``Gateway.start()``.
        Env: ``REPRO_GATEWAY_HOST`` / ``REPRO_GATEWAY_PORT``.
    max_queue_depth:
        Backpressure bound on requests waiting for engine admission; once
        reached, new completions are rejected with HTTP 429 and a
        ``Retry-After`` header instead of growing the queue without
        bound.  Env: ``REPRO_GATEWAY_QUEUE_DEPTH``.
    default_timeout_s:
        Deadline applied to requests that do not carry their own
        ``timeout``; ``None`` (default) means no implicit deadline.
        Env: ``REPRO_GATEWAY_TIMEOUT_S``.
    retry_after_s:
        Floor of the ``Retry-After`` hint on 429 responses (the gateway
        raises it to its moving estimate of one request's service time).
        Env: ``REPRO_GATEWAY_RETRY_AFTER_S``.
    poll_interval_s:
        How long the engine-runner thread sleeps waiting for work when
        the engine is idle.  Env: ``REPRO_GATEWAY_POLL_S``.
    max_body_bytes:
        Largest accepted request body (413 beyond it).
        Env: ``REPRO_GATEWAY_MAX_BODY``.
    metrics_namespace:
        Prefix of every exported Prometheus metric name.
        Env: ``REPRO_GATEWAY_METRICS_NAMESPACE``.
    """

    host: str = field(
        default_factory=lambda: _env_str("REPRO_GATEWAY_HOST", "127.0.0.1"))
    port: int = field(
        default_factory=lambda: _env_int("REPRO_GATEWAY_PORT", 8080))
    max_queue_depth: int = field(
        default_factory=lambda: _env_int("REPRO_GATEWAY_QUEUE_DEPTH", 64))
    default_timeout_s: Optional[float] = field(
        default_factory=lambda: _env_float("REPRO_GATEWAY_TIMEOUT_S", None))
    retry_after_s: float = field(
        default_factory=lambda: _env_float("REPRO_GATEWAY_RETRY_AFTER_S", 1.0))
    poll_interval_s: float = field(
        default_factory=lambda: _env_float("REPRO_GATEWAY_POLL_S", 0.002))
    max_body_bytes: int = field(
        default_factory=lambda: _env_int("REPRO_GATEWAY_MAX_BODY", 1 << 20))
    metrics_namespace: str = field(
        default_factory=lambda: _env_str("REPRO_GATEWAY_METRICS_NAMESPACE",
                                         "gateway"))

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ValueError(
                f"default_timeout_s must be > 0, got {self.default_timeout_s}")
        if self.retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be > 0, got {self.retry_after_s}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {self.poll_interval_s}")
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}")
        if not self.metrics_namespace.replace("_", "").isalnum():
            raise ValueError(
                "metrics_namespace must be alphanumeric/underscore, got "
                f"{self.metrics_namespace!r}"
            )

    def with_options(self, **kwargs) -> "GatewayConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


ABLATION_STAGE_NAMES = (
    "TM-base",
    "+TQ",
    "+Tiling",
    "+Perm.",
    "+Tuning",
    "T-MAC",
    "TM+FA",
)


def ablation_stages(bits: int = 4, g: int = 4) -> "list[TMACConfig]":
    """Build the cumulative optimization stages of the Figure 10 ablation.

    Stage order follows the paper: ``TM-base`` (hardware LUT intrinsics only,
    no memory optimization), then cumulatively table quantization, tiling,
    permutation, tuning, interleaving (= full T-MAC), and finally optional
    fast aggregation (TM+FA).
    """
    base = TMACConfig(
        bits=bits,
        g=g,
        mirror_consolidation=True,
        table_quantization=False,
        fast_aggregation=False,
        tiling=False,
        permute_weights=False,
        interleave_weights=False,
        tuned=False,
        name="TM-base",
    )
    stages = [base]
    stages.append(stages[-1].with_options(table_quantization=True, name="+TQ"))
    stages.append(stages[-1].with_options(tiling=True, name="+Tiling"))
    stages.append(stages[-1].with_options(permute_weights=True, name="+Perm."))
    stages.append(stages[-1].with_options(tuned=True, name="+Tuning"))
    stages.append(stages[-1].with_options(interleave_weights=True, name="T-MAC"))
    stages.append(stages[-1].with_options(fast_aggregation=True, name="TM+FA"))
    return stages
