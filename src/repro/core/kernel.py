"""The T-MAC mpGEMM/mpGEMV kernel (Algorithm 1, online stage).

:class:`TMACKernel` binds an offline :class:`~repro.core.plan.KernelPlan`
(preprocessed weights, tile plan, bit-serial transform — built once,
content-addressed and cacheable) to an online *executor*
(:mod:`repro.core.executor`) and executes mixed-precision matrix
multiplication as

1. **Precompute** — build the per-activation-group lookup tables
   (:func:`repro.core.lut.precompute_lut`), with mirror consolidation and
   table quantization as configured.
2. **Lookup** — for every weight bit plane, gather the precomputed partial
   sums addressed by the ``g``-bit weight indices.
3. **Aggregate** — sum the looked-up values along the reduction axis, either
   exactly or with the lossy fast 8-bit aggregation.
4. **Bit-serial aggregation** — recombine the per-bit results with powers of
   two and the activation row-sum correction, then apply the weight
   quantization scales and zero points.

Steps 2-4 live in the executor: the default ``"vectorized"`` executor runs
them as batched numpy operations across all quantization groups and bit
planes at once; the ``"loop"`` executor keeps the seed implementation's
explicit per-group/per-bit loops as a numerical reference (select it with
``TMACConfig(executor="loop")``).

The kernel is a faithful numerical implementation: its output differs from
``A @ dequantize(W)^T`` only by the error sources the paper quantifies
(table quantization and, when enabled, fast aggregation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import TMACConfig
from repro.core.executor import KernelExecutor, get_executor
from repro.core.lut import LookupTable
from repro.core.plan import KernelPlan, build_plan
from repro.core.tiling import TileConfig
from repro.quant.uniform import QuantizedWeight

__all__ = ["TMACKernel"]


class TMACKernel:
    """LUT-based mixed-precision GEMM kernel bound to one weight matrix.

    Parameters
    ----------
    qweight:
        The quantized weight matrix (codes + per-group scales/zeros).
        Ignored when ``plan`` is given.
    config:
        Kernel configuration.  ``config.bits`` must equal the weight bit
        width.  ``config.executor`` selects the online executor.
    tile_config:
        Optional explicit tile configuration (otherwise taken from the
        config or defaulted).
    plan:
        An already-built (typically cached) :class:`KernelPlan` to bind
        instead of running offline preprocessing — the path used by the
        plan cache (:func:`repro.core.plan.get_plan`), the T-MAC backend
        and the serving engine.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import TMACConfig, TMACKernel, quantize_weights
    >>> rng = np.random.default_rng(0)
    >>> w = rng.standard_normal((64, 128)).astype(np.float32)
    >>> qw = quantize_weights(w, bits=4, group_size=32)
    >>> kernel = TMACKernel(qw, TMACConfig(bits=4))
    >>> a = rng.standard_normal((1, 128)).astype(np.float32)
    >>> out = kernel.matmul(a)
    >>> out.shape
    (1, 64)
    """

    def __init__(
        self,
        qweight: Optional[QuantizedWeight] = None,
        config: Optional[TMACConfig] = None,
        tile_config: Optional[TileConfig] = None,
        plan: Optional[KernelPlan] = None,
    ):
        if plan is None:
            if qweight is None:
                raise ValueError("either qweight or plan must be provided")
            self.config = config or TMACConfig(bits=qweight.bits)
            if self.config.bits != qweight.bits:
                raise ValueError(
                    f"config.bits={self.config.bits} != qweight.bits={qweight.bits}"
                )
            plan = build_plan(qweight, self.config, tile_config)
        else:
            self.config = config or plan.config
            if tile_config is not None and (
                tile_config.m_tm, tile_config.k_tk
            ) != (plan.weights.tile_config.m_tm, plan.weights.tile_config.k_tk):
                raise ValueError(
                    f"tile_config [{tile_config.m_tm}, {tile_config.k_tk}] "
                    f"conflicts with the plan's "
                    f"[{plan.weights.tile_config.m_tm}, "
                    f"{plan.weights.tile_config.k_tk}]"
                )
            if self.config.bits != plan.bits:
                raise ValueError(
                    f"config.bits={self.config.bits} != plan.bits={plan.bits}"
                )
            if not plan.compatible_with(self.config):
                raise ValueError(
                    "plan layout is incompatible with the given config "
                    "(bits/g/s0/s1/permutation/interleaving/tiling must match)"
                )
        self.plan = plan
        self.executor: KernelExecutor = get_executor(self.config.executor)

    @classmethod
    def from_plan(
        cls, plan: KernelPlan, config: Optional[TMACConfig] = None
    ) -> "TMACKernel":
        """Bind a (cached) plan without re-running offline preprocessing."""
        return cls(plan=plan, config=config)

    # ------------------------------------------------------------------ #
    # Shape properties
    # ------------------------------------------------------------------ #

    @property
    def weights(self):
        """The preprocessed weight operand (offline artifacts)."""
        return self.plan.weights

    @property
    def transform(self):
        """The bit-serial transform of the plan."""
        return self.plan.transform

    @property
    def out_features(self) -> int:
        """M — rows of the weight matrix / output width."""
        return self.plan.out_features

    @property
    def in_features(self) -> int:
        """K — reduction dimension."""
        return self.plan.in_features

    @property
    def bits(self) -> int:
        """Weight bit width."""
        return self.config.bits

    @property
    def _groups_per_qgroup(self) -> int:
        return self.plan.groups_per_qgroup

    # ------------------------------------------------------------------ #
    # Online stage
    # ------------------------------------------------------------------ #

    def precompute(self, activation: np.ndarray) -> LookupTable:
        """Build the lookup tables for an activation matrix (online stage)."""
        a = self._check_activation(activation)
        return self.plan.precompute(a, self.config)

    def matmul(self, activation: np.ndarray) -> np.ndarray:
        """Compute ``activation @ W_dequantized^T`` without dequantizing W.

        Parameters
        ----------
        activation:
            ``[N, K]`` (or ``[K]``) high-precision activation matrix.

        Returns
        -------
        np.ndarray
            ``[N, M]`` float32 result (``[M]`` if the input was 1-D).
        """
        a = self._check_activation(activation)
        squeeze = np.asarray(activation).ndim == 1
        table = self.precompute(a)
        config, executor = self._execution(a)
        out = executor.matmul_with_table(self.plan, table, config, a)
        return out[0] if squeeze else out

    __call__ = matmul

    def matmul_with_table(
        self, activation: np.ndarray, table: LookupTable
    ) -> np.ndarray:
        """mpGEMM against an externally precomputed lookup table.

        The table depends only on the activation (and the LUT configuration),
        *not* on the weights — so one table can be shared by several kernels
        consuming the same input (e.g. the q/k/v projections of an attention
        block).  The serving engine uses this to precompute once per layer
        input per decode step.  A table built for a different activation
        shape or LUT configuration is rejected.
        """
        a = self._check_activation(activation)
        squeeze = np.asarray(activation).ndim == 1
        self._check_table(table, a)
        config, executor = self._execution(a)
        out = executor.matmul_with_table(self.plan, table, config, a)
        return out[0] if squeeze else out

    def matmul_codes(self, activation: np.ndarray) -> np.ndarray:
        """Compute ``activation @ codes^T`` (integer-code GEMM, no scales).

        Used by unit tests to verify the bit-serial + LUT pipeline against
        a plain integer matrix multiplication, independent of quantization
        scales.
        """
        a = self._check_activation(activation)
        table = self.precompute(a)
        group_sums = a.reshape(a.shape[0], self.plan.num_qgroups, -1).sum(axis=2)
        total = np.zeros((a.shape[0], self.out_features), dtype=np.float64)
        for _, _, chunk in self.executor.iter_codes_dot(
            self.plan, table, self.config, group_sums
        ):
            total += chunk.sum(axis=-1)
        return total

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _execution(self, a: np.ndarray):
        """The ``(config, executor)`` pair actually used for this dispatch.

        Normally the kernel's own binding; under ``REPRO_AUTOTUNE=1`` the
        shape autotuner (:mod:`repro.tuning.tuner`, backed by the host
        calibration profile) may rewrite the executor, worker count and
        chunk budget per activation shape.  Autotuning never changes
        numerics — every executor is bit-identical — only dispatch.
        """
        from repro.tuning.tuner import autotune_enabled, resolve_autotuned

        if not autotune_enabled():
            return self.config, self.executor
        config = resolve_autotuned(self.plan, self.config, a.shape[0])
        if config is self.config:
            return self.config, self.executor
        return config, get_executor(config.executor)

    def _check_table(self, table: LookupTable, activation: np.ndarray) -> None:
        """Reject externally supplied tables this kernel cannot consume."""
        cfg = self.config
        if table.g != cfg.g:
            raise ValueError(f"table g={table.g} does not match config g={cfg.g}")
        if table.num_groups != self.plan.num_groups:
            raise ValueError(
                f"table covers {table.num_groups} groups but the weights "
                f"need {self.plan.num_groups} (K={self.in_features}, g={cfg.g})"
            )
        if table.num_rows != activation.shape[0]:
            raise ValueError(
                f"table was built for {table.num_rows} activation rows, "
                f"got {activation.shape[0]}"
            )
        if table.mirrored != cfg.mirror_consolidation:
            raise ValueError(
                f"table mirrored={table.mirrored} does not match "
                f"config.mirror_consolidation={cfg.mirror_consolidation}"
            )
        if table.quantized != cfg.table_quantization:
            raise ValueError(
                f"table quantized={table.quantized} does not match "
                f"config.table_quantization={cfg.table_quantization}"
            )
        if table.quantized and table.scale_block != self.plan.scale_block(cfg):
            raise ValueError(
                f"table scale_block={table.scale_block} does not match the "
                f"kernel's {self.plan.scale_block(cfg)}"
            )
        if table.s0 is not None and (table.s0, table.s1) != (cfg.s0, cfg.s1):
            raise ValueError(
                f"table was built with transform ({table.s0}, {table.s1}), "
                f"kernel uses ({cfg.s0}, {cfg.s1})"
            )
        if table.act_dtype is not None and table.act_dtype != cfg.act_dtype:
            raise ValueError(
                f"table act_dtype={table.act_dtype!r} does not match "
                f"config.act_dtype={cfg.act_dtype!r}"
            )

    def _check_activation(self, activation: np.ndarray) -> np.ndarray:
        a = np.asarray(activation, dtype=np.float32)
        if a.ndim == 1:
            a = a[None, :]
        if a.ndim != 2:
            raise ValueError(
                f"activation must be 1-D or 2-D, got shape {np.asarray(activation).shape}"
            )
        if a.shape[1] != self.in_features:
            raise ValueError(
                f"activation K={a.shape[1]} does not match weight K={self.in_features}"
            )
        return a
