"""The T-MAC mpGEMM/mpGEMV kernel (Algorithm 1, online stage).

:class:`TMACKernel` binds a quantized weight matrix (prepared offline by
:func:`repro.core.weights.preprocess_weights`) to a kernel configuration and
executes mixed-precision matrix multiplication as

1. **Precompute** — build the per-activation-group lookup tables
   (:func:`repro.core.lut.precompute_lut`), with mirror consolidation and
   table quantization as configured.
2. **Lookup** — for every weight bit plane and every quantization group,
   gather the precomputed partial sums addressed by the ``g``-bit weight
   indices.
3. **Aggregate** — sum the looked-up values along the reduction axis, either
   exactly or with the lossy fast 8-bit aggregation.
4. **Bit-serial aggregation** — recombine the per-bit results with powers of
   two and the activation row-sum correction, then apply the weight
   quantization scales and zero points.

The kernel is a faithful numerical implementation: its output differs from
``A @ dequantize(W)^T`` only by the error sources the paper quantifies
(table quantization and, when enabled, fast aggregation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aggregation import exact_aggregate, fast_aggregate
from repro.core.bitserial import BitSerialTransform
from repro.core.config import TMACConfig
from repro.core.lut import LookupTable, lookup, precompute_lut
from repro.core.tiling import TileConfig
from repro.core.weights import PreprocessedWeights, preprocess_weights
from repro.quant.uniform import QuantizedWeight

__all__ = ["TMACKernel"]


class TMACKernel:
    """LUT-based mixed-precision GEMM kernel bound to one weight matrix.

    Parameters
    ----------
    qweight:
        The quantized weight matrix (codes + per-group scales/zeros).
    config:
        Kernel configuration.  ``config.bits`` must equal ``qweight.bits``.
    tile_config:
        Optional explicit tile configuration (otherwise taken from the
        config or defaulted).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import TMACConfig, TMACKernel, quantize_weights
    >>> rng = np.random.default_rng(0)
    >>> w = rng.standard_normal((64, 128)).astype(np.float32)
    >>> qw = quantize_weights(w, bits=4, group_size=32)
    >>> kernel = TMACKernel(qw, TMACConfig(bits=4))
    >>> a = rng.standard_normal((1, 128)).astype(np.float32)
    >>> out = kernel.matmul(a)
    >>> out.shape
    (1, 64)
    """

    def __init__(
        self,
        qweight: QuantizedWeight,
        config: Optional[TMACConfig] = None,
        tile_config: Optional[TileConfig] = None,
    ):
        self.config = config or TMACConfig(bits=qweight.bits)
        if self.config.bits != qweight.bits:
            raise ValueError(
                f"config.bits={self.config.bits} != qweight.bits={qweight.bits}"
            )
        self.transform = BitSerialTransform(self.config.s0, self.config.s1)
        self.weights: PreprocessedWeights = preprocess_weights(
            qweight, self.config, tile_config
        )
        self._groups_per_qgroup = self.weights.group_size // self.config.g

    # ------------------------------------------------------------------ #
    # Shape properties
    # ------------------------------------------------------------------ #

    @property
    def out_features(self) -> int:
        """M — rows of the weight matrix / output width."""
        return self.weights.out_features

    @property
    def in_features(self) -> int:
        """K — reduction dimension."""
        return self.weights.in_features

    @property
    def bits(self) -> int:
        """Weight bit width."""
        return self.config.bits

    # ------------------------------------------------------------------ #
    # Online stage
    # ------------------------------------------------------------------ #

    def precompute(self, activation: np.ndarray) -> LookupTable:
        """Build the lookup tables for an activation matrix (online stage)."""
        a = self._check_activation(activation)
        scale_block = (
            self._groups_per_qgroup
            if self.config.lut_scale_granularity == "group"
            else 1
        )
        return precompute_lut(
            a,
            g=self.config.g,
            transform=self.transform,
            mirror_consolidation=self.config.mirror_consolidation,
            table_quantization=self.config.table_quantization,
            scale_block=scale_block,
            act_dtype=self.config.act_dtype,
        )

    def matmul(self, activation: np.ndarray) -> np.ndarray:
        """Compute ``activation @ W_dequantized^T`` without dequantizing W.

        Parameters
        ----------
        activation:
            ``[N, K]`` (or ``[K]``) high-precision activation matrix.

        Returns
        -------
        np.ndarray
            ``[N, M]`` float32 result (``[M]`` if the input was 1-D).
        """
        a = self._check_activation(activation)
        squeeze = np.asarray(activation).ndim == 1
        table = self.precompute(a)
        out = self._matmul_with_table(a, table)
        return out[0] if squeeze else out

    __call__ = matmul

    def matmul_codes(self, activation: np.ndarray) -> np.ndarray:
        """Compute ``activation @ codes^T`` (integer-code GEMM, no scales).

        Used by unit tests to verify the bit-serial + LUT pipeline against
        a plain integer matrix multiplication, independent of quantization
        scales.
        """
        a = self._check_activation(activation)
        table = self.precompute(a)
        gpq = self._groups_per_qgroup
        num_qgroups = self.weights.in_features // self.weights.group_size
        group_sums = a.reshape(a.shape[0], num_qgroups, -1).sum(axis=2)

        total = np.zeros((a.shape[0], self.out_features), dtype=np.float64)
        for qg in range(num_qgroups):
            codes_dot = self._codes_dot_block(table, qg, gpq, group_sums[:, qg])
            total += codes_dot
        return total

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_activation(self, activation: np.ndarray) -> np.ndarray:
        a = np.asarray(activation, dtype=np.float32)
        if a.ndim == 1:
            a = a[None, :]
        if a.ndim != 2:
            raise ValueError(
                f"activation must be 1-D or 2-D, got shape {np.asarray(activation).shape}"
            )
        if a.shape[1] != self.in_features:
            raise ValueError(
                f"activation K={a.shape[1]} does not match weight K={self.in_features}"
            )
        return a

    def _block_partial(
        self, table: LookupTable, bit: int, qg: int, gpq: int
    ) -> np.ndarray:
        """Looked-up and aggregated partial result of one bit plane over one
        weight-quantization group.  Returns ``[N, M]`` float64."""
        j0 = qg * gpq
        jslice = slice(j0, j0 + gpq)
        indices = self.weights.index_planes[bit][:, jslice]
        raw = lookup(table, indices, group_slice=jslice)  # [N, M, gpq]

        if not table.quantized:
            return exact_aggregate(raw, axis=-1)

        if table.scale_block == 1:
            # Fine granularity: each group has its own scale; rescale before
            # the (float) accumulation.
            scales = table.scales[:, jslice]  # [N, gpq]
            return exact_aggregate(raw * scales[:, None, :], axis=-1)

        # Group granularity: one scale per quantization block -> aggregate in
        # the integer domain (exactly or with the lossy rhadd tree), then
        # rescale once.
        if self.config.fast_aggregation:
            aggregated = fast_aggregate(raw, axis=-1)
        else:
            aggregated = exact_aggregate(raw, axis=-1)
        block_scale = table.scales[:, qg]  # [N]
        return aggregated * block_scale[:, None]

    def _codes_dot_block(
        self, table: LookupTable, qg: int, gpq: int, group_sum: np.ndarray
    ) -> np.ndarray:
        """``A_block @ codes_block^T`` for one quantization group, [N, M]."""
        alpha = self.transform.alpha
        beta = self.transform.beta
        codes_dot = np.zeros(
            (table.num_rows, self.out_features), dtype=np.float64
        )
        for bit in range(self.bits):
            partial = self._block_partial(table, bit, qg, gpq)
            codes_dot += float(1 << bit) * (
                alpha * partial + beta * group_sum[:, None]
            )
        return codes_dot

    def _matmul_with_table(
        self, activation: np.ndarray, table: LookupTable
    ) -> np.ndarray:
        n = activation.shape[0]
        m = self.out_features
        gpq = self._groups_per_qgroup
        num_qgroups = self.in_features // self.weights.group_size
        group_sums = activation.reshape(n, num_qgroups, -1).sum(axis=2)

        scales_w = self.weights.scales  # [M, QG]
        zeros_w = self.weights.zeros  # [M, QG]

        out = np.zeros((n, m), dtype=np.float64)
        for qg in range(num_qgroups):
            codes_dot = self._codes_dot_block(table, qg, gpq, group_sums[:, qg])
            scale_col = scales_w[:, qg][None, :]  # [1, M]
            zero_col = zeros_w[:, qg][None, :]  # [1, M]
            out += scale_col * codes_dot
            out -= (scale_col * zero_col) * group_sums[:, qg][:, None]
        return out.astype(np.float32)
