"""High-level functional API for T-MAC mixed-precision GEMM/GEMV.

These helpers wrap :class:`~repro.core.kernel.TMACKernel` for one-shot use.
Kernel construction is memoized through the process-wide plan cache
(:mod:`repro.core.plan`): repeated calls against the same weights — whether
the same :class:`~repro.quant.uniform.QuantizedWeight` object or an equal
one rebuilt elsewhere — reuse the offline preprocessing (bit-plane
decomposition, grouping, packing, permutation, interleaving) instead of
re-running it, exactly as in the paper's deployment where weights are
prepared once, offline.

For tight inner loops, constructing a :class:`TMACKernel` once (or via
:func:`repro.core.plan.get_plan`) still saves the cache lookup and the
weight fingerprint hash.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.plan import get_plan
from repro.quant.uniform import QuantizedWeight, quantize_weights

__all__ = ["tmac_gemm", "tmac_gemv"]


def _as_quantized(
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int,
    group_size: int,
) -> QuantizedWeight:
    if isinstance(weights, QuantizedWeight):
        return weights
    return quantize_weights(np.asarray(weights), bits=bits, group_size=group_size)


def tmac_gemm(
    activation: np.ndarray,
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int = 4,
    group_size: int = 128,
    config: Optional[TMACConfig] = None,
) -> np.ndarray:
    """Mixed-precision GEMM ``activation [N, K] x weights [M, K]^T -> [N, M]``.

    Parameters
    ----------
    activation:
        High-precision activation matrix of shape ``[N, K]``.
    weights:
        Either an already-quantized :class:`QuantizedWeight` or a real-valued
        ``[M, K]`` matrix that will be quantized to ``bits`` bits with the
        given ``group_size``.
    bits / group_size:
        Quantization parameters used when ``weights`` is a raw fp matrix.
    config:
        Optional kernel configuration; defaults to the full T-MAC
        configuration at the weight's bit width.
    """
    qweight = _as_quantized(weights, bits, group_size)
    cfg = config or TMACConfig(bits=qweight.bits)
    plan = get_plan(qweight, cfg)
    kernel = TMACKernel.from_plan(plan, cfg)
    return kernel.matmul(activation)


def tmac_gemv(
    activation: np.ndarray,
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int = 4,
    group_size: int = 128,
    config: Optional[TMACConfig] = None,
) -> np.ndarray:
    """Mixed-precision GEMV: a single activation row against a weight matrix.

    ``activation`` may be a 1-D ``[K]`` vector or a ``[1, K]`` matrix; the
    result has the matching rank.  This is the operation that dominates the
    token-generation (decode) phase of LLM inference.
    """
    a = np.asarray(activation)
    if a.ndim not in (1, 2) or (a.ndim == 2 and a.shape[0] != 1):
        raise ValueError(
            f"tmac_gemv expects a [K] vector or [1, K] matrix, got shape {a.shape}"
        )
    return tmac_gemm(a, weights, bits=bits, group_size=group_size, config=config)
