"""High-level functional API for T-MAC mixed-precision GEMM/GEMV.

These helpers wrap :class:`~repro.core.kernel.TMACKernel` for one-shot use.
For repeated multiplications against the same weights (the normal inference
case), construct a :class:`TMACKernel` once — its offline weight
preprocessing is then amortized across calls, exactly as in the paper's
deployment (weights are permuted/interleaved once, offline).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.quant.uniform import QuantizedWeight, quantize_weights

__all__ = ["tmac_gemm", "tmac_gemv"]


def _as_quantized(
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int,
    group_size: int,
) -> QuantizedWeight:
    if isinstance(weights, QuantizedWeight):
        return weights
    return quantize_weights(np.asarray(weights), bits=bits, group_size=group_size)


def tmac_gemm(
    activation: np.ndarray,
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int = 4,
    group_size: int = 128,
    config: Optional[TMACConfig] = None,
) -> np.ndarray:
    """Mixed-precision GEMM ``activation [N, K] x weights [M, K]^T -> [N, M]``.

    Parameters
    ----------
    activation:
        High-precision activation matrix of shape ``[N, K]``.
    weights:
        Either an already-quantized :class:`QuantizedWeight` or a real-valued
        ``[M, K]`` matrix that will be quantized to ``bits`` bits with the
        given ``group_size``.
    bits / group_size:
        Quantization parameters used when ``weights`` is a raw fp matrix.
    config:
        Optional kernel configuration; defaults to the full T-MAC
        configuration at the weight's bit width.
    """
    qweight = _as_quantized(weights, bits, group_size)
    cfg = config or TMACConfig(bits=qweight.bits)
    kernel = TMACKernel(qweight, cfg)
    return kernel.matmul(activation)


def tmac_gemv(
    activation: np.ndarray,
    weights: Union[np.ndarray, QuantizedWeight],
    bits: int = 4,
    group_size: int = 128,
    config: Optional[TMACConfig] = None,
) -> np.ndarray:
    """Mixed-precision GEMV: a single activation row against a weight matrix.

    ``activation`` may be a 1-D ``[K]`` vector or a ``[1, K]`` matrix; the
    result has the matching rank.  This is the operation that dominates the
    token-generation (decode) phase of LLM inference.
    """
    a = np.asarray(activation)
    if a.ndim not in (1, 2) or (a.ndim == 2 and a.shape[0] != 1):
        raise ValueError(
            f"tmac_gemv expects a [K] vector or [1, K] matrix, got shape {a.shape}"
        )
    return tmac_gemm(a, weights, bits=bits, group_size=group_size, config=config)
