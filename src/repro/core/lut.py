"""Online lookup-table precomputation (Algorithm 1, ``Precompute``).

For each activation row and each group of ``g`` consecutive activation
values, T-MAC precomputes the products of that ``[1, g]`` vector with every
possible ``[g]`` pattern of transformed one-bit weights — ``2**g`` signed
sums.  A ``g``-bit weight index then selects its partial result with a
single table lookup.

Two storage reductions from Section 3.3 are implemented:

* **Mirror consolidation** — with the symmetric bit mapping ``{-1, +1}``,
  pattern ``p`` and its bitwise complement produce values of opposite sign,
  so only half the table (patterns whose top bit is 0) is stored and the
  other half is reconstructed by negation.  Lossless.
* **Table quantization** — the fp16 table values are quantized to int8 with
  a dynamic scale (per table or per accumulation block).  This is error
  source (a) of Section 5.6 and is nearly lossless in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bitserial import BitSerialTransform

__all__ = [
    "LookupTable",
    "build_lut",
    "precompute_lut",
    "lookup",
    "lut_storage_bytes",
]

_INT8_MAX = 127.0


@dataclass
class LookupTable:
    """Precomputed activation lookup tables for one activation matrix.

    Attributes
    ----------
    values:
        Table entries.  Shape ``[N, K/g, L]`` where ``L = 2**g`` without
        mirror consolidation or ``2**(g-1)`` with it.  ``float32`` when
        unquantized, ``int8`` when table-quantized.
    scales:
        Dequantization scales when ``quantized``; shape ``[N, num_blocks]``
        where consecutive ``scale_block`` groups along K/g share a scale.
        ``None`` when unquantized.
    g:
        Group size the table was built for.
    mirrored:
        Whether mirror consolidation is applied (half-length table).
    quantized:
        Whether entries are int8 with scales.
    scale_block:
        Number of K/g groups sharing one scale (1 = finest granularity).
    s0 / s1:
        End points of the bit-serial transform the table was built with
        (``None`` for tables built outside :func:`precompute_lut`).  Kernels
        use them to reject externally shared tables from an incompatible
        transform.
    act_dtype:
        Accumulation dtype the table values were built in, when known.
    """

    values: np.ndarray
    g: int
    mirrored: bool
    quantized: bool
    scales: Optional[np.ndarray] = None
    scale_block: int = 1
    s0: Optional[float] = None
    s1: Optional[float] = None
    act_dtype: Optional[str] = None

    @property
    def num_rows(self) -> int:
        """N — number of activation rows covered by the tables."""
        return int(self.values.shape[0])

    @property
    def num_groups(self) -> int:
        """K/g — number of activation groups (tables per row)."""
        return int(self.values.shape[1])

    @property
    def stored_length(self) -> int:
        """Number of entries stored per table."""
        return int(self.values.shape[2])

    @property
    def full_length(self) -> int:
        """Number of addressable entries per table (2**g)."""
        return 1 << self.g

    def storage_bytes(self) -> int:
        """Bytes used to store all tables (entries + scales)."""
        entry_bytes = 1 if self.quantized else self.values.dtype.itemsize
        total = self.values.size * entry_bytes
        if self.scales is not None:
            total += self.scales.size * 2  # fp16 scales
        return int(total)


def build_lut(
    activation: np.ndarray,
    g: int = 4,
    transform: BitSerialTransform = BitSerialTransform(),
    dtype: str = "float32",
) -> np.ndarray:
    """Compute the full (unconsolidated, unquantized) lookup tables.

    Entry ``[n, j, p]`` holds ``sum_t f(bit_t(p)) * A[n, j*g + t]`` where
    ``f`` maps bit values to ``{s0, s1}``.  With the default ``{-1, +1}``
    transform this is the signed sum of the activation group with signs
    given by the pattern ``p``.

    Parameters
    ----------
    activation:
        ``[N, K]`` activation matrix; K must be a multiple of ``g``.
    g:
        Group size.
    transform:
        Bit-serial linear transform mapping bits to table signs.
    dtype:
        Accumulation dtype for the table values ("float32" or "float16");
        "float16" models the paper's fp16 tables.
    """
    a = np.asarray(activation, dtype=np.float32)
    if a.ndim != 2:
        raise ValueError(f"activation must be 2-D [N, K], got shape {a.shape}")
    n, k = a.shape
    if k % g != 0:
        raise ValueError(f"K={k} must be a multiple of g={g}")
    groups = a.reshape(n, k // g, g)

    patterns = np.arange(1 << g, dtype=np.uint32)
    # signs[p, t] = s1 if bit t of pattern p is set else s0
    bits = ((patterns[:, None] >> np.arange(g, dtype=np.uint32)) & 1).astype(
        np.float32
    )
    signs = transform.s0 + (transform.s1 - transform.s0) * bits

    # lut[n, j, p] = sum_t groups[n, j, t] * signs[p, t]
    lut = np.einsum("njt,pt->njp", groups, signs, optimize=True)
    if dtype == "float16":
        lut = lut.astype(np.float16).astype(np.float32)
    return lut.astype(np.float32)


def _consolidate(lut: np.ndarray, g: int) -> np.ndarray:
    """Keep only the patterns whose top bit is zero (the first half)."""
    half = 1 << (g - 1)
    return lut[:, :, :half]


def _quantize_table(
    lut: np.ndarray, scale_block: int
) -> tuple:
    """Quantize table entries to int8 with one dynamic scale per block.

    ``scale_block`` consecutive groups along the K/g axis share one scale
    (the maximum absolute entry of the block), which lets the kernel
    accumulate looked-up int8 values inside a block before rescaling.
    """
    n, groups, length = lut.shape
    if groups % scale_block != 0:
        raise ValueError(
            f"number of groups {groups} must be a multiple of scale_block "
            f"{scale_block}"
        )
    blocks = groups // scale_block
    blocked = lut.reshape(n, blocks, scale_block, length)
    amax = np.abs(blocked).max(axis=(2, 3))
    scales = np.where(amax > 0, amax / _INT8_MAX, 1.0).astype(np.float32)
    q = np.rint(blocked / scales[:, :, None, None])
    q = np.clip(q, -127, 127).astype(np.int8)
    return q.reshape(n, groups, length), scales


def precompute_lut(
    activation: np.ndarray,
    g: int = 4,
    transform: BitSerialTransform = BitSerialTransform(),
    mirror_consolidation: bool = True,
    table_quantization: bool = True,
    scale_block: int = 1,
    act_dtype: str = "float16",
) -> LookupTable:
    """Full online table-precomputation pipeline.

    Combines :func:`build_lut` with mirror consolidation and table
    quantization according to the kernel configuration.

    Notes
    -----
    Mirror consolidation requires a sign-symmetric transform
    (``s0 == -s1``); the function raises otherwise, since the negation
    reconstruction would be incorrect.
    """
    if mirror_consolidation and transform.s0 != -transform.s1:
        raise ValueError(
            "mirror consolidation requires a symmetric transform (s0 == -s1)"
        )
    lut = build_lut(activation, g=g, transform=transform, dtype=act_dtype)
    if mirror_consolidation:
        lut = _consolidate(lut, g)

    if table_quantization:
        values, scales = _quantize_table(lut, scale_block)
        return LookupTable(
            values=values,
            g=g,
            mirrored=mirror_consolidation,
            quantized=True,
            scales=scales,
            scale_block=scale_block,
            s0=transform.s0,
            s1=transform.s1,
            act_dtype=act_dtype,
        )
    return LookupTable(
        values=lut.astype(np.float32),
        g=g,
        mirrored=mirror_consolidation,
        quantized=False,
        scales=None,
        scale_block=scale_block,
        s0=transform.s0,
        s1=transform.s1,
        act_dtype=act_dtype,
    )


def lookup(table: LookupTable, indices: np.ndarray, group_slice: slice = None):
    """Gather table entries for a matrix of weight indices.

    Parameters
    ----------
    table:
        The precomputed :class:`LookupTable`.
    indices:
        ``[M, J]`` matrix of ``g``-bit weight indices, where ``J`` is the
        number of groups covered (must equal the slice length).
    group_slice:
        Optional slice over the K/g group axis, used by the kernel to walk
        the reduction dimension block by block.  Defaults to all groups.

    Returns
    -------
    np.ndarray
        Raw looked-up values of shape ``[N, M, J]``.  When the table is
        quantized the values are int-valued floats *before* scale
        application (the kernel applies scales at block granularity);
        mirrored entries are reconstructed by negation.
    """
    if group_slice is None:
        group_slice = slice(0, table.num_groups)
    values = table.values[:, group_slice, :]
    n, j_count, stored = values.shape
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 2:
        raise ValueError(f"indices must be 2-D [M, J], got shape {idx.shape}")
    if idx.shape[1] != j_count:
        raise ValueError(
            f"indices cover {idx.shape[1]} groups but the slice has {j_count}"
        )

    if table.mirrored:
        half = table.full_length >> 1
        negate = idx >= half
        folded = np.where(negate, (table.full_length - 1) - idx, idx)
    else:
        negate = np.zeros_like(idx, dtype=bool)
        folded = idx

    # Gather: out[n, m, j] = values[n, j, folded[m, j]]
    flat = values.reshape(n, j_count * stored)
    gather = (np.arange(j_count, dtype=np.int64)[None, :] * stored) + folded
    out = flat[:, gather.reshape(-1)].reshape(n, idx.shape[0], j_count)
    out = out.astype(np.float64)
    sign = np.where(negate, -1.0, 1.0)
    return out * sign[None, :, :]


def lut_storage_bytes(
    n: int,
    k: int,
    g: int,
    mirror_consolidation: bool,
    table_quantization: bool,
    act_dtype: str = "float16",
) -> int:
    """Storage footprint of the tables for an ``[N, K]`` activation matrix.

    Reproduces the Section 3.3 claim that the two reductions combined shrink
    the tables to a quarter of their original size: mirror consolidation
    halves the entry count, table quantization halves the bytes per entry
    (fp16 -> int8).
    """
    entries = 1 << g
    if mirror_consolidation:
        entries //= 2
    entry_bytes = 1 if table_quantization else (2 if act_dtype == "float16" else 4)
    return n * (k // g) * entries * entry_bytes
