"""Offline weight preprocessing for the T-MAC kernel.

Algorithm 1's ``PreprocessWeights`` runs once, offline (weights never change
during inference) and produces, per weight bit:

1. **Bit-plane extraction** — the n-bit codes are split into n one-bit
   matrices (:mod:`repro.core.bitserial`).
2. **Grouping** — every ``g`` consecutive one-bit weights along K become a
   single ``g``-bit *index* into the lookup table.
3. **Packing** — two 4-bit indices are packed per byte (the ``uint4[32]``
   layout of Figure 3).
4. **Tile permutation** — indices are reordered so that each
   ``[M_tm, K_tk]`` tile is contiguous in memory, turning the tile walk into
   sequential DRAM accesses (Section 3.2, "Weight permutation for sequential
   memory access").
5. **Interleaving** — within the packed bytes, indices are interleaved so a
   little-endian SIMD unpack (AND / SHR+AND) directly yields indices in the
   order the lookup consumes them (Section 3.2, Figure 4, "Weight
   interleaving for fast unpacking").

All five steps are invertible; the unit tests round-trip each of them.  The
permutation and interleaving steps do not change the kernel's numerical
output — they only change the memory-access pattern, which the cost model
rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.bitserial import decompose_bits
from repro.core.config import TMACConfig
from repro.core.tiling import TileConfig
from repro.quant.uniform import QuantizedWeight

__all__ = [
    "resolve_tile_config",
    "group_bits",
    "ungroup_bits",
    "pack_indices",
    "unpack_indices",
    "interleave_packed",
    "deinterleave_packed",
    "permute_tiles",
    "unpermute_tiles",
    "PreprocessedWeights",
    "preprocess_weights",
]


def resolve_tile_config(
    config: TMACConfig, tile_config: Optional[TileConfig] = None
) -> TileConfig:
    """The tile configuration preprocessing actually uses.

    Single source of the fallback default so the plan cache's layout key and
    the preprocessing pipeline can never disagree about what a ``None`` tile
    means.
    """
    return tile_config or config.tile_config or TileConfig(m_tm=32, k_tk=32)


def group_bits(bit_plane: np.ndarray, g: int) -> np.ndarray:
    """Collapse every ``g`` one-bit weights along K into a ``g``-bit index.

    ``index[m, j] = sum_t bit_plane[m, j*g + t] << t`` — bit ``t`` of the
    index corresponds to the ``t``-th element of the group, matching the
    table layout produced by :func:`repro.core.lut.build_lut`.

    Parameters
    ----------
    bit_plane:
        ``[M, K]`` array of 0/1 values.
    g:
        Group size; must divide K.
    """
    plane = np.asarray(bit_plane)
    if plane.ndim != 2:
        raise ValueError(f"bit_plane must be 2-D [M, K], got shape {plane.shape}")
    m, k = plane.shape
    if k % g != 0:
        raise ValueError(f"K={k} must be a multiple of g={g}")
    grouped = plane.reshape(m, k // g, g).astype(np.uint32)
    shifts = (1 << np.arange(g, dtype=np.uint32))
    indices = (grouped * shifts).sum(axis=2)
    return indices.astype(np.uint8 if g <= 8 else np.uint16)


def ungroup_bits(indices: np.ndarray, g: int) -> np.ndarray:
    """Inverse of :func:`group_bits`: expand indices back to a bit plane."""
    idx = np.asarray(indices, dtype=np.uint32)
    if idx.ndim != 2:
        raise ValueError(f"indices must be 2-D [M, K/g], got shape {idx.shape}")
    m, groups = idx.shape
    bits = ((idx[:, :, None] >> np.arange(g, dtype=np.uint32)) & 1).astype(np.uint8)
    return bits.reshape(m, groups * g)


def pack_indices(indices: np.ndarray, g: int = 4) -> np.ndarray:
    """Pack pairs of sub-byte indices into single bytes (``uint4[2]`` per byte).

    Only ``g <= 4`` indices are packed two-per-byte; wider indices are stored
    one per byte (they already occupy most of a byte).  Odd trailing indices
    are padded with zero.
    """
    idx = np.asarray(indices, dtype=np.uint8)
    if g > 4:
        return idx.copy()
    flat = idx.reshape(idx.shape[0], -1)
    m, n = flat.shape
    if n % 2 == 1:
        flat = np.concatenate([flat, np.zeros((m, 1), dtype=np.uint8)], axis=1)
        n += 1
    low = flat[:, 0::2]
    high = flat[:, 1::2]
    return (low | (high << 4)).astype(np.uint8)


def unpack_indices(packed: np.ndarray, num_indices: int, g: int = 4) -> np.ndarray:
    """Inverse of :func:`pack_indices`."""
    arr = np.asarray(packed, dtype=np.uint8)
    if g > 4:
        return arr[:, :num_indices].copy()
    low = arr & 0x0F
    high = (arr >> 4) & 0x0F
    m = arr.shape[0]
    interlaced = np.empty((m, arr.shape[1] * 2), dtype=np.uint8)
    interlaced[:, 0::2] = low
    interlaced[:, 1::2] = high
    return interlaced[:, :num_indices]


def interleave_packed(packed: np.ndarray, span: int = 16) -> np.ndarray:
    """Interleave packed index bytes for fast little-endian unpacking.

    Following Figure 4, the nibbles of each ``span``-byte block (holding
    ``2*span`` indices) are reordered so that byte ``i`` of the block holds
    index ``i`` in its low nibble and index ``i + span`` in its high nibble.
    A vector ``AND 0x0F`` then yields the block's first ``span`` indices in
    order, and ``SHR 4`` the next ``span``, without any further shuffling —
    the reordering that un-interleaved little-endian packing would require
    is eliminated.

    The transformation is a pure nibble permutation (lossless); a partial
    block at the tail of each row is left untouched.
    """
    arr = np.asarray(packed, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"packed must be 2-D, got shape {arr.shape}")
    m, nbytes = arr.shape
    out = arr.copy()
    full = (nbytes // span) * span
    if full == 0:
        return out
    body = arr[:, :full].reshape(m, -1, span)
    low_src = body & 0x0F      # indices 0, 2, 4, ... of the block
    high_src = body >> 4       # indices 1, 3, 5, ...
    # Natural index order within the block: [idx0, idx1, ..., idx_{2*span-1}].
    indices = np.empty((m, body.shape[1], 2 * span), dtype=np.uint8)
    indices[:, :, 0::2] = low_src
    indices[:, :, 1::2] = high_src
    interleaved = indices[:, :, :span] | (indices[:, :, span:] << 4)
    out[:, :full] = interleaved.reshape(m, full)
    return out


def deinterleave_packed(interleaved: np.ndarray, span: int = 16) -> np.ndarray:
    """Inverse of :func:`interleave_packed`."""
    arr = np.asarray(interleaved, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"interleaved must be 2-D, got shape {arr.shape}")
    m, nbytes = arr.shape
    out = arr.copy()
    full = (nbytes // span) * span
    if full == 0:
        return out
    body = arr[:, :full].reshape(m, -1, span)
    indices = np.concatenate([body & 0x0F, body >> 4], axis=2)
    packed = indices[:, :, 0::2] | (indices[:, :, 1::2] << 4)
    out[:, :full] = packed.reshape(m, full)
    return out


def permute_tiles(matrix: np.ndarray, tile_m: int, tile_k: int) -> np.ndarray:
    """Flatten a matrix tile-by-tile so each tile is contiguous in memory.

    The output is a 1-D array: tiles are visited in row-major tile order and
    each tile's elements are flattened row-major.  Ragged edge tiles (when
    the dimensions are not multiples of the tile sizes) are handled by
    emitting the partial tile's elements.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {mat.shape}")
    m, k = mat.shape
    chunks = []
    for m0 in range(0, m, tile_m):
        for k0 in range(0, k, tile_k):
            chunks.append(mat[m0:m0 + tile_m, k0:k0 + tile_k].reshape(-1))
    return np.concatenate(chunks) if chunks else mat.reshape(-1)


def unpermute_tiles(
    flat: np.ndarray, shape: tuple, tile_m: int, tile_k: int
) -> np.ndarray:
    """Inverse of :func:`permute_tiles`."""
    m, k = shape
    out = np.empty((m, k), dtype=np.asarray(flat).dtype)
    pos = 0
    flat = np.asarray(flat)
    for m0 in range(0, m, tile_m):
        for k0 in range(0, k, tile_k):
            h = min(tile_m, m - m0)
            w = min(tile_k, k - k0)
            out[m0:m0 + h, k0:k0 + w] = flat[pos:pos + h * w].reshape(h, w)
            pos += h * w
    if pos != flat.size:
        raise ValueError(
            f"flat array has {flat.size} elements but the tiling consumes {pos}"
        )
    return out


@dataclass
class PreprocessedWeights:
    """Offline-prepared weight operand of the T-MAC kernel.

    Attributes
    ----------
    index_planes:
        One ``[M, K/g]`` index matrix per weight bit (LSB first), in the
        natural (un-permuted) layout used for numerical computation.
    packed_planes:
        The storage layout actually "shipped" to the kernel: packed,
        optionally tile-permuted and interleaved bytes per bit plane.
    scales / zeros:
        Per-quantization-group dequantization parameters, copied from the
        :class:`~repro.quant.uniform.QuantizedWeight`.
    """

    index_planes: List[np.ndarray]
    packed_planes: List[np.ndarray]
    scales: np.ndarray
    zeros: np.ndarray
    bits: int
    g: int
    group_size: int
    shape: tuple
    tile_config: Optional[TileConfig] = None
    permuted: bool = False
    interleaved: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def out_features(self) -> int:
        """M — the number of output features."""
        return self.shape[0]

    @property
    def in_features(self) -> int:
        """K — the reduction dimension."""
        return self.shape[1]

    def packed_bytes(self) -> int:
        """Total bytes of the packed weight operand (all bit planes)."""
        return int(sum(plane.size for plane in self.packed_planes))


def preprocess_weights(
    qweight: QuantizedWeight,
    config: TMACConfig,
    tile_config: Optional[TileConfig] = None,
) -> PreprocessedWeights:
    """Run the full offline weight-preparation pipeline of Algorithm 1.

    Parameters
    ----------
    qweight:
        The quantized weight matrix (codes + scales).
    config:
        Kernel configuration; ``config.bits`` must match ``qweight.bits``.
    tile_config:
        Tile sizes used for the permutation step; defaults to
        ``config.tile_config`` or a ``[32, 32]`` tile.
    """
    if qweight.bits != config.bits:
        raise ValueError(
            f"config.bits={config.bits} does not match qweight.bits={qweight.bits}"
        )
    if qweight.group_size % config.g != 0:
        raise ValueError(
            f"quantization group_size={qweight.group_size} must be a multiple "
            f"of the LUT group size g={config.g}"
        )
    tile = resolve_tile_config(config, tile_config)

    planes = decompose_bits(qweight.codes, qweight.bits)
    index_planes = [group_bits(plane, config.g) for plane in planes]

    packed_planes = []
    for indices in index_planes:
        layout = indices
        if config.permute_weights:
            # Permute at index granularity: K/g columns, tile_k expressed in
            # index units.
            tile_k_indices = max(1, tile.k_tk // config.g)
            flat = permute_tiles(layout, tile.m_tm, tile_k_indices)
            layout = flat.reshape(1, -1)
        packed = pack_indices(layout, config.g)
        if config.interleave_weights:
            packed = interleave_packed(packed)
        packed_planes.append(packed)

    # Freeze every array before publication: preprocessed weights are
    # shared across executor threads and checksummed into plan keys — a
    # writable buffer would let silent mutation invalidate both.
    scales = qweight.scales.astype(np.float32)
    zeros = qweight.zeros.astype(np.float32)
    for arr in (*index_planes, *packed_planes, scales, zeros):
        arr.setflags(write=False)

    return PreprocessedWeights(
        index_planes=index_planes,
        packed_planes=packed_planes,
        scales=scales,
        zeros=zeros,
        bits=qweight.bits,
        g=config.g,
        group_size=qweight.group_size,
        shape=qweight.shape,
        tile_config=tile,
        permuted=config.permute_weights,
        interleaved=config.interleave_weights,
        metadata=dict(qweight.metadata),
    )
