"""Plan-specialized codes-dot kernels (hot-path codegen, built once per plan).

The generic :class:`~repro.core.executor.VectorizedExecutor` re-resolves
``table.quantized`` / ``scale_block`` / ``fast_aggregation`` / offsets-vs-
derived branches inside the per-bit-plane loop on *every* mpGEMV call.  The
csl-experiments breakdown referenced in the roadmap (74% overhead vs 26%
useful FMACS) is a warning about exactly this: a LUT kernel loses its
roofline to per-call dispatch, not to arithmetic.

This module is the repo's answer — at first use, one
:class:`SpecializedKernel` is compiled per ``(KernelPlan, table mode,
execution flags)`` and cached on the plan (same lock and lifetime as the
lazy gather tables).  Compilation resolves every branch into closures:

* the gather driver (precomputed int32 offsets vs on-the-fly derivation,
  fancy indexing vs :func:`np.take` — selectable, for the calibrated cost
  model to choose per host),
* the mirror-sign application, *fused* into the gather widening
  (``np.multiply(gathered, signs, dtype=...)`` — one pass instead of an
  ``astype`` followed by an in-place multiply),
* the aggregation mode (unquantized float sum / fine-granularity rescale /
  group-granularity exact or fast aggregation),
* optionally the paper's fig10 int8-table direction: with
  ``TMACConfig(lut_dtype="int8")`` the gather + sign + aggregation stay in
  the integer domain (int8/int16 temporaries instead of float64 — half to
  an eighth of the memory traffic) and a single float rescale follows.

Bit-exactness is load-bearing and asserted by the parity suites: every
fused operation is integer-exact or performs the same float64 operation
sequence as the generic path, so specialized results are *bit-identical*
to the generic vectorized executor (and therefore to the loop oracle) for
every table mode, and the int8 domain is bit-identical to the float domain
for group-granularity quantized tables (all intermediate values are exact
small integers in both).
"""

from __future__ import annotations

import threading
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro.core.aggregation import fast_aggregate

__all__ = [
    "SpecializationKey",
    "SpecializedKernel",
    "specialization_key",
    "compile_specialized",
    "maybe_specialized",
    "resolve_gather_variant",
    "set_default_gather_variant",
    "default_gather_variant",
    "specialize_stats",
    "reset_specialize_stats",
]


class SpecializationKey(NamedTuple):
    """Everything that selects one compiled kernel for a plan.

    The fields are *normalized* (irrelevant flags forced to a canonical
    value) so configs that cannot differ in behaviour share one compiled
    kernel — e.g. ``fast_aggregation`` is meaningless for unquantized
    tables and never forks a second build.
    """

    mirrored: bool
    quantized: bool
    fine: bool  # scale_block == 1 (per-group dynamic scales)
    fast_aggregation: bool
    int_domain: bool  # int8 LUT decode path (lut_dtype="int8")
    gather: str  # "fancy" | "take"


class _StatsBlock:
    """Lock-protected counter block with atomic ``snapshot`` / ``reset``.

    One lock covers every counter, so a snapshot taken mid-benchmark is
    internally consistent (all keys from the same instant) and a reset
    between benchmark phases can never interleave with a half-applied
    update — the stats-bleed the benchmarks used to suffer from.
    """

    def __init__(self, keys):
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {key: 0 for key in keys}

    def add(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._counts[key] += delta

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for key in self._counts:
                self._counts[key] = 0


_SPECIALIZE_STATS = _StatsBlock((
    "specialize_builds",  # kernels compiled (cache misses)
    "specialize_calls",  # span executions routed through a compiled kernel
    "specialize_int8_calls",  # of those, integer-domain (lut_dtype="int8")
    "specialize_generic_calls",  # spans that fell back to the generic path
))


def specialize_stats() -> Dict[str, int]:
    """Counters of the process-wide specialization cache (serving stats)."""
    return _SPECIALIZE_STATS.snapshot()


def reset_specialize_stats() -> None:
    """Zero the specialization counters (tests and benchmarks)."""
    _SPECIALIZE_STATS.reset()


#: Host-preferred gather driver for ``gather_variant="auto"`` configs.
#: ``"fancy"`` (advanced indexing) wins on most numpy builds; the
#: calibration pass (:mod:`repro.hardware.calibrate`) overrides it when
#: its probes measure ``np.take`` faster on the actual host.
_DEFAULT_GATHER = "fancy"
_GATHER_VARIANTS = ("fancy", "take")


def set_default_gather_variant(variant: str) -> None:
    """Set the host default used by ``gather_variant="auto"`` configs."""
    global _DEFAULT_GATHER
    if variant not in _GATHER_VARIANTS:
        raise ValueError(
            f"gather variant must be one of {_GATHER_VARIANTS}, got {variant!r}"
        )
    _DEFAULT_GATHER = variant


def default_gather_variant() -> str:
    """The current host default gather driver."""
    return _DEFAULT_GATHER


def resolve_gather_variant(config) -> str:
    """Resolve a config's ``gather_variant`` to a concrete driver."""
    raw = getattr(config, "gather_variant", "auto") or "auto"
    if raw == "auto":
        return _DEFAULT_GATHER
    return raw


def specialization_key(table, config) -> SpecializationKey:
    """Normalized key selecting the compiled kernel for ``(table, config)``.

    ``table`` decides the storage mode (mirrored/quantized/scale block);
    ``config`` contributes only the flags that matter for that mode, so
    e.g. toggling ``fast_aggregation`` on an unquantized run reuses the
    same compiled kernel instead of forking a duplicate.
    """
    quantized = bool(table.quantized)
    fine = quantized and table.scale_block == 1
    group = quantized and not fine
    fast = group and bool(getattr(config, "fast_aggregation", False))
    # The int8 decode path needs integer table entries and a single scale
    # per aggregation block; everything else silently stays in the float
    # domain (a preference, not an error — the CI int8 leg runs the whole
    # suite, including unquantized and fine-granularity configs).
    int_domain = (group and not fast
                  and getattr(config, "lut_dtype", "float") == "int8")
    return SpecializationKey(
        mirrored=bool(table.mirrored),
        quantized=quantized,
        fine=fine,
        fast_aggregation=fast,
        int_domain=int_domain,
        gather=resolve_gather_variant(config),
    )


class SpecializedKernel:
    """One compiled codes-dot pipeline for a plan + table mode.

    Holds only frozen plan artifacts (by reference) and scalars — never
    the plan itself — so evicting a plan from the :class:`PlanCache`
    releases the kernel with it and no closure keeps the arrays alive.

    The per-call entry points mirror the generic executor's span API:
    :meth:`iter_span` yields ``(qg0, qg1, chunk)`` codes-dot chunks and
    :meth:`recombine_span` applies the weight scales/zeros — both
    bit-identical to :class:`~repro.core.executor.VectorizedExecutor`.
    """

    def __init__(self, key: SpecializationKey, *, stored: int,
                 folded: List[np.ndarray], signs: Optional[List[np.ndarray]],
                 offsets: Optional[List[np.ndarray]], scales: np.ndarray,
                 sz: np.ndarray, alpha: float, beta: float, bits: int,
                 gpq: int, qgroups: int, out_features: int):
        self.key = key
        self.stored = stored
        self.folded = folded
        self.signs = signs
        self.offsets = offsets
        self.scales = scales  # weight scales [M, QG] (frozen, plan-owned)
        self.sz = sz  # precomputed scales * zeros [M, QG] (frozen)
        self.alpha = alpha
        self.beta = beta
        self.bits = bits
        self.gpq = gpq
        self.qgroups = qgroups
        self.out_features = out_features
        #: Bit-plane weights ``2**bit`` as python floats (the generic path
        #: computes ``float(1 << bit)`` per chunk per bit).
        self.bit_weights = [float(1 << bit) for bit in range(bits)]
        self._raw = self._make_raw()
        self._partial = self._make_partial()

    # -- compile-time closure construction ----------------------------- #

    def _make_raw(self):
        """The gather + sign driver: ``(flat, bit, j0, j1, m0, m1) ->
        [N, m1-m0, j1-j0]`` looked-up (and sign-reconstructed) values.

        Every branch of the generic ``_raw_chunk`` is resolved here once.
        The 2-D offset *view* indexes the flat table directly (yielding
        the 3-D result with no index flatten/copy), and the mirror signs
        are fused into the widening multiply — both bit-identical to the
        gather→astype→inplace-multiply sequence of the generic path.
        """
        offsets = self.offsets
        folded = self.folded
        signs = self.signs
        stored = self.stored

        if offsets is not None:
            def index(bit, j0, j1, m0, m1):
                return offsets[bit][m0:m1, j0:j1]
        else:
            # Very large weights: the plan skips offset precomputation;
            # derive the chunk's offsets from the folded indices on the fly.
            def index(bit, j0, j1, m0, m1):
                return (np.arange(j0, j1, dtype=np.int64)[None, :] * stored
                        + folded[bit][m0:m1, j0:j1])

        if self.key.gather == "take":
            def gather(flat, off):
                return np.take(flat, off, axis=1)
        else:
            def gather(flat, off):
                return flat[:, off]

        # Integer domain: int8 entries * int8 signs fit int16 exactly, so
        # the widening multiply (and the downstream int32 accumulation)
        # loses nothing versus float64 — the values are identical.
        out_dtype = np.int16 if self.key.int_domain else np.float64

        if signs is not None:
            def raw(flat, bit, j0, j1, m0, m1):
                off = index(bit, j0, j1, m0, m1)
                return np.multiply(gather(flat, off),
                                   signs[bit][m0:m1, j0:j1],
                                   dtype=out_dtype)
        elif self.key.int_domain:
            def raw(flat, bit, j0, j1, m0, m1):
                # Unmirrored int8 entries pass through; the aggregation
                # widens to int32.
                return gather(flat, index(bit, j0, j1, m0, m1))
        else:
            def raw(flat, bit, j0, j1, m0, m1):
                return gather(flat, index(bit, j0, j1, m0, m1)).astype(
                    np.float64)
        return raw

    def _make_partial(self):
        """The aggregation driver: ``(table, blocked, qg0, qg1, j0, j1) ->
        [N, m, qg1-qg0]`` per-quantization-group partials."""
        gpq = self.gpq

        if not self.key.quantized:
            def partial(table, blocked, qg0, qg1, j0, j1):
                return blocked.sum(axis=-1)
        elif self.key.fine:
            # Fine granularity: per-group scales applied before the float
            # accumulation, all chunk groups at once.
            def partial(table, blocked, qg0, qg1, j0, j1):
                scales = table.scales[:, j0:j1].reshape(
                    blocked.shape[0], 1, qg1 - qg0, gpq)
                return (blocked * scales).sum(axis=-1)
        elif self.key.fast_aggregation:
            def partial(table, blocked, qg0, qg1, j0, j1):
                return (fast_aggregate(blocked, axis=-1)
                        * table.scales[:, None, qg0:qg1])
        elif self.key.int_domain:
            # Integer-domain accumulation: the int16 (or int8) products
            # sum exactly in int32 — the same integers the float64 path
            # accumulates — and one float rescale per block follows.
            def partial(table, blocked, qg0, qg1, j0, j1):
                aggregated = blocked.sum(axis=-1, dtype=np.int32)
                return aggregated * table.scales[:, None, qg0:qg1]
        else:
            def partial(table, blocked, qg0, qg1, j0, j1):
                return blocked.sum(axis=-1) * table.scales[:, None, qg0:qg1]
        return partial

    # -- per-call entry points ------------------------------------------ #

    def iter_span(self, table, group_sums, m0: int, m1: int, budget: int):
        """Codes-dot chunks over output columns ``[m0, m1)``.

        Bit-identical to the generic
        :meth:`VectorizedExecutor.iter_codes_dot_span` — same chunk walk,
        same per-bit operation sequence, branches pre-resolved.
        """
        n = table.num_rows
        m = m1 - m0
        gpq = self.gpq
        qgroups = self.qgroups
        alpha = self.alpha
        beta = self.beta
        bit_weights = self.bit_weights
        raw = self._raw
        partial_of = self._partial
        flat = table.values.reshape(n, -1)

        per_qgroup = n * m * gpq
        qg_chunk = max(1, min(qgroups, budget // max(1, per_qgroup)))

        for qg0 in range(0, qgroups, qg_chunk):
            qg1 = min(qg0 + qg_chunk, qgroups)
            j0 = qg0 * gpq
            j1 = qg1 * gpq
            chunk = np.zeros((n, m, qg1 - qg0), dtype=np.float64)
            sums = group_sums[:, None, qg0:qg1]
            for bit in range(self.bits):
                blocked = raw(flat, bit, j0, j1, m0, m1).reshape(
                    n, m, qg1 - qg0, gpq)
                partial = partial_of(table, blocked, qg0, qg1, j0, j1)
                chunk += bit_weights[bit] * (alpha * partial + beta * sums)
            yield qg0, qg1, chunk

    def recombine_span(self, table, group_sums, m0: int, m1: int,
                       budget: int) -> np.ndarray:
        """Scale/zero recombination over output columns ``[m0, m1)``.

        The ``scales * zeros`` product is precomputed once per plan (same
        float32 elementwise product the generic path computes per call),
        so the per-quantization-group loop does two fused multiply-adds
        instead of three multiplies and two adds.
        """
        n = group_sums.shape[0]
        scales = self.scales
        sz = self.sz
        out = np.zeros((n, m1 - m0), dtype=np.float64)
        for qg0, qg1, chunk in self.iter_span(table, group_sums, m0, m1,
                                              budget):
            for qg in range(qg0, qg1):
                out += scales[m0:m1, qg][None, :] * chunk[:, :, qg - qg0]
                out -= sz[m0:m1, qg][None, :] * group_sums[:, qg][:, None]
        return out


def compile_specialized(plan, key: SpecializationKey,
                        tables=None) -> SpecializedKernel:
    """Compile one specialized kernel for ``plan`` under ``key``.

    ``tables`` lets :meth:`KernelPlan._build_specialized_locked` pass the
    gather metadata it already built under the plan lock (re-entering
    ``lookup_tables`` there would self-deadlock); other callers leave it
    ``None``.  Works against any plan-shaped object exposing the
    :class:`~repro.core.plan.KernelPlan` span-pipeline surface — including
    the process executor's worker-side ``_WorkerPlan`` reconstruction.
    """
    if tables is None:
        tables = plan.lookup_tables(key.mirrored)
    scales = plan.weights.scales
    zeros = plan.weights.zeros
    # Precompute the recombination's scale*zero product once (float32 in,
    # float32 out — the exact per-call product of the generic path), and
    # freeze it: it is published to every executor thread/process with
    # the same lifetime as the plan's other artifacts.
    sz = np.multiply(scales, zeros)
    sz.setflags(write=False)
    kernel = SpecializedKernel(
        key,
        stored=tables.stored,
        folded=tables.folded,
        signs=tables.signs,
        offsets=tables.offsets,
        scales=scales,
        sz=sz,
        alpha=plan.transform.alpha,
        beta=plan.transform.beta,
        bits=plan.bits,
        gpq=plan.groups_per_qgroup,
        qgroups=plan.num_qgroups,
        out_features=plan.out_features,
    )
    _SPECIALIZE_STATS.add(specialize_builds=1)
    return kernel


def maybe_specialized(plan, table, config) -> Optional[SpecializedKernel]:
    """The specialized kernel for this dispatch, or ``None`` for generic.

    Returns ``None`` when specialization is disabled
    (``TMACConfig(specialize=False)`` / ``REPRO_SPECIALIZE=0``) or the
    plan object cannot cache kernels (no ``specialized`` method).  Called
    once per span execution — the per-call cost is one dict hit on the
    plan's cache.
    """
    if not getattr(config, "specialize", False):
        _SPECIALIZE_STATS.add(specialize_generic_calls=1)
        return None
    getter = getattr(plan, "specialized", None)
    if getter is None:
        _SPECIALIZE_STATS.add(specialize_generic_calls=1)
        return None
    key = specialization_key(table, config)
    kernel = getter(key)
    if key.int_domain:
        _SPECIALIZE_STATS.add(specialize_calls=1, specialize_int8_calls=1)
    else:
        _SPECIALIZE_STATS.add(specialize_calls=1)
    return kernel
