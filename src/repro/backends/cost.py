"""Cost-model backends: BLAS, GPU and NPU latency/throughput estimators.

These backends do not execute matrices numerically — they wrap the paper's
roofline and vendor-number models (:mod:`repro.baselines`) behind the same
registry interface as the numeric backends, so benchmark and throughput
code can enumerate every execution target uniformly by name.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.baselines.blas_gemm import blas_gemm_latency
from repro.baselines.gpu import gpu_gemm_latency, gpu_token_latency
from repro.baselines.npu import npu_tokens_per_sec

__all__ = ["BLASBackend", "GPUBackend", "NPUBackend"]


class BLASBackend(Backend):
    """llama.cpp (BLAS) prefill path: dequantize then platform BLAS (Fig. 7)."""

    name = "blas"
    kind = "cost-model"

    def __init__(self, group_size: int = 128, **_ignored):
        self.group_size = group_size

    def estimate_latency(self, device, n, m, k, bits, threads=None, **kwargs):
        """Modeled :class:`~repro.hardware.cost_model.KernelLatency`."""
        return blas_gemm_latency(
            device, n, m, k, bits, threads=threads,
            group_size=kwargs.get("group_size", self.group_size),
        )


class GPUBackend(Backend):
    """llama.cpp CUDA/OpenCL backend cost model (Fig. 11, Tables 5/7)."""

    name = "gpu"
    kind = "cost-model"

    def __init__(self, group_size: int = 128, **_ignored):
        self.group_size = group_size

    def estimate_latency(self, device, n, m, k, bits, **kwargs):
        """Modeled :class:`~repro.hardware.cost_model.KernelLatency`."""
        return gpu_gemm_latency(
            device, n, m, k, bits,
            group_size=kwargs.get("group_size", self.group_size),
        )

    def token_latency(self, device, weight_bytes_total, num_kernels,
                      flops_per_token, bits=4):
        """Seconds per generated token (end-to-end GPU model)."""
        return gpu_token_latency(device, weight_bytes_total, num_kernels,
                                 flops_per_token, bits=bits)


class NPUBackend(Backend):
    """NPU throughput from vendor-published numbers (Table 7)."""

    name = "npu"
    kind = "cost-model"

    def __init__(self, **_ignored):
        pass

    def tokens_per_sec(self, device, model_name, bits=4):
        """Published tokens/s (``None`` when the device has no number)."""
        return npu_tokens_per_sec(device, model_name, bits=bits)
