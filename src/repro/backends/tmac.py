"""T-MAC LUT backend (with optional fast aggregation, the "+FA" rows)."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.backends.base import Backend, LinearOperator, pick_group_size
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.core.plan import get_plan
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import quantize_weights

__all__ = ["TMACBackend"]


class TMACBackend(Backend):
    """T-MAC backend: quantize weights, LUT-based kernel.

    Kernel plans are obtained through the process-wide plan cache
    (:func:`repro.core.plan.get_plan`), so binding the same weights twice —
    e.g. rebuilding a model, or running the sequential and batched serving
    paths over one checkpoint — pays offline preprocessing once.
    """

    name = "T-MAC"

    def __init__(self, bits: int = 4, group_size: int = 128,
                 config: Optional[TMACConfig] = None, bitnet: bool = False,
                 fast_aggregation: bool = False,
                 executor: Optional[str] = None,
                 num_threads: Optional[int] = None,
                 num_workers: Optional[int] = None, **_ignored):
        self.bits = bits
        self.group_size = group_size
        explicit_config = config is not None
        if fast_aggregation:
            # Applies whether or not an explicit config was passed — the
            # "tmac-fa" registry entry must never silently run exact
            # aggregation.
            config = (config or TMACConfig(bits=bits)).with_options(
                fast_aggregation=True)
        if executor is not None or num_threads is not None \
                or num_workers is not None:
            # Execution-layer knobs: get_backend("tmac", executor="parallel",
            # num_threads=4) switches every kernel this backend builds to the
            # multi-core executor, which the serving engine's batched decode
            # path then picks up transparently.  A num_threads override
            # implies the parallel executor — and a num_workers override the
            # process executor — only when the caller did not choose an
            # executor through any channel: the kwarg, an explicitly
            # supplied config, or the REPRO_EXECUTOR environment override.
            config = config or TMACConfig(bits=bits)
            executor_chosen = explicit_config or "REPRO_EXECUTOR" in os.environ
            overrides = {}
            if executor is not None:
                overrides["executor"] = executor
            elif not executor_chosen:
                if num_workers is not None and config.executor != "process":
                    overrides["executor"] = "process"
                elif num_threads is not None and \
                        config.executor != "parallel":
                    overrides["executor"] = "parallel"
            if num_threads is not None:
                overrides["num_threads"] = num_threads
            if num_workers is not None:
                overrides["num_workers"] = num_workers
            config = config.with_options(**overrides)
        self.config = config
        self.bitnet = bitnet
        if config is not None and config.fast_aggregation:
            self.name = "T-MAC (+FA)"

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)
        group = pick_group_size(w.shape[1], self.group_size)
        if self.bitnet:
            qw = quantize_bitnet(w, group_size=group)
        else:
            qw = quantize_weights(w, bits=self.bits, group_size=group)
        config = self.config or TMACConfig(bits=qw.bits)
        if config.bits != qw.bits:
            config = config.with_options(bits=qw.bits)
        kernel = TMACKernel.from_plan(get_plan(qw, config), config)

        def forward(x: np.ndarray) -> np.ndarray:
            return kernel.matmul(x)

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=qw.memory_bytes(),
            kernel=kernel,
        )
