"""Full-precision reference backend ("Un-quantized" in Table 4)."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, LinearOperator

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Full-precision backend: no quantization, plain fp32 matmul.

    Weights are stored (and executed) in float32, so the reported
    ``weight_bytes`` is 4 bytes per element.  The paper's "un-quantized"
    deployments ship fp16 checkpoints, but this numerical reference keeps
    fp32 to stay bit-exact with numpy's default matmul — the fp16 footprint
    comparison lives in the analytic path
    (:meth:`repro.llm.architecture.TransformerArch.weight_bytes`).
    """

    name = "reference"

    def __init__(self, **_ignored):
        # Accepts (and ignores) the uniform quantization kwargs so the
        # registry can forward one call signature to every backend.
        pass

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)

        def forward(x: np.ndarray) -> np.ndarray:
            return np.asarray(x, dtype=np.float32) @ w.T

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=w.size * w.dtype.itemsize,
        )
