"""The backend registry: name -> factory, with aliases.

Backends self-register at import time (see :mod:`repro.backends`); callers
resolve them by name::

    from repro.backends import get_backend
    engine = get_backend("tmac", bits=2, group_size=64)

Registration is open — downstream code can plug in new kernels without
touching this package::

    from repro.backends import Backend, register_backend

    @register_backend("my-kernel", aliases=("mk",))
    class MyBackend(Backend):
        ...

Names and aliases are case-insensitive.  Unknown names raise
:class:`UnknownBackendError` (a ``ValueError``) listing what is available.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.backends.base import Backend

__all__ = [
    "register_backend",
    "get_backend",
    "list_backends",
    "backend_aliases",
    "UnknownBackendError",
]


class UnknownBackendError(ValueError):
    """Raised when a backend name resolves to nothing in the registry."""


#: canonical name -> factory (callable returning a Backend)
_FACTORIES: Dict[str, Callable[..., Backend]] = {}
#: any accepted name (canonical or alias, lowercased) -> canonical name
_ALIASES: Dict[str, str] = {}


def register_backend(name: str, factory: Callable[..., Backend] = None, *,
                     aliases=(), overwrite: bool = False):
    """Register a backend factory under ``name`` (plus optional aliases).

    Usable directly (``register_backend("x", SomeBackend)``) or as a class /
    function decorator.  ``factory`` is any callable returning a
    :class:`Backend`; keyword arguments given to :func:`get_backend` are
    forwarded to it.
    """

    def _register(fac: Callable[..., Backend]) -> Callable[..., Backend]:
        key = name.lower()
        if not overwrite and key in _FACTORIES:
            raise ValueError(f"backend {name!r} is already registered")
        _FACTORIES[key] = fac
        _ALIASES[key] = key
        for alias in aliases:
            alias_key = alias.lower()
            existing = _ALIASES.get(alias_key)
            if not overwrite and existing is not None and existing != key:
                raise ValueError(
                    f"alias {alias!r} already points at backend {existing!r}"
                )
            _ALIASES[alias_key] = key
        return fac

    if factory is None:
        return _register
    return _register(factory)


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate a registered backend by (case-insensitive) name or alias.

    Keyword arguments are forwarded to the backend factory; factories ignore
    the common quantization kwargs (``bits``, ``group_size``, ...) they do
    not use, so one call signature works uniformly across backends.
    """
    canonical = _ALIASES.get(str(name).lower())
    if canonical is None:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered: {list_backends()}"
        )
    return _FACTORIES[canonical](**kwargs)


def list_backends() -> List[str]:
    """Sorted canonical names of all registered backends."""
    return sorted(_FACTORIES)


def backend_aliases(name: str) -> List[str]:
    """All accepted spellings (aliases) resolving to backend ``name``."""
    canonical = _ALIASES.get(str(name).lower())
    if canonical is None:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered: {list_backends()}"
        )
    return sorted(k for k, v in _ALIASES.items() if v == canonical)
