"""Pluggable mpGEMM backends behind a uniform registry.

Every execution target the paper compares lives here behind one interface:

========== ============ ==========================================================
name       kind         implementation
========== ============ ==========================================================
reference  numeric      fp32 matmul, no quantization ("Un-quantized")
llama.cpp  numeric      dequantization-based kernel (aliases: dequant, llamacpp)
T-MAC      numeric      LUT-based kernel, plan-cached (aliases: tmac, t-mac)
tmac-fa    numeric      T-MAC with lossy fast aggregation ("+FA")
blas       cost-model   dequantize-then-BLAS prefill roofline (Figure 7)
gpu        cost-model   llama.cpp CUDA/OpenCL roofline (Figure 11, Tables 5/7)
npu        cost-model   vendor-published NPU throughput (Table 7)
========== ============ ==========================================================

Resolve by name with :func:`get_backend`; add new kernels with
:func:`register_backend`.  The transformer substrate (:mod:`repro.llm`),
the serving engine (:mod:`repro.serving`), examples and benchmarks all go
through this registry.

The T-MAC backends accept execution-layer kwargs alongside the
quantization ones: ``get_backend("tmac", executor="parallel",
num_threads=4)`` binds every linear layer to the multi-core
:class:`~repro.core.executor.ParallelExecutor` (bit-identical to the
serial executor; see ``TMACConfig.num_threads`` / ``parallel_threshold``).
"""

from repro.backends.base import Backend, LinearOperator, pick_group_size
from repro.backends.cost import BLASBackend, GPUBackend, NPUBackend
from repro.backends.dequant import DequantBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.registry import (
    UnknownBackendError,
    backend_aliases,
    get_backend,
    list_backends,
    register_backend,
)
from repro.backends.tmac import TMACBackend

__all__ = [
    "Backend",
    "LinearOperator",
    "pick_group_size",
    "register_backend",
    "get_backend",
    "list_backends",
    "backend_aliases",
    "UnknownBackendError",
    "ReferenceBackend",
    "DequantBackend",
    "TMACBackend",
    "BLASBackend",
    "GPUBackend",
    "NPUBackend",
]


def _tmac_fa_factory(**kwargs) -> TMACBackend:
    kwargs["fast_aggregation"] = True
    return TMACBackend(**kwargs)


register_backend("reference", ReferenceBackend,
                 aliases=("fp", "unquantized"))
register_backend("llama.cpp", DequantBackend,
                 aliases=("dequant", "llamacpp"))
register_backend("tmac", TMACBackend, aliases=("t-mac", "T-MAC"))
register_backend("tmac-fa", _tmac_fa_factory,
                 aliases=("t-mac+fa", "tmac+fa"))
register_backend("blas", BLASBackend)
register_backend("gpu", GPUBackend)
register_backend("npu", NPUBackend)
