"""Backend base classes: the uniform mpGEMM execution interface.

A :class:`Backend` turns a full-precision weight matrix into a callable
:class:`LinearOperator` (numeric backends) and/or estimates kernel latency
on a modeled device (cost-model backends).  Every execution path in the
repository — the transformer substrate (:mod:`repro.llm`), the serving
engine (:mod:`repro.serving`), examples and benchmarks — obtains backends
through the registry (:mod:`repro.backends.registry`) so new kernels plug in
by registration instead of by editing call sites.

``MatmulEngine`` (the pre-registry name of this base class) remains
available as an alias via :mod:`repro.llm.engine` for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

__all__ = ["LinearOperator", "Backend", "pick_group_size"]


def pick_group_size(in_features: int, requested: int, minimum: int = 4) -> int:
    """Largest group size <= ``requested`` that divides ``in_features``.

    Small test models have reduction dimensions that the default 128-wide
    quantization group does not divide; shrinking the group (by halving)
    keeps the per-group quantization semantics intact.
    """
    if in_features < minimum:
        raise ValueError(
            f"in_features={in_features} is smaller than the minimum group "
            f"size {minimum}"
        )
    group = min(requested, in_features)
    while group > minimum and in_features % group != 0:
        group //= 2
    if in_features % group != 0:
        raise ValueError(
            f"cannot find a group size <= {requested} dividing K={in_features}"
        )
    return max(group, minimum)


@dataclass
class LinearOperator:
    """A bound linear layer: ``y = forward(x)`` with bookkeeping for stats.

    ``kernel`` optionally exposes the underlying kernel object (e.g. a
    :class:`~repro.core.kernel.TMACKernel`) so layers above can exploit
    kernel-specific structure — the serving engine uses it to share one
    lookup-table precompute among several projections consuming the same
    input.
    """

    name: str
    out_features: int
    in_features: int
    forward: Callable[[np.ndarray], np.ndarray]
    engine_name: str
    weight_bytes: int
    kernel: Optional[Any] = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Backend:
    """Base class for mpGEMM backends.

    Numeric backends implement :meth:`make_linear`, turning an fp weight
    matrix ``[M, K]`` into a :class:`LinearOperator`.  Cost-model backends
    (BLAS, GPU, NPU) implement :meth:`estimate_latency` instead; their
    ``kind`` is ``"cost-model"`` and calling :meth:`make_linear` raises.
    """

    name = "base"
    kind = "numeric"

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        """Bind a weight matrix to this backend."""
        raise NotImplementedError(
            f"backend {self.name!r} ({self.kind}) does not execute numerically"
        )

    def estimate_latency(self, device, n: int, m: int, k: int, bits: int,
                         **kwargs):
        """Modeled latency of ``[N,K] x [M,K]^T`` on a device (cost models)."""
        raise NotImplementedError(
            f"backend {self.name!r} ({self.kind}) has no latency cost model"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
