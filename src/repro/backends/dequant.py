"""llama.cpp-style dequantization backend."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, LinearOperator, pick_group_size
from repro.baselines.dequant_gemm import DequantGEMM
from repro.quant.bitnet import quantize_bitnet
from repro.quant.uniform import quantize_weights

__all__ = ["DequantBackend"]


class DequantBackend(Backend):
    """llama.cpp-style backend: quantize weights, dequantization-based kernel."""

    name = "llama.cpp"

    def __init__(self, bits: int = 4, group_size: int = 128,
                 act_block_size: int = 32, bitnet: bool = False, **_ignored):
        self.bits = bits
        self.group_size = group_size
        self.act_block_size = act_block_size
        self.bitnet = bitnet

    def make_linear(self, weight: np.ndarray, name: str = "linear") -> LinearOperator:
        w = np.asarray(weight, dtype=np.float32)
        group = pick_group_size(w.shape[1], self.group_size)
        if self.bitnet:
            qw = quantize_bitnet(w, group_size=group)
        else:
            qw = quantize_weights(w, bits=self.bits, group_size=group)
        act_block = min(self.act_block_size, group)
        kernel = DequantGEMM(qw, act_block_size=act_block)

        def forward(x: np.ndarray) -> np.ndarray:
            return kernel.matmul(x)

        return LinearOperator(
            name=name,
            out_features=w.shape[0],
            in_features=w.shape[1],
            forward=forward,
            engine_name=self.name,
            weight_bytes=qw.memory_bytes(),
            kernel=kernel,
        )
