"""Gateway-side request lifecycle: admission control and per-request
bookkeeping.

The engine already schedules admitted work (priority-aware, deadline-
expiring — :mod:`repro.serving.engine`); this module is the layer above
it that the HTTP frontend talks to:

* :class:`RequestLifecycle` — bounded admission.  When the engine's
  waiting queue exceeds ``max_queue_depth``, new completions are refused
  with :class:`QueueFull` (the gateway turns that into HTTP 429 with a
  ``Retry-After`` hint derived from an exponential moving average of
  recent request service times) instead of queueing without bound —
  backpressure, not buffering.
* :class:`RequestTicket` — one in-flight request's timeline (submitted /
  first token / finished, token count, finish reason), from which the
  gateway derives per-request TTFT and TPOT without touching engine
  internals.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["QueueFull", "RequestTicket", "RequestLifecycle"]

_request_counter = itertools.count()


class QueueFull(RuntimeError):
    """Raised when admission is refused; carries the Retry-After hint."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass
class RequestTicket:
    """Timeline and bookkeeping of one gateway request."""

    request_id: int = field(default_factory=lambda: next(_request_counter))
    priority: int = 0
    timeout_s: Optional[float] = None
    submitted_at: float = 0.0
    session_id: Optional[int] = None
    first_token_at: Optional[float] = None
    finished_at: Optional[float] = None
    finish_reason: str = ""
    tokens: int = 0

    @property
    def ttft_s(self) -> Optional[float]:
        """Seconds from submission to the first streamed token."""
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.submitted_at

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean time per output token after the first (None if < 2)."""
        if (self.first_token_at is None or self.finished_at is None
                or self.tokens < 2):
            return None
        return (self.finished_at - self.first_token_at) / (self.tokens - 1)


class RequestLifecycle:
    """Bounded admission plus an EWMA of request service times.

    ``admit()`` is handed the *observed* queue depth (the engine runner's
    waiting count) rather than keeping its own shadow copy — the engine is
    the source of truth; this object only decides and records.  All
    methods are thread-safe: the event loop admits while the runner
    thread's stream hooks record progress.
    """

    def __init__(self, max_queue_depth: int, retry_after_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 ewma_alpha: float = 0.3):
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = retry_after_s
        self.clock = clock
        self._ewma_alpha = ewma_alpha
        self._mean_service_s: Optional[float] = None
        self._lock = threading.Lock()
        self._in_flight: Dict[int, RequestTicket] = {}
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def admit(self, queue_depth: int, priority: int = 0,
              timeout_s: Optional[float] = None) -> RequestTicket:
        """Open a ticket, or raise :class:`QueueFull` with a retry hint."""
        with self._lock:
            if queue_depth >= self.max_queue_depth:
                self.rejected_total += 1
                raise QueueFull(
                    f"admission queue is full ({queue_depth} waiting, "
                    f"bound {self.max_queue_depth})",
                    retry_after_s=self._retry_after_locked(),
                )
            ticket = RequestTicket(priority=priority, timeout_s=timeout_s,
                                   submitted_at=self.clock())
            self._in_flight[ticket.request_id] = ticket
            self.admitted_total += 1
            return ticket

    def _retry_after_locked(self) -> float:
        """Retry hint: at least the configured floor, at most a minute."""
        hint = self.retry_after_s
        if self._mean_service_s is not None:
            hint = max(hint, self._mean_service_s)
        return min(math.ceil(hint), 60.0)

    @property
    def retry_after_hint_s(self) -> float:
        with self._lock:
            return self._retry_after_locked()

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #

    def note_token(self, ticket: RequestTicket) -> None:
        """Record one streamed token (the first one fixes TTFT)."""
        with self._lock:
            now = self.clock()
            if ticket.first_token_at is None:
                ticket.first_token_at = now
            ticket.tokens += 1

    def close(self, ticket: RequestTicket, finish_reason: str) -> None:
        """Finish a ticket and fold its duration into the service EWMA."""
        with self._lock:
            if ticket.request_id not in self._in_flight:
                return  # already closed (disconnect race): keep idempotent
            ticket.finished_at = self.clock()
            ticket.finish_reason = finish_reason
            del self._in_flight[ticket.request_id]
            duration = ticket.finished_at - ticket.submitted_at
            if self._mean_service_s is None:
                self._mean_service_s = duration
            else:
                alpha = self._ewma_alpha
                self._mean_service_s = (alpha * duration
                                        + (1 - alpha) * self._mean_service_s)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight)

    @property
    def mean_service_s(self) -> Optional[float]:
        with self._lock:
            return self._mean_service_s
