"""Minimal asyncio HTTP client for the serving gateway (stdlib only).

The test suite, the demo and the open-loop latency benchmark all need the
same three things — a GET, a JSON POST, and an SSE stream iterator that
understands the gateway's chunked transfer encoding — and none of them
should depend on an HTTP library the container may not have.  This client
speaks exactly the dialect :mod:`repro.server.gateway` serves (HTTP/1.1,
one request per connection) and nothing more.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.server.protocol import parse_sse_payload

__all__ = ["GatewayError", "http_get", "post_completion",
           "stream_completion"]


class GatewayError(RuntimeError):
    """Non-2xx response from the gateway."""

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body
        try:
            detail = json.loads(body).get("error", {}).get("message", "")
        except Exception:
            detail = body.decode("latin-1", "replace")[:200]
        super().__init__(f"HTTP {status}: {detail}")


async def _read_head(reader: asyncio.StreamReader,
                     ) -> Tuple[int, Dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("server closed the connection")
    parts = status_line.decode("latin-1").split(None, 2)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_body(reader: asyncio.StreamReader,
                     headers: Dict[str, str]) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks = []
        async for piece in _iter_chunks(reader):
            chunks.append(piece)
        return b"".join(chunks)
    length = int(headers.get("content-length", "0"))
    return await reader.readexactly(length) if length else b""


async def _iter_chunks(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    """Decode a chunked transfer-encoded body piece by piece."""
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip() or b"0", 16)
        if size == 0:
            await reader.readline()  # trailing CRLF after the last chunk
            return
        piece = await reader.readexactly(size)
        await reader.readexactly(2)  # CRLF after each chunk
        yield piece


def _request_bytes(method: str, path: str, host: str,
                   body: bytes = b"",
                   content_type: str = "application/json") -> bytes:
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode() + body


async def http_get(host: str, port: int, path: str,
                   ) -> Tuple[int, Dict[str, str], bytes]:
    """One GET; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes("GET", path, host))
        await writer.drain()
        status, headers = await _read_head(reader)
        body = await _read_body(reader, headers)
        return status, headers, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def post_completion(host: str, port: int,
                          payload: Dict[str, Any]) -> Dict[str, Any]:
    """Non-streaming completion; returns the parsed JSON body.

    Raises :class:`GatewayError` on any non-200 status (the 429
    backpressure path included — its ``retry-after`` header is available
    on the exception).
    """
    body = json.dumps(payload).encode()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes("POST", "/v1/completions", host, body))
        await writer.drain()
        status, headers = await _read_head(reader)
        response = await _read_body(reader, headers)
        if status != 200:
            raise GatewayError(status, headers, response)
        return json.loads(response)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


class _SSEStream:
    """Async iterator over a streaming completion's chunk payloads.

    Yields the parsed JSON of each SSE event and stops cleanly at
    ``data: [DONE]``.  Exposes the connection so a caller can *abandon*
    the stream mid-flight (``await close()``) — the client-disconnect
    path the gateway must answer with a cancel.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._buffer = b""
        self._chunks = _iter_chunks(reader)
        self._done = False

    def __aiter__(self) -> "_SSEStream":
        return self

    async def __anext__(self) -> Dict[str, Any]:
        while True:
            event, sep, rest = self._buffer.partition(b"\n\n")
            if sep:
                self._buffer = rest
                payload = parse_sse_payload(event.decode())
                if payload is None:  # [DONE]
                    self._done = True
                    await self.close()
                    raise StopAsyncIteration
                return payload
            if self._done:
                raise StopAsyncIteration
            try:
                self._buffer += await self._chunks.__anext__()
            except StopAsyncIteration:
                self._done = True
                if not self._buffer.strip():
                    raise
                continue

    async def close(self) -> None:
        """Drop the connection (mid-stream: simulates a disconnect)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass


async def stream_completion(host: str, port: int,
                            payload: Dict[str, Any]) -> _SSEStream:
    """Open a streaming completion; returns an async chunk iterator.

    The returned stream yields one parsed chunk dict per SSE event —
    token chunks first, then the terminal chunk carrying
    ``finish_reason`` — and closes the connection at ``[DONE]``.  Raises
    :class:`GatewayError` if the gateway answers with a non-200 status
    (backpressure, validation) before any chunk flows.
    """
    body = json.dumps(dict(payload, stream=True)).encode()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes("POST", "/v1/completions", host, body))
        await writer.drain()
        status, headers = await _read_head(reader)
        if status != 200:
            response = await _read_body(reader, headers)
            raise GatewayError(status, headers, response)
    except BaseException:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
        raise
    return _SSEStream(reader, writer)
